//! Replay of the pinned exploration corpus (`tests/corpus/*.json`).
//!
//! Every seed the explorer's shrinker has ever pinned replays here,
//! byte-deterministically, on every tier-1 run: the generic sweep replays
//! each file twice and demands identical outcomes, and each named
//! `regression_*` test asserts the specific behaviour its seed was pinned
//! for. Regenerate the corpus with
//! `cargo test -p hmtx-explore --test explore_corpus -- --ignored`.

use std::path::{Path, PathBuf};

use hmtx_explore::mexplore::{run_one, MachineOutcome, MachineSpec};
use hmtx_explore::opexplore::{enumerate_orders, execute_order, OpOutcome};
use hmtx_explore::{asm_kernels, op_kernels, seed, shrink};
use hmtx_machine::ScheduleSeed;
use hmtx_types::SeedBug;

const MACHINE_BUDGET: u64 = 50_000;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

fn load(stem: &str) -> ScheduleSeed {
    let path = corpus_dir().join(format!("{stem}.json"));
    seed::read_seed(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn parse_bug(stored: &ScheduleSeed) -> Option<SeedBug> {
    stored
        .seed_bug
        .as_deref()
        .map(|n| SeedBug::from_name(n).unwrap_or_else(|| panic!("unknown seed bug `{n}`")))
}

fn replay_ops(stored: &ScheduleSeed) -> OpOutcome {
    let kernel = op_kernels()
        .into_iter()
        .find(|k| k.name == stored.name)
        .unwrap_or_else(|| panic!("no op kernel `{}`", stored.name));
    execute_order(&kernel, &stored.order, parse_bug(stored))
}

fn replay_machine(stored: &ScheduleSeed) -> MachineOutcome {
    let kernel = asm_kernels()
        .into_iter()
        .find(|k| k.name == stored.name)
        .unwrap_or_else(|| panic!("no machine kernel `{}`", stored.name));
    let spec = MachineSpec::from_kernel(&kernel, MACHINE_BUDGET, parse_bug(stored)).unwrap();
    let oracle = spec.oracle().unwrap();
    run_one(&spec, &stored.picks, Some(&oracle), true).0
}

#[test]
fn every_corpus_seed_replays_byte_deterministically() {
    let files = seed::list_seeds(&corpus_dir()).unwrap();
    assert!(!files.is_empty(), "corpus must not be empty");
    for path in files {
        let stored = seed::read_seed(&path).unwrap();
        match stored.kind.as_str() {
            "ops" => {
                let a = replay_ops(&stored);
                let b = replay_ops(&stored);
                assert_eq!(a.committed, b.committed, "{}", path.display());
                assert_eq!(a.misspec, b.misspec, "{}", path.display());
                assert_eq!(a.failure, b.failure, "{}", path.display());
            }
            "machine" => {
                let a = replay_machine(&stored);
                let b = replay_machine(&stored);
                assert_eq!(a.committed, b.committed, "{}", path.display());
                assert_eq!(a.misspec, b.misspec, "{}", path.display());
                assert_eq!(a.failure, b.failure, "{}", path.display());
            }
            other => panic!("{}: unknown seed kind `{other}`", path.display()),
        }
    }
}

/// The pinned PR 1 counterexample shape: under the planted
/// `stale-migration-replica` defect a speculative-read migration leaves a
/// live duplicate of the version at the supplier, and the "at most one S-M
/// version per address" invariant fires at group commit. The schedule is
/// shrinker-minimal (at most the 7 ops of the original counterexample) and
/// must stay clean on the real protocol.
#[test]
fn regression_stale_migration_replica() {
    let stored = load("regression_stale_migration_replica");
    assert_eq!(stored.kind, "ops");
    assert_eq!(stored.name, "migrated_line");
    assert!(stored.order.len() <= 7, "pinned length was 7 ops");

    let buggy = replay_ops(&stored);
    let failure = buggy.failure.expect("planted defect must reproduce");
    assert_eq!(failure.kind, "invariant", "{failure}");

    let mut clean_seed = stored.clone();
    clean_seed.seed_bug = None;
    let clean = replay_ops(&clean_seed);
    assert!(
        clean.failure.is_none(),
        "real protocol must be clean on the pinned schedule: {:?}",
        clean.failure
    );
}

/// A pinned `race_detect` divergence whose schedule lands the unordered
/// transactional read before the earlier transaction's store: the machine
/// must misspeculate (never commit a stale value) and the post-abort
/// hierarchy must stay sound.
#[test]
fn regression_race_detect_misspec() {
    let stored = load("regression_race_detect_misspec");
    assert_eq!(stored.kind, "machine");
    assert_eq!(stored.name, "race_detect");
    let outcome = replay_machine(&stored);
    assert!(outcome.failure.is_none(), "{:?}", outcome.failure);
    assert!(
        outcome.misspec.is_some(),
        "pinned schedule must misspeculate, got commit of v{}",
        outcome.committed
    );
}

/// A pinned divergent `handoff` schedule: even off the min-clock baseline,
/// the hand-off must commit both transactions and match the sequential TM
/// oracle (checked inside `run_one`).
#[test]
fn regression_handoff_divergent() {
    let stored = load("regression_handoff_divergent");
    assert_eq!(stored.kind, "machine");
    assert_eq!(stored.name, "handoff");
    assert!(!stored.picks.is_empty(), "the pin is a divergent schedule");
    let outcome = replay_machine(&stored);
    assert!(outcome.failure.is_none(), "{:?}", outcome.failure);
    assert!(outcome.misspec.is_none(), "hand-off is race-free");
    assert_eq!(outcome.committed, 2);
}

/// Regenerates the corpus from scratch (run with `-- --ignored`): rediscover
/// the planted-defect counterexample and shrink it, then pin one
/// misspeculating `race_detect` divergence and one divergent clean
/// `handoff` schedule.
#[test]
#[ignore = "corpus generator, writes into tests/corpus/"]
fn regenerate_corpus() {
    let dir = corpus_dir();

    // 1. The planted-defect counterexample, rediscovered and shrunk.
    let kernel = op_kernels()
        .into_iter()
        .find(|k| k.name == "migrated_line")
        .unwrap();
    let bug = Some(SeedBug::StaleMigrationReplica);
    let (orders, exhausted) = enumerate_orders(&kernel, 3, true, usize::MAX);
    assert!(exhausted);
    let failing = orders
        .iter()
        .find(|o| execute_order(&kernel, o, bug).failure.is_some())
        .expect("exploration rediscovers the planted defect");
    let shrunk = shrink::shrink_ops(&kernel, failing, bug).unwrap();
    seed::write_seed(
        &dir,
        "regression_stale_migration_replica",
        &ScheduleSeed {
            kind: "ops".into(),
            name: kernel.name.to_string(),
            seed_bug: Some(SeedBug::StaleMigrationReplica.name().to_string()),
            picks: Vec::new(),
            order: shrunk.order.clone(),
            note: format!("pinned by hmtx-explore: {}", shrunk.failure),
        },
    )
    .unwrap();

    // 2/3. Machine-level pins, found by one level of divergence search.
    for (kernel_name, want_misspec, stem) in [
        ("race_detect", true, "regression_race_detect_misspec"),
        ("handoff", false, "regression_handoff_divergent"),
    ] {
        let kernel = asm_kernels()
            .into_iter()
            .find(|k| k.name == kernel_name)
            .unwrap();
        let spec = MachineSpec::from_kernel(&kernel, MACHINE_BUDGET, None).unwrap();
        let oracle = spec.oracle().unwrap();
        let (root, branches) = run_one(&spec, &[], Some(&oracle), true);
        assert!(root.failure.is_none());
        let picks = branches
            .iter()
            .flat_map(|(step, alts)| alts.iter().map(move |&c| vec![(*step, c)]))
            .find(|picks| {
                let (o, _) = run_one(&spec, picks, Some(&oracle), true);
                o.failure.is_none() && o.misspec.is_some() == want_misspec
            })
            .unwrap_or_else(|| panic!("{kernel_name}: no single divergence flips the outcome"));
        seed::write_seed(
            &dir,
            stem,
            &ScheduleSeed {
                kind: "machine".into(),
                name: kernel_name.to_string(),
                seed_bug: None,
                picks,
                order: Vec::new(),
                note: format!(
                    "pinned by hmtx-explore: single divergence, {}",
                    if want_misspec {
                        "read-first schedule misspeculates"
                    } else {
                        "divergent schedule still matches the oracle"
                    }
                ),
            },
        )
        .unwrap();
    }
}
