//! The strongest end-to-end correctness oracle: for every benchmark, the
//! final committed memory image of a speculative parallel run must be
//! byte-identical (over the workload data region) to the sequential run's.

use hmtx::machine::Machine;
use hmtx::runtime::env::WORKLOAD_REGION_BASE;
use hmtx::runtime::{run_loop, Paradigm};
use hmtx::smtx::{run_smtx, RwSetMode};
use hmtx::types::{Addr, MachineConfig};
use hmtx::workloads::{suite, Scale};

const BUDGET: u64 = 2_000_000_000;

/// Drains the caches and fingerprints the workload data region, after
/// verifying every protocol invariant still holds.
fn workload_fingerprint(mut machine: Machine) -> u64 {
    let violations = machine.mem().check_invariants();
    assert!(
        violations.is_empty(),
        "protocol invariants violated: {violations:?}"
    );
    machine
        .mem_mut()
        .drain_committed()
        .expect("no speculative leftovers at end of run");
    machine
        .mem()
        .memory()
        // Stop below the per-core kernel scratch region the interrupt
        // handler writes (its contents are timing-dependent by design).
        .fingerprint_range(Addr(WORKLOAD_REGION_BASE), Addr(0xFFFF_0000_0000))
}

#[test]
fn every_workload_parallel_run_matches_sequential_memory() {
    let cfg = MachineConfig::test_default();
    for w in suite(Scale::Quick) {
        let name = w.meta().name;
        let (seq_machine, _) = run_loop(Paradigm::Sequential, w.as_ref(), &cfg, BUDGET)
            .unwrap_or_else(|e| panic!("{name} sequential: {e}"));
        let expected = workload_fingerprint(seq_machine);

        let (par_machine, report) = run_loop(w.meta().paradigm, w.as_ref(), &cfg, BUDGET)
            .unwrap_or_else(|e| panic!("{name} parallel: {e}"));
        assert_eq!(
            report.recoveries, 0,
            "{name}: high-confidence speculation must not abort"
        );
        assert_eq!(
            workload_fingerprint(par_machine),
            expected,
            "{name}: parallel final memory differs from sequential"
        );
    }
}

#[test]
fn every_workload_matches_under_paper_scale_caches() {
    // Same oracle on the paper's Table 2 cache configuration.
    let cfg = MachineConfig::paper_default();
    for w in suite(Scale::Quick) {
        let name = w.meta().name;
        let (seq_machine, _) = run_loop(Paradigm::Sequential, w.as_ref(), &cfg, BUDGET).unwrap();
        let expected = workload_fingerprint(seq_machine);
        let (par_machine, report) = run_loop(w.meta().paradigm, w.as_ref(), &cfg, BUDGET).unwrap();
        assert_eq!(report.recoveries, 0, "{name}");
        assert_eq!(workload_fingerprint(par_machine), expected, "{name}");
    }
}

#[test]
fn every_smtx_comparable_workload_matches_sequential_memory() {
    let cfg = MachineConfig::test_default();
    for w in suite(Scale::Quick) {
        if !w.meta().smtx_comparable {
            continue;
        }
        let name = w.meta().name;
        let (seq_machine, _) = run_loop(Paradigm::Sequential, w.as_ref(), &cfg, BUDGET).unwrap();
        let expected = workload_fingerprint(seq_machine);
        for mode in [RwSetMode::Minimal, RwSetMode::Maximal] {
            let (smtx_machine, _) = run_smtx(w.as_ref(), &cfg, mode, BUDGET)
                .unwrap_or_else(|e| panic!("{name} smtx {}: {e}", mode.name()));
            // SMTX log regions live below the workload region, so the
            // workload fingerprint isolates the actual results.
            assert_eq!(
                workload_fingerprint(smtx_machine),
                expected,
                "{name} under SMTX {}",
                mode.name()
            );
        }
    }
}

#[test]
fn dswp_with_one_worker_also_matches() {
    // The 2-thread DSWP of Figure 1(c), not just PS-DSWP.
    let cfg = MachineConfig::test_default();
    for w in suite(Scale::Quick) {
        if w.meta().paradigm != Paradigm::PsDswp {
            continue;
        }
        let name = w.meta().name;
        let (seq_machine, _) = run_loop(Paradigm::Sequential, w.as_ref(), &cfg, BUDGET).unwrap();
        let expected = workload_fingerprint(seq_machine);
        let (dswp_machine, report) = run_loop(Paradigm::Dswp, w.as_ref(), &cfg, BUDGET).unwrap();
        assert_eq!(report.recoveries, 0, "{name}");
        assert_eq!(
            workload_fingerprint(dswp_machine),
            expected,
            "{name} under DSWP"
        );
    }
}
