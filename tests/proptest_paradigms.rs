//! Property test: for *randomly generated* parallelizable loops (random
//! access patterns, random sizes, random seeds), every speculative paradigm
//! must produce exactly the sequential run's committed memory.

use hmtx::isa::{ProgramBuilder, Reg};
use hmtx::machine::Machine;
use hmtx::runtime::env::{regs, LoopEnv, WORKLOAD_REGION_BASE};
use hmtx::runtime::{run_loop, LoopBody, Paradigm};
use hmtx::types::{Addr, MachineConfig};
use hmtx::workloads::emitlib::{counted_loop, hash_to_offset, xorshift_step};
use proptest::prelude::*;

/// A loop with seed-driven random reads of a shared table and random writes
/// into a per-iteration region, with a loop-carried PRNG in stage 1.
#[derive(Debug, Clone)]
struct RandomLoop {
    iters: u64,
    reads: u64,
    writes: u64,
    shared_words: u64, // power of two
    seed: u64,
}

const SHARED: u64 = WORKLOAD_REGION_BASE;
const REGIONS: u64 = WORKLOAD_REGION_BASE + 0x2_0000;
const RESULTS: u64 = WORKLOAD_REGION_BASE + 0x8_0000;
const REGION_STRIDE: u64 = 512; // 8 lines per iteration

impl LoopBody for RandomLoop {
    fn iterations(&self) -> u64 {
        self.iters
    }

    fn build_image(&self, machine: &mut Machine, env: &LoopEnv) {
        // Shared read-only table with deterministic pseudo-random contents.
        let mut x = self.seed | 1;
        for i in 0..self.shared_words {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            machine
                .mem_mut()
                .memory_mut()
                .write_word(Addr(SHARED + i * 8), x);
        }
        machine
            .mem_mut()
            .memory_mut()
            .write_word(env.state_slot(0), self.seed | 1);
    }

    fn emit_stage1(&self, b: &mut ProgramBuilder, env: &LoopEnv) {
        // Loop-carried PRNG: each iteration's item depends on the last.
        b.li(Reg::R1, env.state_slot(0).0 as i64);
        b.load(Reg::R2, Reg::R1, 0);
        xorshift_step(b, Reg::R2, Reg::R3);
        b.store(Reg::R2, Reg::R1, 0);
        b.mov(regs::ITEM, Reg::R2);
        b.li(regs::SPEC_LOADS, 1);
        b.li(regs::SPEC_STORES, 1);
    }

    fn emit_stage2(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        let (reads, writes, shared_words) = (self.reads, self.writes, self.shared_words);
        // R1 = PRNG, R2 = checksum, R3 = own region.
        b.mov(Reg::R1, regs::ITEM);
        b.li(Reg::R2, 0);
        hmtx::workloads::emitlib::iter_region(b, Reg::R3, REGIONS, REGION_STRIDE);
        counted_loop(b, Reg::R0, reads, |b| {
            xorshift_step(b, Reg::R1, Reg::R4);
            hash_to_offset(b, Reg::R5, Reg::R1, shared_words);
            b.addi(Reg::R5, Reg::R5, SHARED as i64);
            b.load(Reg::R6, Reg::R5, 0);
            b.add(Reg::R2, Reg::R2, Reg::R6);
        })
        .unwrap();
        counted_loop(b, Reg::R0, writes, |b| {
            xorshift_step(b, Reg::R1, Reg::R4);
            // A random word within this iteration's own region (repeats OK).
            hash_to_offset(b, Reg::R5, Reg::R1, REGION_STRIDE / 8);
            b.add(Reg::R5, Reg::R5, Reg::R3);
            b.store(Reg::R2, Reg::R5, 0);
        })
        .unwrap();
        hmtx::workloads::emitlib::iter_region(b, Reg::R5, RESULTS, 64);
        b.store(Reg::R2, Reg::R5, 0);
        b.li(regs::SPEC_LOADS, reads as i64);
        b.li(regs::SPEC_STORES, writes as i64 + 1);
    }
}

fn fingerprint(mut machine: Machine) -> u64 {
    let violations = machine.mem().check_invariants();
    assert!(
        violations.is_empty(),
        "protocol invariants violated: {violations:?}"
    );
    machine.mem_mut().drain_committed().expect("clean drain");
    machine
        .mem()
        .memory()
        .fingerprint_range(Addr(WORKLOAD_REGION_BASE), Addr(0xFFFF_0000_0000))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn every_paradigm_matches_sequential_on_random_loops(
        iters in 4u64..20,
        reads in 1u64..12,
        writes in 1u64..8,
        shared_pow in 4u32..9,
        seed in any::<u64>(),
    ) {
        let body = RandomLoop {
            iters,
            reads,
            writes,
            shared_words: 1 << shared_pow,
            seed,
        };
        let cfg = MachineConfig::test_default();
        let (m, _) = run_loop(Paradigm::Sequential, &body, &cfg, 100_000_000).unwrap();
        let expected = fingerprint(m);
        for paradigm in [Paradigm::Dswp, Paradigm::PsDswp, Paradigm::Doacross] {
            let (m, report) = run_loop(paradigm, &body, &cfg, 100_000_000).unwrap();
            prop_assert_eq!(report.recoveries, 0, "{} misspeculated", paradigm.name());
            prop_assert_eq!(fingerprint(m), expected, "{} diverged", paradigm.name());
        }
    }

    #[test]
    fn random_loops_survive_narrow_vids_and_interrupts(
        iters in 10u64..24,
        reads in 1u64..8,
        writes in 1u64..6,
        seed in any::<u64>(),
    ) {
        let body = RandomLoop { iters, reads, writes, shared_words: 64, seed };
        let mut cfg = MachineConfig::test_default();
        let (m, _) = run_loop(Paradigm::Sequential, &body, &cfg, 100_000_000).unwrap();
        let expected = fingerprint(m);
        cfg.hmtx.vid_bits = 3;
        cfg.pipeline_window = 4;
        cfg.interrupt_period = 700;
        let (m, report) = run_loop(Paradigm::PsDswp, &body, &cfg, 100_000_000).unwrap();
        prop_assert_eq!(report.recoveries, 0);
        prop_assert!(m.mem().stats().vid_resets >= 1);
        prop_assert_eq!(fingerprint(m), expected);
    }
}
