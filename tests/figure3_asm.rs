//! Figure 3 of the paper, written in actual guest assembly: the speculative
//! DSWP linked-list traversal with `beginMTX`/`commitMTX`, the
//! `producedNode` versioned-memory idiom, `produceVID`/`consumeVID` queues,
//! and the early-exit control speculation that triggers `abortMTX` when
//! `work(node) > MAX`.

use std::sync::Arc;

use hmtx::core::MisspecCause;
use hmtx::isa::assemble;
use hmtx::machine::{Machine, RunEvent, ThreadContext};
use hmtx::types::{Addr, MachineConfig, ThreadId, Vid};

/// Guest layout: one node per line, word 0 = next, word 1 = payload.
const LIST_BASE: u64 = 0x10_0000;
/// The shared `producedNode` slot of Figure 3(b).
const PRODUCED_NODE: u64 = 0x20_0000;
/// Initial `node` pointer lives here.
const NODE_SLOT: u64 = 0x20_0040;
/// Figure 3's early-exit threshold.
const MAX: u64 = 100;

fn build_list(machine: &mut Machine, payloads: &[u64]) {
    for (i, p) in payloads.iter().enumerate() {
        let node = LIST_BASE + (i as u64) * 64;
        let next = if i + 1 < payloads.len() { node + 64 } else { 0 };
        machine.mem_mut().memory_mut().write_word(Addr(node), next);
        machine
            .mem_mut()
            .memory_mut()
            .write_word(Addr(node + 8), *p);
    }
    machine
        .mem_mut()
        .memory_mut()
        .write_word(Addr(NODE_SLOT), LIST_BASE);
}

fn stage1() -> Arc<hmtx::isa::Program> {
    Arc::new(
        assemble(&format!(
            r"
            ; Figure 3(b): speculative DSWP stage 1
                li   r10, 1              ; vid = 1
                li   r9, {NODE_SLOT}
                ld   r0, (r9)            ; node (non-speculative initial load)
                beq  r0, 0, finish       ; leaveLoop = (node == NULL)
            loop:
                beginMTX r10
                li   r8, {PRODUCED_NODE}
                st   r0, (r8)            ; producedNode = node (new version)
                ld   r0, (r0)            ; node = node->next
                li   r7, 0
                beginMTX r7              ; does not commit
                produce q0, r10          ; produceVID(vid++)
                add  r10, r10, 1
                bne  r0, 0, loop
            finish:
                li   r7, 0
                produce q0, r7           ; produceVID(0)
                halt
            "
        ))
        .expect("stage 1 assembles"),
    )
}

fn stage2() -> Arc<hmtx::isa::Program> {
    Arc::new(
        assemble(&format!(
            r"
            ; Figure 3(c): speculative DSWP stage 2
            loop:
                consume r10, q0          ; vid = consumeVID()
                beq  r10, 0, done
                beginMTX r10             ; continue the TX started in stage 1
                li   r8, {PRODUCED_NODE}
                ld   r0, (r8)            ; finds this VID's producedNode
                ld   r1, 8(r0)           ; w = work(node)
                commitMTX r10
                bgeu r1, {THRESH}, do_abort ; if (w > MAX): abortMTX(vid+1)
                j    loop
            do_abort:
                add  r11, r10, 1
                abortMTX r11
            done:
                halt
            ",
            THRESH = MAX + 1
        ))
        .expect("stage 2 assembles"),
    )
}

#[test]
fn figure3_without_early_exit_commits_every_node() {
    let mut machine = Machine::new(MachineConfig::test_default());
    let payloads: Vec<u64> = (0..10).map(|i| 10 + i).collect(); // all <= MAX
    build_list(&mut machine, &payloads);
    machine.load_thread(0, ThreadContext::new(ThreadId(0), stage1()));
    machine.load_thread(1, ThreadContext::new(ThreadId(1), stage2()));
    assert_eq!(machine.run(1_000_000).unwrap(), RunEvent::AllHalted);
    assert_eq!(machine.mem().stats().commits, 10);
    // The committed producedNode is the last node.
    let last = LIST_BASE + 9 * 64;
    assert_eq!(machine.mem().peek_word(Addr(PRODUCED_NODE), Vid(0)), last);
}

#[test]
fn figure3_early_exit_aborts_later_transactions() {
    let mut machine = Machine::new(MachineConfig::test_default());
    // Node 6 (0-based index 5) exceeds MAX: stage 2 discovers it after
    // later iterations already started speculatively in stage 1.
    let payloads = vec![10, 20, 30, 40, 50, MAX + 23, 60, 70, 80, 90];
    build_list(&mut machine, &payloads);
    machine.load_thread(0, ThreadContext::new(ThreadId(0), stage1()));
    machine.load_thread(1, ThreadContext::new(ThreadId(1), stage2()));
    match machine.run(1_000_000).unwrap() {
        RunEvent::Misspeculation {
            cause: MisspecCause::ExplicitAbort { vid },
            ..
        } => {
            assert_eq!(
                vid,
                Vid(7),
                "abortMTX(vid+1) for the iteration after the exit"
            );
        }
        other => panic!("unexpected {other:?}"),
    }
    // Transactions 1..=6 committed (the exit iteration itself is valid);
    // everything later was squashed.
    assert_eq!(machine.mem().stats().commits, 6);
    let exit_node = LIST_BASE + 5 * 64;
    assert_eq!(
        machine.mem().peek_word(Addr(PRODUCED_NODE), Vid(0)),
        exit_node,
        "committed producedNode is the early-exit node"
    );
    assert_eq!(machine.mem().stats().aborts, 1);
}

#[test]
fn figure3_uncommitted_value_forwarding_carries_every_node() {
    // Stage 2 instrumented to emit each node pointer it observed; the
    // sequence must be exactly the list order even though every value it
    // read was uncommitted when stage 1 produced it.
    let stage2_instrumented = Arc::new(
        assemble(&format!(
            r"
            loop:
                consume r10, q0
                beq  r10, 0, done
                beginMTX r10
                li   r8, {PRODUCED_NODE}
                ld   r0, (r8)
                out  r0                  ; record the forwarded pointer
                ld   r1, 8(r0)
                commitMTX r10
                bgeu r1, {THRESH}, do_abort
                j    loop
            do_abort:
                add  r11, r10, 1
                abortMTX r11
            done:
                halt
            ",
            THRESH = MAX + 1
        ))
        .unwrap(),
    );

    let mut machine = Machine::new(MachineConfig::test_default());
    let payloads: Vec<u64> = (0..8).map(|i| i + 1).collect();
    build_list(&mut machine, &payloads);
    machine.load_thread(0, ThreadContext::new(ThreadId(0), stage1()));
    machine.load_thread(1, ThreadContext::new(ThreadId(1), stage2_instrumented));
    assert_eq!(machine.run(1_000_000).unwrap(), RunEvent::AllHalted);
    let expected: Vec<u64> = (0..8).map(|i| LIST_BASE + i * 64).collect();
    assert_eq!(machine.committed_output(), expected.as_slice());
}
