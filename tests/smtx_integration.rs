//! SMTX baseline integration: correctness across the suite and the
//! validation-cost phenomenon of Figure 2 at workload level.

use hmtx::runtime::run_loop;
use hmtx::smtx::{run_smtx, RwSetMode};
use hmtx::types::MachineConfig;
use hmtx::workloads::{suite, Scale};

const BUDGET: u64 = 2_000_000_000;

#[test]
fn validation_cost_is_monotone_for_every_comparable_workload() {
    let cfg = MachineConfig::test_default();
    for w in suite(Scale::Quick) {
        if !w.meta().smtx_comparable {
            continue;
        }
        let name = w.meta().name;
        let cycles = |mode| run_smtx(w.as_ref(), &cfg, mode, BUDGET).unwrap().1.cycles;
        let min = cycles(RwSetMode::Minimal);
        let sub = cycles(RwSetMode::Substantial);
        let max = cycles(RwSetMode::Maximal);
        assert!(
            min <= sub && sub <= max,
            "{name}: validation cost must grow with set size: {min} {sub} {max}"
        );
        assert!(max > min, "{name}: maximal validation must cost something");
    }
}

#[test]
fn hmtx_with_maximal_validation_beats_smtx_with_maximal_validation() {
    // The paper's central claim, per benchmark: when both systems validate
    // every access, hardware wins decisively.
    let cfg = MachineConfig::test_default();
    for w in suite(Scale::Quick) {
        if !w.meta().smtx_comparable {
            continue;
        }
        let name = w.meta().name;
        let (_, hmtx) = run_loop(w.meta().paradigm, w.as_ref(), &cfg, BUDGET).unwrap();
        let (_, smtx) = run_smtx(w.as_ref(), &cfg, RwSetMode::Maximal, BUDGET).unwrap();
        assert!(
            hmtx.cycles < smtx.cycles,
            "{name}: HMTX {} vs SMTX-max {}",
            hmtx.cycles,
            smtx.cycles
        );
    }
}

#[test]
fn smtx_commit_core_becomes_the_bottleneck_under_maximal_validation() {
    // bzip2's huge sets: with maximal validation, the run should be
    // dominated by validation work — instructions balloon relative to the
    // minimal-set run.
    let cfg = MachineConfig::test_default();
    let w = &suite(Scale::Quick)[5];
    let (_, min) = run_smtx(w.as_ref(), &cfg, RwSetMode::Minimal, BUDGET).unwrap();
    let (_, max) = run_smtx(w.as_ref(), &cfg, RwSetMode::Maximal, BUDGET).unwrap();
    assert!(
        max.instructions > min.instructions * 2,
        "validation instructions must dominate: {} vs {}",
        max.instructions,
        min.instructions
    );
}

#[test]
fn smtx_never_uses_hmtx_hardware() {
    let cfg = MachineConfig::test_default();
    let w = &suite(Scale::Quick)[7];
    let (machine, _) = run_smtx(w.as_ref(), &cfg, RwSetMode::Maximal, BUDGET).unwrap();
    let stats = machine.mem().stats();
    assert_eq!(stats.spec_loads, 0, "SMTX issues no VID-labeled loads");
    assert_eq!(stats.spec_stores, 0);
    assert_eq!(stats.commits, 0, "no hardware group commits");
    assert_eq!(stats.slas_sent, 0);
}
