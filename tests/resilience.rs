//! Resilience (§5): long transactions must survive interrupts, thread
//! migration, and genuine conflicts with recovery — while preserving exact
//! results.

use hmtx::isa::{ProgramBuilder, Reg};
use hmtx::machine::Machine;
use hmtx::runtime::env::{regs, WORKLOAD_REGION_BASE};
use hmtx::runtime::{run_loop, LoopBody, LoopEnv, Paradigm};
use hmtx::types::{Addr, MachineConfig, Vid};
use hmtx::workloads::{suite, Scale};

const BUDGET: u64 = 4_000_000_000;

fn workload_fingerprint(mut machine: Machine) -> u64 {
    machine.mem_mut().drain_committed().expect("clean drain");
    machine
        .mem()
        .memory()
        // Stop below the per-core kernel scratch region the interrupt
        // handler writes (its contents are timing-dependent by design).
        .fingerprint_range(Addr(WORKLOAD_REGION_BASE), Addr(0xFFFF_0000_0000))
}

#[test]
fn interrupts_during_every_workload_change_nothing() {
    // §5.2: frequent timer interrupts running non-speculative OS handlers
    // inside live transactions must not perturb results.
    for w in suite(Scale::Quick) {
        let name = w.meta().name;
        let quiet = MachineConfig::test_default();
        let (m, _) = run_loop(w.meta().paradigm, w.as_ref(), &quiet, BUDGET).unwrap();
        let expected = workload_fingerprint(m);

        let mut noisy = MachineConfig::test_default();
        noisy.interrupt_period = 1_500;
        noisy.interrupt_handler_instrs = 120;
        let (m, report) = run_loop(w.meta().paradigm, w.as_ref(), &noisy, BUDGET).unwrap();
        assert!(m.stats().interrupts > 0, "{name}: interrupts must fire");
        assert_eq!(
            report.recoveries, 0,
            "{name}: interrupts must not abort transactions"
        );
        assert_eq!(workload_fingerprint(m), expected, "{name} with interrupts");
    }
}

#[test]
fn long_stress_transactions_commit_cleanly() {
    // Stress scale: transactions with tens of thousands of speculative
    // accesses (the paper's headline capability) on the paper's caches.
    let w = hmtx::workloads::bzip2::Bzip2::new(Scale::Stress);
    let cfg = MachineConfig::paper_default();
    let (machine, report) =
        run_loop(Paradigm::PsDswp, &w, &cfg, BUDGET).expect("stress run completes");
    assert_eq!(report.recoveries, 0);
    let stats = machine.mem().stats();
    let per_tx = (stats.spec_loads + stats.spec_stores) as f64 / stats.commits as f64;
    assert!(
        per_tx > 30_000.0,
        "stress transactions must be large, got {per_tx:.0} accesses/TX"
    );
    // Verify against the host-side reference sort.
    for n in 1..=w.iterations() {
        assert_eq!(
            machine.mem().peek_word(Addr(w.checksum_cell(n)), Vid(0)),
            w.expected_checksum(&machine, n),
            "block {n}"
        );
    }
}

/// A loop whose stage-2 transactions genuinely conflict (one shared
/// accumulator cell), forcing aborts and recovery at workload level.
struct ConflictingAccum {
    iters: u64,
}

const ACCUM: u64 = WORKLOAD_REGION_BASE + 0x8000;

impl LoopBody for ConflictingAccum {
    fn iterations(&self) -> u64 {
        self.iters
    }
    fn build_image(&self, _m: &mut Machine, _env: &LoopEnv) {}
    fn emit_stage1(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        b.mov(regs::ITEM, regs::N);
        b.li(regs::SPEC_LOADS, 1);
        b.li(regs::SPEC_STORES, 1);
    }
    fn emit_stage2(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        b.li(Reg::R1, ACCUM as i64);
        b.load(Reg::R2, Reg::R1, 0);
        b.mul(Reg::R3, regs::ITEM, regs::ITEM);
        b.add(Reg::R2, Reg::R2, Reg::R3);
        b.store(Reg::R2, Reg::R1, 0);
        b.li(regs::SPEC_LOADS, 1);
        b.li(regs::SPEC_STORES, 1);
    }
}

#[test]
fn genuine_conflicts_recover_to_the_exact_serial_answer() {
    let body = ConflictingAccum { iters: 30 };
    let cfg = MachineConfig::test_default();
    let (machine, report) = run_loop(Paradigm::PsDswp, &body, &cfg, BUDGET).unwrap();
    assert!(report.recoveries > 0, "a shared accumulator must conflict");
    let expected: u64 = (1..=30u64).map(|n| n * n).sum();
    assert_eq!(machine.mem().peek_word(Addr(ACCUM), Vid(0)), expected);
    // Every recovery had a concrete architectural cause.
    assert_eq!(report.recovery_causes.len() as u64, report.recoveries);
}

#[test]
fn migration_mid_run_preserves_transaction_state() {
    // Drive the machine manually: start a PS-DSWP run, stop it mid-flight,
    // migrate a worker to a different core, and finish.
    use hmtx::machine::{RunEvent, ThreadContext};
    use hmtx::runtime::build_paradigm;
    use hmtx::types::ThreadId;

    let w = &suite(Scale::Quick)[7]; // ispell: short, many transactions
    let mut cfg = MachineConfig::test_default();
    cfg.num_cores = 6; // leave two empty cores to migrate onto
    let env = hmtx::runtime::LoopEnv::new(cfg.hmtx.max_vid().0, 3)
        .with_pipeline_window(cfg.pipeline_window);
    let mut machine = Machine::new(cfg.clone());
    w.build_image(&mut machine, &env);
    let generated = build_paradigm(w.meta().paradigm, w.as_ref(), &env, 1).unwrap();
    for (i, t) in generated.threads.into_iter().enumerate() {
        machine.load_thread(t.core, ThreadContext::new(ThreadId(i), t.program));
    }
    // Run a slice, then migrate worker on core 1 to core 4 and the worker
    // on core 2 to core 5 (possibly mid-transaction).
    assert_eq!(machine.run(2_000).unwrap(), RunEvent::BudgetExhausted);
    machine.migrate_thread(1, 4);
    machine.migrate_thread(2, 5);
    match machine.run(BUDGET).unwrap() {
        RunEvent::AllHalted => {}
        other => panic!("unexpected {other:?}"),
    }
    assert!(machine.mem().stats().commits >= w.iterations());
}
