//! Cross-crate protocol integration: VID wraparound under real workloads,
//! lazy/eager commit equivalence at workload level, and cache-overflow
//! behaviour under pressure.

use hmtx::machine::Machine;
use hmtx::runtime::env::WORKLOAD_REGION_BASE;
use hmtx::runtime::{run_loop, Paradigm};
use hmtx::types::{Addr, CacheConfig, MachineConfig};
use hmtx::workloads::{suite, Scale};

const BUDGET: u64 = 2_000_000_000;

fn workload_fingerprint(mut machine: Machine) -> u64 {
    machine.mem_mut().drain_committed().expect("clean drain");
    machine
        .mem()
        .memory()
        // Stop below the per-core kernel scratch region the interrupt
        // handler writes (its contents are timing-dependent by design).
        .fingerprint_range(Addr(WORKLOAD_REGION_BASE), Addr(0xFFFF_0000_0000))
}

#[test]
fn narrow_vids_force_resets_but_preserve_results() {
    // 3-bit VIDs: only 7 usable VIDs, so every workload wraps many times.
    let mut cfg = MachineConfig::test_default();
    cfg.hmtx.vid_bits = 3;
    cfg.pipeline_window = 4;
    for w in suite(Scale::Quick) {
        let name = w.meta().name;
        let (seq_machine, _) = run_loop(Paradigm::Sequential, w.as_ref(), &cfg, BUDGET).unwrap();
        let expected = workload_fingerprint(seq_machine);
        let (par_machine, report) = run_loop(w.meta().paradigm, w.as_ref(), &cfg, BUDGET).unwrap();
        assert_eq!(report.recoveries, 0, "{name}");
        assert!(
            par_machine.mem().stats().vid_resets >= 1,
            "{name}: 3-bit VIDs must reset, got {}",
            par_machine.mem().stats().vid_resets
        );
        assert_eq!(workload_fingerprint(par_machine), expected, "{name}");
    }
}

#[test]
fn lazy_and_eager_commit_agree_on_every_workload() {
    for w in suite(Scale::Quick) {
        let name = w.meta().name;
        let run = |lazy: bool| {
            let mut cfg = MachineConfig::test_default();
            cfg.hmtx.lazy_commit = lazy;
            let (machine, report) = run_loop(w.meta().paradigm, w.as_ref(), &cfg, BUDGET).unwrap();
            assert_eq!(report.recoveries, 0, "{name} lazy={lazy}");
            (workload_fingerprint(machine), report.outputs)
        };
        let (lazy_fp, lazy_out) = run(true);
        let (eager_fp, eager_out) = run(false);
        assert_eq!(
            lazy_fp, eager_fp,
            "{name}: lazy and eager final memory differ"
        );
        assert_eq!(lazy_out, eager_out, "{name}: outputs differ");
    }
}

#[test]
fn eager_commit_walks_lines_and_lazy_does_not() {
    let w = &suite(Scale::Quick)[1]; // 130.li
    let run = |lazy: bool| {
        let mut cfg = MachineConfig::test_default();
        cfg.hmtx.lazy_commit = lazy;
        let (machine, report) = run_loop(w.meta().paradigm, w.as_ref(), &cfg, BUDGET).unwrap();
        (
            machine.mem().stats().eager_commit_lines_walked,
            report.cycles,
        )
    };
    let (lazy_walked, lazy_cycles) = run(true);
    let (eager_walked, eager_cycles) = run(false);
    assert_eq!(lazy_walked, 0);
    assert!(eager_walked > 0);
    assert!(
        eager_cycles > lazy_cycles,
        "walking the cache at every commit must cost time: {eager_cycles} vs {lazy_cycles}"
    );
}

#[test]
fn constrained_caches_overflow_safely_and_stay_correct() {
    // Caches far smaller than bzip2's footprint: S-O(0,·) spills and §5.4
    // refills must keep results exact even when recoveries occur.
    // Standard-scale bzip2 (128 workspace lines per transaction) against a
    // 32 KB LLC: the speculative footprint cannot fit.
    let w = hmtx::workloads::bzip2::Bzip2::new(Scale::Standard);
    let w: &dyn hmtx::workloads::Workload = &w;
    let mut cfg = MachineConfig::test_default();
    cfg.l1 = CacheConfig {
        size_bytes: 4 * 1024,
        ways: 4,
        latency: 2,
    };
    cfg.l2 = CacheConfig {
        size_bytes: 32 * 1024,
        ways: 8,
        latency: 40,
    };
    cfg.pipeline_window = 3;
    let (seq_machine, _) = run_loop(Paradigm::Sequential, w, &cfg, BUDGET).unwrap();
    let expected = workload_fingerprint(seq_machine);
    let (par_machine, _report) = run_loop(w.meta().paradigm, w, &cfg, BUDGET).unwrap();
    let stats_overflow = par_machine.mem().stats().safe_overflow_writebacks;
    assert_eq!(
        workload_fingerprint(par_machine),
        expected,
        "overflowing run must be exact"
    );
    assert!(
        stats_overflow > 0,
        "bzip2 on tiny caches must spill S-O(0) lines"
    );
}

#[test]
fn sla_disabled_still_produces_correct_results() {
    // Without SLAs wrong-path loads can cause false misspeculation; the
    // recovery path must still converge to the sequential answer.
    let mut cfg = MachineConfig::test_default();
    cfg.hmtx.sla_enabled = false;
    for idx in [3usize, 7] {
        // crafty (mispredict-heavy) and ispell
        let w = &suite(Scale::Quick)[idx];
        let name = w.meta().name;
        let (seq_machine, _) = run_loop(Paradigm::Sequential, w.as_ref(), &cfg, BUDGET).unwrap();
        let expected = workload_fingerprint(seq_machine);
        let (par_machine, _) = run_loop(w.meta().paradigm, w.as_ref(), &cfg, BUDGET).unwrap();
        assert_eq!(
            workload_fingerprint(par_machine),
            expected,
            "{name} without SLA"
        );
    }
}

#[test]
fn runs_are_fully_deterministic() {
    let w = &suite(Scale::Quick)[4]; // 197.parser
    let run = || {
        let cfg = MachineConfig::test_default();
        let (machine, report) = run_loop(w.meta().paradigm, w.as_ref(), &cfg, BUDGET).unwrap();
        (
            report.cycles,
            report.instructions,
            machine.mem().stats().l1_misses,
            machine.mem().stats().slas_sent,
            workload_fingerprint(machine),
        )
    };
    assert_eq!(run(), run());
}
