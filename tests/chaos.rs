//! Chaos suite: deterministic fault injection must never change committed
//! results. For any seeded fault schedule — spurious conflicts, wrong-path
//! load storms, queue delays, VID-space squeezes, cache-capacity squeezes —
//! the recovery ladder must deliver outputs byte-identical to the
//! fault-free run, keep the protocol invariants clean, and never report
//! `BadProgram` for a recoverable condition.

use hmtx::runtime::{run_loop, DemotionCause, RecoveryRung, RunReport};
use hmtx::smtx::run_hytm;
use hmtx::types::{FaultConfig, HytmConfig, MachineConfig, SimError};
use hmtx::workloads::{suite, Scale, Workload};
use proptest::prelude::*;

const BUDGET: u64 = 2_000_000_000;

/// Suite indices of the benchmarks the chaos suite drives: alvinn (DOALL),
/// parser (PS-DSWP), ispell (PS-DSWP) — cheap at quick scale and covering
/// both paradigm families.
const CHAOS_BENCHES: [usize; 3] = [0, 4, 7];

/// Fault schedules that historically exposed recovery bugs, pinned so they
/// run forever (the vendored proptest stub does not persist regressions).
/// Each seed is run against every chaos benchmark at two rates.
const REGRESSION_SEEDS: [u64; 8] = [
    1,
    7,
    42,
    12345,
    0xDEAD_BEEF,
    0x00FF_00FF_00FF_00FF,
    0x0123_4567_89AB_CDEF,
    u64::MAX,
];

fn fault_free(bench: &dyn Workload) -> RunReport {
    let cfg = MachineConfig::test_default();
    let (_, report) = run_loop(bench.meta().paradigm, bench, &cfg, BUDGET)
        .expect("fault-free run must complete");
    report
}

/// Runs `bench` under the full chaos fault plan and checks the differential
/// contract against the fault-free `baseline`.
fn assert_chaos_matches(bench: &dyn Workload, baseline: &RunReport, seed: u64, rate_ppm: u32) {
    let name = bench.meta().name;
    let mut cfg = MachineConfig::test_default();
    cfg.faults = Some(FaultConfig::chaos(seed, rate_ppm));
    let result = run_loop(bench.meta().paradigm, bench, &cfg, BUDGET);
    let (_, report) = match result {
        Ok(r) => r,
        Err(SimError::BadProgram(msg)) => panic!(
            "{name} seed {seed} rate {rate_ppm}: recoverable fault schedule \
             ended in BadProgram: {msg}"
        ),
        Err(e) => panic!("{name} seed {seed} rate {rate_ppm}: {e}"),
    };
    assert_eq!(
        report.outputs, baseline.outputs,
        "{name} seed {seed} rate {rate_ppm}: committed outputs must be \
         byte-identical to the fault-free run"
    );
    assert_eq!(
        report.recovery_log.len() as u64,
        report.recoveries,
        "{name} seed {seed}: every recovery must be logged"
    );
    // The ladder is strictly ordered: nothing runs after the terminal
    // non-speculative rung.
    if let Some(pos) = report
        .recovery_log
        .iter()
        .position(|r| r.rung == RecoveryRung::NonSpec)
    {
        assert_eq!(
            pos,
            report.recovery_log.len() - 1,
            "{name} seed {seed}: non-speculative fallback must be terminal"
        );
    }
}

#[test]
fn chaos_differential_100_schedules_per_benchmark() {
    let benches = suite(Scale::Quick);
    for &i in &CHAOS_BENCHES {
        let bench = benches[i].as_ref();
        let baseline = fault_free(bench);
        for seed in 0..100u64 {
            assert_chaos_matches(bench, &baseline, seed, 200);
        }
    }
}

#[test]
fn chaos_regression_seeds_stay_green() {
    let benches = suite(Scale::Quick);
    for &i in &CHAOS_BENCHES {
        let bench = benches[i].as_ref();
        let baseline = fault_free(bench);
        for &seed in &REGRESSION_SEEDS {
            for rate in [200, 2_000] {
                assert_chaos_matches(bench, &baseline, seed, rate);
            }
        }
    }
}

#[test]
fn chaos_actually_injects_and_recovers() {
    // Guard against the suite silently testing nothing: across a handful of
    // schedules at an aggressive rate, faults must fire and the ladder must
    // actually run.
    let benches = suite(Scale::Quick);
    let bench = benches[7].as_ref(); // ispell
    let baseline = fault_free(bench);
    let mut total_injected = 0u64;
    let mut total_recoveries = 0u64;
    for seed in 0..10u64 {
        let mut cfg = MachineConfig::test_default();
        cfg.faults = Some(FaultConfig::chaos(seed, 2_000));
        let (machine, report) = run_loop(bench.meta().paradigm, bench, &cfg, BUDGET)
            .expect("chaos run must complete");
        assert_eq!(report.outputs, baseline.outputs, "seed {seed}");
        total_injected += machine.mem().stats().injected_conflicts
            + machine.stats().injected_queue_delays
            + machine.stats().injected_wrong_path_storms;
        total_recoveries += report.recoveries;
    }
    assert!(total_injected > 0, "no faults injected at 2000 ppm");
    assert!(total_recoveries > 0, "injected conflicts must force recovery");
}

#[test]
fn injected_runs_replay_identically() {
    // Same seed, same config -> same cycle count, same statistics, same
    // recovery log. This is what makes a failing schedule debuggable.
    let benches = suite(Scale::Quick);
    let bench = benches[4].as_ref(); // parser
    let mut cfg = MachineConfig::test_default();
    cfg.faults = Some(FaultConfig::chaos(99, 1_000));
    let (m1, r1) = run_loop(bench.meta().paradigm, bench, &cfg, BUDGET).unwrap();
    let (m2, r2) = run_loop(bench.meta().paradigm, bench, &cfg, BUDGET).unwrap();
    assert_eq!(r1.cycles, r2.cycles);
    assert_eq!(r1.recoveries, r2.recoveries);
    assert_eq!(r1.outputs, r2.outputs);
    assert_eq!(
        m1.mem().stats().injected_conflicts,
        m2.mem().stats().injected_conflicts
    );
    assert_eq!(
        r1.recovery_log.iter().map(|r| r.cycle).collect::<Vec<_>>(),
        r2.recovery_log.iter().map(|r| r.cycle).collect::<Vec<_>>()
    );
}

// ---------------------------------------------------------- HyTM fallback

/// The hytm-mode differential: a fault plan (and/or capacity squeeze) may
/// demote transactions to the software slow path, but committed outputs
/// must stay byte-identical to the fault-free hytm run — and to the plain
/// HMTX run, since the slow path computes the same loop.
fn assert_hytm_chaos_matches(
    bench: &dyn Workload,
    baseline: &RunReport,
    cfg: &MachineConfig,
    label: &str,
) -> RunReport {
    let name = bench.meta().name;
    let result = run_hytm(bench.meta().paradigm, bench, cfg, BUDGET);
    let (_, report) = match result {
        Ok(r) => r,
        Err(SimError::BadProgram(msg)) => {
            panic!("{name} {label}: recoverable fallback storm ended in BadProgram: {msg}")
        }
        Err(e) => panic!("{name} {label}: {e}"),
    };
    assert_eq!(
        report.outputs, baseline.outputs,
        "{name} {label}: committed outputs must be byte-identical to the \
         fault-free run"
    );
    assert_eq!(
        report.recovery_log.len() as u64,
        report.recoveries,
        "{name} {label}: every recovery must be logged"
    );
    // Every slow-path record carries its demotion cause; fast-path retries
    // carry none.
    for r in &report.recovery_log {
        assert_eq!(
            r.rung == RecoveryRung::SoftwareSlowPath,
            r.demotion.is_some(),
            "{name} {label}: demotion cause iff slow-path rung: {r:?}"
        );
    }
    report
}

/// Pinned fallback-storm schedule 1: a capacity squeeze. Write bounds far
/// below the workloads' footprints plus the fault planner's cache squeeze
/// force `SpecOverflow` demotions on most transactions.
#[test]
fn hytm_fallback_storm_capacity_squeeze_seed_stays_green() {
    const SEED: u64 = 0xCA9A_51F7;
    let benches = suite(Scale::Quick);
    for &i in &CHAOS_BENCHES {
        let bench = benches[i].as_ref();
        let mut cfg = MachineConfig::test_default();
        cfg.hytm = HytmConfig {
            enabled: true,
            max_read_lines: 6,
            max_write_lines: 2,
            ..HytmConfig::paper_default()
        };
        let baseline = run_hytm(bench.meta().paradigm, bench, &cfg, BUDGET)
            .expect("fault-free hytm run must complete")
            .1;
        assert_eq!(
            baseline.outputs,
            fault_free(bench).outputs,
            "hytm and plain HMTX must commit identical outputs"
        );
        cfg.faults = Some(FaultConfig::chaos(SEED, 500));
        let report = assert_hytm_chaos_matches(bench, &baseline, &cfg, "capacity-squeeze");
        let mix = report.hytm.expect("hytm mix present");
        let capacity = DemotionCause::ALL
            .iter()
            .position(|c| *c == DemotionCause::Capacity)
            .unwrap();
        assert!(
            mix.demotions_by_cause[capacity] > 0,
            "{}: the squeeze must force capacity demotions: {mix:?}",
            bench.meta().name
        );
    }
}

/// Pinned fallback-storm schedule 2: a spurious-conflict burst. An
/// aggressive injected-conflict rate demotes transactions immediately
/// (injected faults bypass the retry budget), driving the storm breaker.
#[test]
fn hytm_fallback_storm_spurious_conflict_burst_seed_stays_green() {
    const SEED: u64 = 0x5B00_B157;
    let benches = suite(Scale::Quick);
    let mut any_injected_demotion = false;
    for &i in &CHAOS_BENCHES {
        let bench = benches[i].as_ref();
        let mut cfg = MachineConfig::test_default();
        cfg.hytm = HytmConfig::paper_default();
        let baseline = run_hytm(bench.meta().paradigm, bench, &cfg, BUDGET)
            .expect("fault-free hytm run must complete")
            .1;
        cfg.faults = Some(FaultConfig {
            seed: SEED,
            rate_ppm: 3_000,
            spurious_conflicts: true,
            wrong_path_storms: false,
            queue_delays: false,
            vid_squeeze: false,
            cache_squeeze: false,
            check_invariants: true,
        });
        let report = assert_hytm_chaos_matches(bench, &baseline, &cfg, "conflict-burst");
        let mix = report.hytm.expect("hytm mix present");
        let injected = DemotionCause::ALL
            .iter()
            .position(|c| *c == DemotionCause::InjectedFault)
            .unwrap();
        any_injected_demotion |= mix.demotions_by_cause[injected] > 0;
    }
    assert!(
        any_injected_demotion,
        "a 3000 ppm conflict burst must demote at least one transaction \
         across the chaos benchmarks"
    );
}

#[test]
fn hytm_chaos_differential_sweep() {
    // The full chaos plan against the hybrid mode: whatever mix of faults
    // fires, fast path + slow path together must reproduce the fault-free
    // outputs.
    let benches = suite(Scale::Quick);
    for &i in &CHAOS_BENCHES {
        let bench = benches[i].as_ref();
        let mut cfg = MachineConfig::test_default();
        cfg.hytm = HytmConfig {
            enabled: true,
            max_read_lines: 16,
            max_write_lines: 8,
            ..HytmConfig::paper_default()
        };
        let baseline = run_hytm(bench.meta().paradigm, bench, &cfg, BUDGET)
            .expect("fault-free hytm run must complete")
            .1;
        for seed in 0..20u64 {
            let mut faulty = cfg.clone();
            faulty.faults = Some(FaultConfig::chaos(seed, 400));
            assert_hytm_chaos_matches(bench, &baseline, &faulty, &format!("seed {seed}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Property: for ANY fault seed and rate, committed outputs equal the
    /// fault-free run. (The stub proptest does not shrink or persist; pin
    /// any failure it finds into `REGRESSION_SEEDS` above.)
    #[test]
    fn any_fault_schedule_preserves_outputs(
        seed in any::<u64>(),
        rate_ppm in 50u32..5_000,
        which in 0usize..3,
    ) {
        let benches = suite(Scale::Quick);
        let bench = benches[CHAOS_BENCHES[which]].as_ref();
        let baseline = fault_free(bench);
        assert_chaos_matches(bench, &baseline, seed, rate_ppm);
    }
}
