//! Chaos suite: deterministic fault injection must never change committed
//! results. For any seeded fault schedule — spurious conflicts, wrong-path
//! load storms, queue delays, VID-space squeezes, cache-capacity squeezes —
//! the recovery ladder must deliver outputs byte-identical to the
//! fault-free run, keep the protocol invariants clean, and never report
//! `BadProgram` for a recoverable condition.

use hmtx::runtime::{run_loop, RecoveryRung, RunReport};
use hmtx::types::{FaultConfig, MachineConfig, SimError};
use hmtx::workloads::{suite, Scale, Workload};
use proptest::prelude::*;

const BUDGET: u64 = 2_000_000_000;

/// Suite indices of the benchmarks the chaos suite drives: alvinn (DOALL),
/// parser (PS-DSWP), ispell (PS-DSWP) — cheap at quick scale and covering
/// both paradigm families.
const CHAOS_BENCHES: [usize; 3] = [0, 4, 7];

/// Fault schedules that historically exposed recovery bugs, pinned so they
/// run forever (the vendored proptest stub does not persist regressions).
/// Each seed is run against every chaos benchmark at two rates.
const REGRESSION_SEEDS: [u64; 8] = [
    1,
    7,
    42,
    12345,
    0xDEAD_BEEF,
    0x00FF_00FF_00FF_00FF,
    0x0123_4567_89AB_CDEF,
    u64::MAX,
];

fn fault_free(bench: &dyn Workload) -> RunReport {
    let cfg = MachineConfig::test_default();
    let (_, report) = run_loop(bench.meta().paradigm, bench, &cfg, BUDGET)
        .expect("fault-free run must complete");
    report
}

/// Runs `bench` under the full chaos fault plan and checks the differential
/// contract against the fault-free `baseline`.
fn assert_chaos_matches(bench: &dyn Workload, baseline: &RunReport, seed: u64, rate_ppm: u32) {
    let name = bench.meta().name;
    let mut cfg = MachineConfig::test_default();
    cfg.faults = Some(FaultConfig::chaos(seed, rate_ppm));
    let result = run_loop(bench.meta().paradigm, bench, &cfg, BUDGET);
    let (_, report) = match result {
        Ok(r) => r,
        Err(SimError::BadProgram(msg)) => panic!(
            "{name} seed {seed} rate {rate_ppm}: recoverable fault schedule \
             ended in BadProgram: {msg}"
        ),
        Err(e) => panic!("{name} seed {seed} rate {rate_ppm}: {e}"),
    };
    assert_eq!(
        report.outputs, baseline.outputs,
        "{name} seed {seed} rate {rate_ppm}: committed outputs must be \
         byte-identical to the fault-free run"
    );
    assert_eq!(
        report.recovery_log.len() as u64,
        report.recoveries,
        "{name} seed {seed}: every recovery must be logged"
    );
    // The ladder is strictly ordered: nothing runs after the terminal
    // non-speculative rung.
    if let Some(pos) = report
        .recovery_log
        .iter()
        .position(|r| r.rung == RecoveryRung::NonSpec)
    {
        assert_eq!(
            pos,
            report.recovery_log.len() - 1,
            "{name} seed {seed}: non-speculative fallback must be terminal"
        );
    }
}

#[test]
fn chaos_differential_100_schedules_per_benchmark() {
    let benches = suite(Scale::Quick);
    for &i in &CHAOS_BENCHES {
        let bench = benches[i].as_ref();
        let baseline = fault_free(bench);
        for seed in 0..100u64 {
            assert_chaos_matches(bench, &baseline, seed, 200);
        }
    }
}

#[test]
fn chaos_regression_seeds_stay_green() {
    let benches = suite(Scale::Quick);
    for &i in &CHAOS_BENCHES {
        let bench = benches[i].as_ref();
        let baseline = fault_free(bench);
        for &seed in &REGRESSION_SEEDS {
            for rate in [200, 2_000] {
                assert_chaos_matches(bench, &baseline, seed, rate);
            }
        }
    }
}

#[test]
fn chaos_actually_injects_and_recovers() {
    // Guard against the suite silently testing nothing: across a handful of
    // schedules at an aggressive rate, faults must fire and the ladder must
    // actually run.
    let benches = suite(Scale::Quick);
    let bench = benches[7].as_ref(); // ispell
    let baseline = fault_free(bench);
    let mut total_injected = 0u64;
    let mut total_recoveries = 0u64;
    for seed in 0..10u64 {
        let mut cfg = MachineConfig::test_default();
        cfg.faults = Some(FaultConfig::chaos(seed, 2_000));
        let (machine, report) = run_loop(bench.meta().paradigm, bench, &cfg, BUDGET)
            .expect("chaos run must complete");
        assert_eq!(report.outputs, baseline.outputs, "seed {seed}");
        total_injected += machine.mem().stats().injected_conflicts
            + machine.stats().injected_queue_delays
            + machine.stats().injected_wrong_path_storms;
        total_recoveries += report.recoveries;
    }
    assert!(total_injected > 0, "no faults injected at 2000 ppm");
    assert!(total_recoveries > 0, "injected conflicts must force recovery");
}

#[test]
fn injected_runs_replay_identically() {
    // Same seed, same config -> same cycle count, same statistics, same
    // recovery log. This is what makes a failing schedule debuggable.
    let benches = suite(Scale::Quick);
    let bench = benches[4].as_ref(); // parser
    let mut cfg = MachineConfig::test_default();
    cfg.faults = Some(FaultConfig::chaos(99, 1_000));
    let (m1, r1) = run_loop(bench.meta().paradigm, bench, &cfg, BUDGET).unwrap();
    let (m2, r2) = run_loop(bench.meta().paradigm, bench, &cfg, BUDGET).unwrap();
    assert_eq!(r1.cycles, r2.cycles);
    assert_eq!(r1.recoveries, r2.recoveries);
    assert_eq!(r1.outputs, r2.outputs);
    assert_eq!(
        m1.mem().stats().injected_conflicts,
        m2.mem().stats().injected_conflicts
    );
    assert_eq!(
        r1.recovery_log.iter().map(|r| r.cycle).collect::<Vec<_>>(),
        r2.recovery_log.iter().map(|r| r.cycle).collect::<Vec<_>>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Property: for ANY fault seed and rate, committed outputs equal the
    /// fault-free run. (The stub proptest does not shrink or persist; pin
    /// any failure it finds into `REGRESSION_SEEDS` above.)
    #[test]
    fn any_fault_schedule_preserves_outputs(
        seed in any::<u64>(),
        rate_ppm in 50u32..5_000,
        which in 0usize..3,
    ) {
        let benches = suite(Scale::Quick);
        let bench = benches[CHAOS_BENCHES[which]].as_ref();
        let baseline = fault_free(bench);
        assert_chaos_matches(bench, &baseline, seed, rate_ppm);
    }
}
