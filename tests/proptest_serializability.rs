//! Property-based tests of the HMTX protocol: under *random* multithreaded
//! transactional programs and interleavings,
//!
//! 1. the committed state always equals a serial execution of the committed
//!    transactions in VID order (or everything aborted cleanly);
//! 2. lazy and eager commit processing are observationally equivalent;
//! 3. VID reuse after a reset is safe.
//!
//! Hit-rule uniqueness and state-machine invariants are enforced by debug
//! assertions inside the protocol, which these tests exercise densely.

use std::collections::HashMap;

use hmtx::core::{AccessKind, AccessRequest, AccessResponse, MemorySystem};
use hmtx::types::{Addr, CoreId, MachineConfig, Vid};
use proptest::prelude::*;

/// One speculative memory operation of a random program.
#[derive(Debug, Clone)]
struct Op {
    tx: u16, // 1-based transaction number = VID
    core: usize,
    addr: Addr,
    write: Option<u64>,
}

/// A random multithreaded-transaction program: ops grouped by transaction,
/// plus a seed for the biased interleaving.
#[derive(Debug, Clone)]
struct RandomProgram {
    ops: Vec<Op>, // interleaved schedule, intra-TX order preserved
    txs: u16,
}

fn interleave(per_tx: Vec<Vec<(usize, u64, bool)>>, seed: u64) -> RandomProgram {
    let txs = per_tx.len() as u16;
    let mut cursors = vec![0usize; per_tx.len()];
    let mut ops = Vec::new();
    let mut rng = seed | 1;
    let window = 3usize;
    loop {
        let oldest_unfinished = cursors
            .iter()
            .zip(&per_tx)
            .position(|(c, ops)| *c < ops.len());
        let Some(oldest) = oldest_unfinished else {
            break;
        };
        // Candidates: unfinished TXs within `window` of the oldest.
        let candidates: Vec<usize> = (oldest..per_tx.len().min(oldest + window))
            .filter(|&t| cursors[t] < per_tx[t].len())
            .collect();
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let t = candidates[(rng as usize) % candidates.len()];
        let (addr_idx, value, is_write) = per_tx[t][cursors[t]];
        cursors[t] += 1;
        ops.push(Op {
            tx: (t + 1) as u16,
            core: (rng >> 8) as usize % 4,
            addr: Addr(0x4_0000 + addr_idx as u64 * 64),
            write: is_write.then_some(value),
        });
    }
    RandomProgram { ops, txs }
}

fn arb_program() -> impl Strategy<Value = RandomProgram> {
    let tx_ops = prop::collection::vec((0usize..6, any::<u64>(), any::<bool>()), 1..8);
    (prop::collection::vec(tx_ops, 2..6), any::<u64>())
        .prop_map(|(per_tx, seed)| interleave(per_tx, seed))
}

/// Outcome of driving a program through the memory system.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    committed: u16, // transactions committed (all with VID <= committed)
    words: Vec<u64>,
}

/// Drives the schedule, committing each transaction as soon as it and all
/// earlier ones have finished their ops. On misspeculation, aborts all
/// uncommitted state and stops.
fn execute(p: &RandomProgram, lazy: bool) -> Outcome {
    let mut cfg = MachineConfig::test_default();
    cfg.hmtx.lazy_commit = lazy;
    let mut mem = MemorySystem::new(cfg);
    let mut remaining: HashMap<u16, usize> = HashMap::new();
    for op in &p.ops {
        *remaining.entry(op.tx).or_insert(0) += 1;
    }
    let mut committed = 0u16;
    let mut now = 0u64;
    let mut aborted = false;
    for op in &p.ops {
        now += 10;
        let req = AccessRequest {
            core: CoreId(op.core),
            addr: op.addr,
            kind: match op.write {
                Some(v) => AccessKind::Write(v),
                None => AccessKind::Read,
            },
            vid: Vid(op.tx),
            wrong_path: false,
        };
        match mem.access(now, &req).expect("well-formed") {
            AccessResponse::Done { .. } => {}
            AccessResponse::Misspec { .. } => {
                mem.abort_all(now);
                aborted = true;
                break;
            }
        }
        *remaining.get_mut(&op.tx).unwrap() -= 1;
        // Commit every transaction that is finished and next in order.
        while committed < p.txs && remaining.get(&(committed + 1)).is_some_and(|r| *r == 0) {
            committed += 1;
            now += 10;
            mem.commit(now, Vid(committed)).expect("consecutive commit");
        }
    }
    if !aborted {
        // Commit any stragglers (all ops done by construction).
        while committed < p.txs {
            committed += 1;
            now += 10;
            mem.commit(now, Vid(committed)).expect("consecutive commit");
        }
    }
    let violations = mem.check_invariants();
    assert!(
        violations.is_empty(),
        "protocol invariants violated: {violations:?}"
    );
    mem.drain_committed()
        .expect("no speculative leftovers after abort/commit");
    let words = (0..6)
        .map(|i| mem.memory().read_word(Addr(0x4_0000 + i * 64)))
        .collect();
    Outcome { committed, words }
}

/// Serial reference: executes transactions `1..=n` in VID order.
fn reference(p: &RandomProgram, n: u16) -> Vec<u64> {
    let mut memory: HashMap<u64, u64> = HashMap::new();
    for tx in 1..=n {
        for op in p.ops.iter().filter(|o| o.tx == tx) {
            if let Some(v) = op.write {
                memory.insert(op.addr.0, v);
            }
        }
    }
    (0..6)
        .map(|i| *memory.get(&(0x4_0000 + i * 64)).unwrap_or(&0))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Committed state equals the serial execution of the committed prefix.
    #[test]
    fn committed_state_is_vid_serializable(p in arb_program()) {
        let outcome = execute(&p, true);
        let expected = reference(&p, outcome.committed);
        prop_assert_eq!(outcome.words, expected);
    }

    /// Lazy and eager commit processing agree on both the outcome and the
    /// final committed image.
    #[test]
    fn lazy_and_eager_commit_are_equivalent(p in arb_program()) {
        let lazy = execute(&p, true);
        let eager = execute(&p, false);
        prop_assert_eq!(lazy, eager);
    }

    /// Running a program twice with a VID reset in between equals the
    /// serial double execution (VID reuse is safe).
    #[test]
    fn vid_reuse_after_reset_is_safe(p in arb_program()) {
        let mut cfg = MachineConfig::test_default();
        cfg.hmtx.vid_bits = 4;
        let mut mem = MemorySystem::new(cfg);
        let mut now = 0u64;
        let mut clean = true;
        'rounds: for _round in 0..2 {
            for tx in 1..=p.txs {
                for op in p.ops.iter().filter(|o| o.tx == tx) {
                    now += 10;
                    let req = AccessRequest {
                        core: CoreId(op.core),
                        addr: op.addr,
                        kind: match op.write {
                            Some(v) => AccessKind::Write(v),
                            None => AccessKind::Read,
                        },
                        vid: Vid(tx),
                        wrong_path: false,
                    };
                    match mem.access(now, &req).expect("well-formed") {
                        AccessResponse::Done { .. } => {}
                        AccessResponse::Misspec { cause, .. } => {
                            // In-VID-order execution can still trip the
                            // conservative same-VID-window rules only via
                            // cross-core sharing; treat as abort-everything.
                            let _ = cause;
                            mem.abort_all(now);
                            clean = false;
                            break 'rounds;
                        }
                    }
                }
                now += 10;
                mem.commit(now, Vid(tx)).expect("consecutive");
            }
            now += 10;
            mem.vid_reset(now);
        }
        if clean {
            mem.drain_committed().expect("clean");
            let words: Vec<u64> =
                (0..6).map(|i| mem.memory().read_word(Addr(0x4_0000 + i * 64))).collect();
            // Serial double execution = serial single execution of the final
            // values (writes are last-writer-wins).
            prop_assert_eq!(words, reference(&p, p.txs));
        }
    }
}
