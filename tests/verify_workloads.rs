//! Golden and negative tests for the `hmtx-analysis` static verifier.
//!
//! Golden half: every program set the shipped emitters can generate — all 8
//! workloads under every HMTX paradigm, the single-transaction recovery
//! shape, and every SMTX read/write-set mode — must verify with zero
//! diagnostics. A flag on freshly emitted code is a bug in the emitter or a
//! false positive in the analyzer; either must fail CI.
//!
//! Negative half: a corpus of deliberately broken programs, at least two per
//! rule, pinning each rule's id and the exact (core, pc) it anchors to.

use hmtx::analysis::{verify_program, verify_set, VerifyReport};
use hmtx::isa::{Cond, Program, ProgramBuilder, Reg};
use hmtx::runtime::{build_paradigm, emit, verify_generated, LoopEnv, Paradigm};
use hmtx::smtx::emit::build_smtx_pipeline;
use hmtx::smtx::RwSetMode;
use hmtx::types::{MachineConfig, QueueId, Severity};
use hmtx::workloads::{suite, Scale};

// ---------------------------------------------------------------------------
// Golden: shipped emitters produce verifiably clean code.
// ---------------------------------------------------------------------------

#[test]
fn all_hmtx_paradigm_emitters_verify_clean() {
    let cfg = MachineConfig::paper_default();
    let max_vid = cfg.hmtx.max_vid().0;
    for workload in suite(Scale::Quick) {
        let name = workload.meta().name;
        for paradigm in [
            Paradigm::Sequential,
            Paradigm::Doall,
            Paradigm::Doacross,
            Paradigm::Dswp,
            Paradigm::PsDswp,
        ] {
            let workers = match paradigm {
                Paradigm::Sequential | Paradigm::Dswp => 1,
                Paradigm::Doall | Paradigm::Doacross => cfg.num_cores,
                Paradigm::PsDswp => cfg.num_cores.saturating_sub(1).max(1),
            };
            let env = LoopEnv::new(max_vid, workers).with_pipeline_window(cfg.pipeline_window);
            let generated =
                build_paradigm(paradigm, workload.as_ref(), &env, 1).expect("emission succeeds");
            let report = verify_generated(&generated);
            assert!(
                report.is_clean(),
                "{name}/{} flagged:\n{}",
                paradigm.name(),
                report.render_text()
            );
        }
    }
}

#[test]
fn single_tx_recovery_shape_verifies_clean() {
    let cfg = MachineConfig::paper_default();
    let env = LoopEnv::new(cfg.hmtx.max_vid().0, 1).with_pipeline_window(cfg.pipeline_window);
    for workload in suite(Scale::Quick) {
        let generated =
            emit::build_single_tx(workload.as_ref(), &env, 3).expect("emission succeeds");
        let report = verify_generated(&generated);
        assert!(
            report.is_clean(),
            "{}/single-tx flagged:\n{}",
            workload.meta().name,
            report.render_text()
        );
    }
}

#[test]
fn all_smtx_pipeline_emitters_verify_clean() {
    let cfg = MachineConfig::paper_default();
    let workers = cfg.num_cores.saturating_sub(2).max(1);
    let env = LoopEnv::new(cfg.hmtx.max_vid().0, workers);
    for workload in suite(Scale::Quick) {
        for mode in [RwSetMode::Minimal, RwSetMode::Substantial, RwSetMode::Maximal] {
            let generated = build_smtx_pipeline(workload.as_ref(), &env, &cfg.smtx, mode)
                .expect("emission succeeds");
            let report = verify_generated(&generated);
            assert!(
                report.is_clean(),
                "{}/smtx-{} flagged:\n{}",
                workload.meta().name,
                mode.name(),
                report.render_text()
            );
        }
    }
}

#[test]
fn hytm_watchdog_emitters_verify_clean() {
    // The HyTM fast path arms the VID-exhaustion watchdog, whose
    // sentinel-abort escape (`li T0, 0x7FFF; abortMTX T0`) the analyzer
    // resolves via constant propagation.
    let mut cfg = MachineConfig::paper_default();
    if !cfg.hytm.enabled {
        cfg.hytm = hmtx::types::HytmConfig::paper_default();
    }
    for workload in suite(Scale::Quick) {
        let paradigm = workload.meta().paradigm;
        let workers = match paradigm {
            Paradigm::Sequential | Paradigm::Dswp => 1,
            Paradigm::Doall | Paradigm::Doacross => cfg.num_cores,
            Paradigm::PsDswp => cfg.num_cores.saturating_sub(1).max(1),
        };
        let (run_cfg, max_vid) = hmtx::runtime::squeezed_config(&cfg);
        let env = LoopEnv::new(max_vid, workers)
            .with_pipeline_window(run_cfg.pipeline_window)
            .with_vid_watchdog(run_cfg.hytm.watchdog_spins);
        let generated =
            build_paradigm(paradigm, workload.as_ref(), &env, 1).expect("emission succeeds");
        let report = verify_generated(&generated);
        assert!(
            report.is_clean(),
            "{}/hytm-{} flagged:\n{}",
            workload.meta().name,
            paradigm.name(),
            report.render_text()
        );
    }
}

#[test]
fn vcli_all_workloads_gate_is_clean() {
    let opts = hmtx::vcli::Options {
        all_workloads: true,
        ..hmtx::vcli::Options::default()
    };
    let report = hmtx::vcli::run(&opts).expect("vcli runs");
    assert_eq!(report.exit_code(), 0, "{}", report.output);
    assert_eq!(report.diagnostics, 0);
    // 8 workloads × (5 paradigms + single-tx + hytm + 3 smtx modes).
    assert!(
        report.output.contains("80 set(s) verified"),
        "{}",
        report.output
    );
    assert!(report.output.contains("/hytm-"), "{}", report.output);
}

// ---------------------------------------------------------------------------
// Negative corpus: every rule fires, with the expected id, severity, and pc.
// ---------------------------------------------------------------------------

fn prog(f: impl FnOnce(&mut ProgramBuilder)) -> Program {
    let mut b = ProgramBuilder::new();
    f(&mut b);
    b.build().expect("corpus program assembles")
}

/// Asserts `report` contains `rule` at exactly (`core`, `pc`) with the
/// given severity.
#[track_caller]
fn expect_flag(report: &VerifyReport, rule: &str, severity: Severity, core: usize, pc: usize) {
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == rule && d.severity == severity && d.core == core && d.pc == pc),
        "expected {severity}: [{rule}] at core {core} pc {pc}, got:\n{}",
        report.render_text()
    );
}

fn verify_two(p0: &Program, p1: &Program) -> VerifyReport {
    verify_set(&[p0, p1])
}

#[test]
fn corpus_mtx_halt_speculative() {
    // Explicit halt inside an open MTX.
    let p = prog(|b| {
        b.li(Reg::R1, 1).begin_mtx(Reg::R1).halt();
    });
    expect_flag(&verify_program(&p), "mtx-halt-speculative", Severity::Error, 0, 2);

    // Falling off the end inside an open MTX (implicit exit).
    let p = prog(|b| {
        b.li(Reg::R1, 1).begin_mtx(Reg::R1).li(Reg::R2, 5);
    });
    expect_flag(&verify_program(&p), "mtx-halt-speculative", Severity::Error, 0, 2);
}

#[test]
fn corpus_mtx_begin_while_speculative() {
    let p = prog(|b| {
        b.li(Reg::R1, 1)
            .begin_mtx(Reg::R1)
            .li(Reg::R2, 2)
            .begin_mtx(Reg::R2)
            .commit_mtx(Reg::R2)
            .halt();
    });
    expect_flag(&verify_program(&p), "mtx-begin-while-speculative", Severity::Error, 0, 3);

    let p = prog(|b| {
        b.li(Reg::R1, 1)
            .begin_mtx(Reg::R1)
            .begin_mtx(Reg::R1)
            .commit_mtx(Reg::R1)
            .halt();
    });
    expect_flag(&verify_program(&p), "mtx-begin-while-speculative", Severity::Error, 0, 2);
}

#[test]
fn corpus_mtx_vid_mismatch() {
    // Commit names a register holding a different (known) VID.
    let p = prog(|b| {
        b.li(Reg::R1, 1)
            .li(Reg::R2, 2)
            .begin_mtx(Reg::R1)
            .commit_mtx(Reg::R2)
            .halt();
    });
    expect_flag(&verify_program(&p), "mtx-vid-mismatch", Severity::Error, 0, 3);

    let p = prog(|b| {
        b.li(Reg::R1, 3)
            .begin_mtx(Reg::R1)
            .li(Reg::R2, 4)
            .commit_mtx(Reg::R2)
            .halt();
    });
    expect_flag(&verify_program(&p), "mtx-vid-mismatch", Severity::Error, 0, 3);
}

#[test]
fn corpus_mtx_vid_clobber() {
    let p = prog(|b| {
        b.li(Reg::R1, 1)
            .begin_mtx(Reg::R1)
            .li(Reg::R1, 2)
            .commit_mtx(Reg::R1)
            .halt();
    });
    expect_flag(&verify_program(&p), "mtx-vid-clobber", Severity::Error, 0, 2);

    let p = prog(|b| {
        b.li(Reg::R1, 1)
            .begin_mtx(Reg::R1)
            .addi(Reg::R1, Reg::R1, 1)
            .commit_mtx(Reg::R1)
            .halt();
    });
    expect_flag(&verify_program(&p), "mtx-vid-clobber", Severity::Error, 0, 2);
}

#[test]
fn corpus_mtx_double_commit() {
    let p = prog(|b| {
        b.li(Reg::R1, 1)
            .begin_mtx(Reg::R1)
            .commit_mtx(Reg::R1)
            .commit_mtx(Reg::R1)
            .halt();
    });
    expect_flag(&verify_program(&p), "mtx-double-commit", Severity::Error, 0, 3);

    let p = prog(|b| {
        b.li(Reg::R1, 1)
            .begin_mtx(Reg::R1)
            .commit_mtx(Reg::R1)
            .mov(Reg::R2, Reg::R1)
            .commit_mtx(Reg::R1)
            .halt();
    });
    expect_flag(&verify_program(&p), "mtx-double-commit", Severity::Error, 0, 4);
}

#[test]
fn corpus_mtx_vidreset_speculative() {
    let p = prog(|b| {
        b.li(Reg::R1, 1)
            .begin_mtx(Reg::R1)
            .vid_reset()
            .commit_mtx(Reg::R1)
            .halt();
    });
    expect_flag(&verify_program(&p), "mtx-vidreset-speculative", Severity::Error, 0, 2);

    let p = prog(|b| {
        b.li(Reg::R1, 1)
            .begin_mtx(Reg::R1)
            .compute(1)
            .vid_reset()
            .commit_mtx(Reg::R1)
            .halt();
    });
    expect_flag(&verify_program(&p), "mtx-vidreset-speculative", Severity::Error, 0, 3);
}

#[test]
fn corpus_mtx_state_divergence() {
    // One branch arm begins an MTX, the other does not; the join sees both.
    let p = prog(|b| {
        let skip = b.new_label();
        b.li(Reg::R1, 1);
        b.branch_imm(Cond::Eq, Reg::R1, 0, skip);
        b.li(Reg::R2, 1);
        b.begin_mtx(Reg::R2);
        b.bind(skip).unwrap();
        b.halt();
    });
    expect_flag(&verify_program(&p), "mtx-state-divergence", Severity::Error, 0, 4);

    let p = prog(|b| {
        let skip = b.new_label();
        b.li(Reg::R2, 1);
        b.branch_imm(Cond::Eq, Reg::R2, 1, skip);
        b.begin_mtx(Reg::R2);
        b.bind(skip).unwrap();
        b.halt();
    });
    expect_flag(&verify_program(&p), "mtx-state-divergence", Severity::Error, 0, 3);
}

#[test]
fn corpus_mtx_init_speculative() {
    let p = prog(|b| {
        let h = b.new_label();
        b.li(Reg::R1, 1);
        b.begin_mtx(Reg::R1);
        b.init_mtx(h);
        b.commit_mtx(Reg::R1);
        b.bind(h).unwrap();
        b.halt();
    });
    expect_flag(&verify_program(&p), "mtx-init-speculative", Severity::Warning, 0, 2);

    let p = prog(|b| {
        let h = b.new_label();
        b.li(Reg::R1, 2);
        b.begin_mtx(Reg::R1);
        b.compute(1);
        b.init_mtx(h);
        b.commit_mtx(Reg::R1);
        b.bind(h).unwrap();
        b.halt();
    });
    expect_flag(&verify_program(&p), "mtx-init-speculative", Severity::Warning, 0, 3);
}

#[test]
fn corpus_mtx_end_without_begin() {
    let p = prog(|b| {
        b.li(Reg::R1, 1).commit_mtx(Reg::R1).halt();
    });
    expect_flag(&verify_program(&p), "mtx-end-without-begin", Severity::Warning, 0, 1);

    let p = prog(|b| {
        b.li(Reg::R1, 1).abort_mtx(Reg::R1);
    });
    expect_flag(&verify_program(&p), "mtx-end-without-begin", Severity::Warning, 0, 1);
}

#[test]
fn corpus_mtx_never_committed() {
    // Begins and leaves (VID 0) but nobody in the set ever commits.
    let p = prog(|b| {
        b.li(Reg::R1, 1)
            .begin_mtx(Reg::R1)
            .li(Reg::R2, 0)
            .begin_mtx(Reg::R2)
            .halt();
    });
    expect_flag(&verify_set(&[&p]), "mtx-never-committed", Severity::Error, 0, 1);

    let p = prog(|b| {
        b.compute(1)
            .li(Reg::R1, 4)
            .begin_mtx(Reg::R1)
            .li(Reg::R2, 0)
            .begin_mtx(Reg::R2)
            .halt();
    });
    expect_flag(&verify_set(&[&p]), "mtx-never-committed", Severity::Error, 0, 2);
}

#[test]
fn corpus_reg_use_before_def() {
    let p = prog(|b| {
        b.add(Reg::R3, Reg::R1, Reg::R2).out(Reg::R3).halt();
    });
    expect_flag(&verify_program(&p), "reg-use-before-def", Severity::Warning, 0, 0);

    let p = prog(|b| {
        b.li(Reg::R1, 5).store(Reg::R1, Reg::R2, 0).halt();
    });
    expect_flag(&verify_program(&p), "reg-use-before-def", Severity::Warning, 0, 1);
}

#[test]
fn corpus_queue_no_consumer() {
    let p = prog(|b| {
        b.li(Reg::R1, 1).produce(QueueId(0), Reg::R1).halt();
    });
    expect_flag(&verify_set(&[&p]), "queue-no-consumer", Severity::Error, 0, 1);

    let p0 = prog(|b| {
        b.li(Reg::R1, 1).produce(QueueId(3), Reg::R1).halt();
    });
    let p1 = prog(|b| {
        b.li(Reg::R1, 1).out(Reg::R1).halt();
    });
    expect_flag(&verify_two(&p0, &p1), "queue-no-consumer", Severity::Error, 0, 1);
}

#[test]
fn corpus_queue_no_producer() {
    let p = prog(|b| {
        b.consume(Reg::R1, QueueId(0)).out(Reg::R1).halt();
    });
    expect_flag(&verify_set(&[&p]), "queue-no-producer", Severity::Error, 0, 0);

    let p0 = prog(|b| {
        b.li(Reg::R1, 1).out(Reg::R1).halt();
    });
    let p1 = prog(|b| {
        b.consume(Reg::R1, QueueId(5)).halt();
    });
    expect_flag(&verify_two(&p0, &p1), "queue-no-producer", Severity::Error, 1, 0);
}

#[test]
fn corpus_queue_multi_consumer() {
    let p0 = prog(|b| {
        b.li(Reg::R1, 1)
            .produce(QueueId(0), Reg::R1)
            .produce(QueueId(0), Reg::R1)
            .halt();
    });
    let p1 = prog(|b| {
        b.consume(Reg::R1, QueueId(0)).halt();
    });
    let p2 = prog(|b| {
        b.consume(Reg::R1, QueueId(0)).halt();
    });
    let report = verify_set(&[&p0, &p1, &p2]);
    expect_flag(&report, "queue-multi-consumer", Severity::Warning, 2, 0);

    let p2 = prog(|b| {
        b.li(Reg::R1, 1).consume(Reg::R2, QueueId(0)).halt();
    });
    let report = verify_set(&[&p0, &p1, &p2]);
    expect_flag(&report, "queue-multi-consumer", Severity::Warning, 2, 1);
}

#[test]
fn corpus_queue_deadlock_cycle() {
    // Two cores each consume before producing for the other.
    let p0 = prog(|b| {
        b.consume(Reg::R1, QueueId(1))
            .li(Reg::R2, 1)
            .produce(QueueId(0), Reg::R2)
            .halt();
    });
    let p1 = prog(|b| {
        b.consume(Reg::R1, QueueId(0))
            .li(Reg::R2, 1)
            .produce(QueueId(1), Reg::R2)
            .halt();
    });
    expect_flag(&verify_two(&p0, &p1), "queue-deadlock-cycle", Severity::Error, 0, 0);

    // Three-core ring, everyone waiting on the previous core.
    let ring = |qin: usize, qout: usize| {
        prog(move |b| {
            b.consume(Reg::R1, QueueId(qin))
                .li(Reg::R2, 1)
                .produce(QueueId(qout), Reg::R2)
                .halt();
        })
    };
    let (p0, p1, p2) = (ring(2, 0), ring(0, 1), ring(1, 2));
    expect_flag(
        &verify_set(&[&p0, &p1, &p2]),
        "queue-deadlock-cycle",
        Severity::Error,
        0,
        0,
    );
}

#[test]
fn corpus_queue_rate_mismatch() {
    // Producer sends 1, consumer demands 2 — consumer blocks forever.
    let p0 = prog(|b| {
        b.li(Reg::R1, 1).produce(QueueId(0), Reg::R1).halt();
    });
    let p1 = prog(|b| {
        b.consume(Reg::R1, QueueId(0))
            .consume(Reg::R2, QueueId(0))
            .halt();
    });
    expect_flag(&verify_two(&p0, &p1), "queue-rate-mismatch", Severity::Error, 1, 0);

    // Producer's best case (1) is below the consumer's demand (2).
    let p0 = prog(|b| {
        let skip = b.new_label();
        b.li(Reg::R1, 1);
        b.branch_imm(Cond::Eq, Reg::R1, 1, skip);
        b.produce(QueueId(0), Reg::R1);
        b.bind(skip).unwrap();
        b.halt();
    });
    expect_flag(&verify_two(&p0, &p1), "queue-rate-mismatch", Severity::Error, 1, 0);
}

#[test]
fn corpus_queue_rate_surplus() {
    // Producer always sends 2, consumer takes at most 1 — words pile up.
    let p0 = prog(|b| {
        b.li(Reg::R1, 1)
            .produce(QueueId(0), Reg::R1)
            .produce(QueueId(0), Reg::R1)
            .halt();
    });
    let p1 = prog(|b| {
        b.consume(Reg::R1, QueueId(0)).halt();
    });
    expect_flag(&verify_two(&p0, &p1), "queue-rate-surplus", Severity::Warning, 0, 1);

    let p1 = prog(|b| {
        let skip = b.new_label();
        b.li(Reg::R1, 1);
        b.branch_imm(Cond::Eq, Reg::R1, 1, skip);
        b.consume(Reg::R2, QueueId(0));
        b.bind(skip).unwrap();
        b.halt();
    });
    expect_flag(&verify_two(&p0, &p1), "queue-rate-surplus", Severity::Warning, 0, 1);
}

#[test]
fn corpus_model_checker_counterexamples() {
    // Model-checker-sourced entries (shared with `hmtx-modelcheck`, which
    // rediscovers and replays them at the protocol level): the lowered
    // trace leaves its transactions open at the violating access, so the
    // verifier flags every speculative core and the set.
    use hmtx::analysis::{lower_counterexample, model_counterexamples};
    let entries = model_counterexamples();
    assert!(entries.len() >= 2, "corpus must hold at least two entries");
    for entry in &entries {
        let programs = lower_counterexample(&entry.ops);
        let refs: Vec<&Program> = programs.iter().collect();
        let report = verify_set(&refs);
        match entry.name {
            // core 0: li,begin,li,ld,halt; core 1: li,begin,li,ld,halt.
            "read-migration-replica" => {
                expect_flag(&report, "mtx-halt-speculative", Severity::Error, 0, 4);
                expect_flag(&report, "mtx-halt-speculative", Severity::Error, 1, 4);
                expect_flag(&report, "mtx-never-committed", Severity::Error, 0, 1);
            }
            // core 0: li,begin,li,ld,halt; core 1: li,begin,li,li,st,halt.
            "dirty-migration-replica" => {
                expect_flag(&report, "mtx-halt-speculative", Severity::Error, 0, 4);
                expect_flag(&report, "mtx-halt-speculative", Severity::Error, 1, 5);
                expect_flag(&report, "mtx-never-committed", Severity::Error, 0, 1);
            }
            other => panic!("unpinned corpus entry `{other}`"),
        }
    }
}

#[test]
fn corpus_spec_store_escape() {
    // Core 1 writes the same 64-byte line that core 0 wrote speculatively.
    let p0 = prog(|b| {
        b.li(Reg::R1, 1)
            .li(Reg::R2, 0x100000)
            .begin_mtx(Reg::R1)
            .store(Reg::R1, Reg::R2, 0)
            .commit_mtx(Reg::R1)
            .halt();
    });
    let p1 = prog(|b| {
        b.li(Reg::R3, 0x100008)
            .li(Reg::R4, 7)
            .store(Reg::R4, Reg::R3, 0)
            .halt();
    });
    expect_flag(&verify_two(&p0, &p1), "spec-store-escape", Severity::Warning, 1, 2);

    // Same core, same symbolic address (r6+8), inside then outside the MTX.
    let p = prog(|b| {
        b.li(Reg::R1, 1)
            .li(Reg::R5, 0x200000)
            .load(Reg::R6, Reg::R5, 0)
            .begin_mtx(Reg::R1)
            .store(Reg::R1, Reg::R6, 8)
            .commit_mtx(Reg::R1)
            .store(Reg::R1, Reg::R6, 8)
            .halt();
    });
    expect_flag(&verify_set(&[&p]), "spec-store-escape", Severity::Warning, 0, 6);
}
