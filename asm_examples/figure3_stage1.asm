; Figure 3(b) of the paper: speculative DSWP stage 1.
; Walks a linked list (word 0 = next, word 1 = payload), publishing each
; node through the versioned producedNode slot at 0x200000 and its VID
; through hardware queue q0.
    li   r10, 1              ; vid = 1
    li   r9, 0x200040
    ld   r0, (r9)            ; node (non-speculative initial load)
    beq  r0, 0, finish
loop:
    beginMTX r10
    li   r8, 0x200000
    st   r0, (r8)            ; producedNode = node
    ld   r0, (r0)            ; node = node->next
    li   r7, 0
    beginMTX r7
    produce q0, r10          ; produceVID(vid++)
    add  r10, r10, 1
    bne  r0, 0, loop
finish:
    li   r7, 0
    produce q0, r7           ; produceVID(0)
    halt
