; Figure 3(c): speculative DSWP stage 2. Consumes VIDs, continues each
; transaction, runs work(node), commits in order; aborts later iterations
; if the early-exit condition (w > 100) fires.
loop:
    consume r10, q0          ; vid = consumeVID()
    beq  r10, 0, done
    beginMTX r10
    li   r8, 0x200000
    ld   r0, (r8)            ; this VID's producedNode version
    ld   r1, 8(r0)           ; w = work(node)
    out  r1
    commitMTX r10
    bgeu r1, 101, do_abort   ; if (w > MAX): abortMTX(vid+1)
    j    loop
do_abort:
    add  r11, r10, 1
    abortMTX r11
done:
    halt
