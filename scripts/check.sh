#!/usr/bin/env bash
# Full local verification: format, lints, tests, docs, experiments smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace
cargo doc --workspace --no-deps
cargo run --release -p hmtx-bench --bin experiments -- table2 --quick >/dev/null
echo "all checks passed"
