#!/usr/bin/env bash
# Smoke gate for the hmtx-serve serving layer: start a server on an
# ephemeral port, push a small hmtx-load burst twice (cold then warm cache),
# verify byte-identical responses and cache-hit accounting, then check a
# SIGTERM drain exits cleanly. Nonzero exit on any failure.
set -euo pipefail
cd "$(dirname "$0")/.."

PROFILE="${PROFILE:-release}"
SERVE="target/${PROFILE}/hmtx-serve"
LOAD="target/${PROFILE}/hmtx-load"
[ -x "$SERVE" ] || cargo build --release -p hmtx-server

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -9 "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

# --- start the server on an ephemeral port, parse the bound address -------
"$SERVE" --addr 127.0.0.1:0 --workers 2 --cache-dir "$WORK/cache" \
  >"$WORK/serve.out" 2>"$WORK/serve.err" &
SERVER_PID=$!

ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's/^listening on //p' "$WORK/serve.out" | head -n1)"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
if [ -z "$ADDR" ]; then
  echo "serve_smoke: server never reported its address" >&2
  cat "$WORK/serve.err" >&2 || true
  exit 1
fi
echo "serve_smoke: server at $ADDR (pid $SERVER_PID)"

# --- cold + warm burst with byte-identity checking ------------------------
# Small burst (the container may have very few cores): first 6 sweep jobs,
# 2 client connections, 2 rounds. --check makes hmtx-load itself fail on
# any non-result response or cross-round byte difference.
"$LOAD" --addr "$ADDR" --clients 2 --rounds 2 --limit 6 --check \
  --json "$WORK/load.json"

# --- verify the warm round was served from cache --------------------------
python3 - "$WORK/load.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
rounds = report["rounds"]
assert len(rounds) == 2, rounds
cold, warm = rounds
assert cold["ok"] == cold["jobs"], f"cold round failures: {cold}"
assert warm["ok"] == warm["jobs"], f"warm round failures: {warm}"
cold_delta = cold["server_delta"]
warm_delta = warm["server_delta"]
assert cold_delta["executed"] == cold["jobs"], f"cold round must execute every job: {cold_delta}"
assert warm_delta["executed"] == 0, f"warm round must execute nothing: {warm_delta}"
assert warm_delta["cache_hits"] == warm["jobs"], f"warm round must hit per job: {warm_delta}"
print(f"serve_smoke: cold executed {cold_delta['executed']}, "
      f"warm hit {warm_delta['cache_hits']}/{warm['jobs']} "
      f"(speedup {report['summary']['warm_over_cold_speedup']:.1f}x)")
EOF

# --- graceful drain on SIGTERM --------------------------------------------
kill -TERM "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "serve_smoke: server did not drain within 10s of SIGTERM" >&2
  exit 1
fi
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
grep -q "drained, exiting" "$WORK/serve.err" || {
  echo "serve_smoke: server exited without reporting a clean drain" >&2
  cat "$WORK/serve.err" >&2
  exit 1
}

echo "serve_smoke: green"
