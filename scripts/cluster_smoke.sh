#!/usr/bin/env bash
# Smoke gate for the cluster layer: 3 hmtx-serve backends behind an
# hmtx-router on ephemeral ports. A checked mini-sweep through the router
# must be all-results and byte-identical across rounds; after one backend
# is killed hard (kill -9, not a drain) a second checked sweep must still
# be green via ring failover; the `cluster` frame must report the fleet;
# and SIGTERM must drain the router cleanly. Nonzero exit on any failure.
set -euo pipefail
cd "$(dirname "$0")/.."

PROFILE="${PROFILE:-release}"
SERVE="target/${PROFILE}/hmtx-serve"
ROUTER="target/${PROFILE}/hmtx-router"
LOAD="target/${PROFILE}/hmtx-load"
{ [ -x "$SERVE" ] && [ -x "$ROUTER" ] && [ -x "$LOAD" ]; } \
  || cargo build --release -p hmtx-server -p hmtx-cluster

WORK="$(mktemp -d)"
ALL_PIDS=()
cleanup() {
  for p in "${ALL_PIDS[@]}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

# Parse `listening on ADDR` from a server's stdout (ephemeral ports).
wait_addr() {
  local out="$1" addr=""
  for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$out" | head -n1)"
    [ -n "$addr" ] && { echo "$addr"; return 0; }
    sleep 0.1
  done
  echo "cluster_smoke: no address in $out" >&2
  return 1
}

# --- 3 mem-only backends --------------------------------------------------
BACKEND_PIDS=()
BACKEND_ADDRS=()
for i in 0 1 2; do
  "$SERVE" --addr 127.0.0.1:0 --workers 2 --mem-only \
    >"$WORK/b$i.out" 2>"$WORK/b$i.err" &
  BACKEND_PIDS+=($!); disown $!
  ALL_PIDS+=($!)
  BACKEND_ADDRS+=("$(wait_addr "$WORK/b$i.out")")
done
echo "cluster_smoke: backends at ${BACKEND_ADDRS[*]}"

# --- the router over them -------------------------------------------------
"$ROUTER" --addr 127.0.0.1:0 --health-interval-ms 50 \
  --backends "${BACKEND_ADDRS[0]},${BACKEND_ADDRS[1]},${BACKEND_ADDRS[2]}" \
  >"$WORK/router.out" 2>"$WORK/router.err" &
ROUTER_PID=$!; disown $!
ALL_PIDS+=($ROUTER_PID)
ADDR="$(wait_addr "$WORK/router.out")"
echo "cluster_smoke: router at $ADDR (pid $ROUTER_PID)"

# --- checked mini-sweep through the router (cold + warm) ------------------
"$LOAD" --addr "$ADDR" --clients 2 --rounds 2 --limit 12 --check \
  --json "$WORK/load1.json"

# --- kill one backend hard; failover must keep the sweep green ------------
kill -9 "${BACKEND_PIDS[2]}"
echo "cluster_smoke: killed backend 2 (${BACKEND_ADDRS[2]})"
"$LOAD" --addr "$ADDR" --clients 2 --rounds 2 --limit 12 --check \
  --json "$WORK/load2.json"

# --- the cluster frame reports the fleet ----------------------------------
python3 - "$ADDR" <<'EOF'
import json, socket, struct, sys
host, port = sys.argv[1].rsplit(":", 1)
s = socket.create_connection((host, int(port)), timeout=10)
def rpc(obj):
    payload = json.dumps(obj).encode()
    s.sendall(struct.pack(">I", len(payload)) + payload)
    raw = b""
    while len(raw) < 4:
        raw += s.recv(4 - len(raw))
    n = struct.unpack(">I", raw)[0]
    buf = b""
    while len(buf) < n:
        buf += s.recv(n - len(buf))
    return json.loads(buf)
c = rpc({"type": "cluster"})
assert c["type"] == "cluster", c
ups = [b["up"] for b in c["backends"]]
assert ups.count(True) == 2, f"expected 2 live backends after the kill: {c['backends']}"
r = c["router"]
assert r["forwarded"] > 0, r
assert r["unrouteable"] == 0, f"jobs went unrouteable: {r}"
agg = c["aggregate"]
assert agg["executed"] > 0, agg
print(f"cluster_smoke: cluster frame ok: {ups.count(True)}/3 up, "
      f"forwarded {r['forwarded']}, failovers {r['failovers']}")
EOF

# --- graceful drain on SIGTERM --------------------------------------------
kill -TERM "$ROUTER_PID"
for _ in $(seq 1 100); do
  kill -0 "$ROUTER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$ROUTER_PID" 2>/dev/null; then
  echo "cluster_smoke: router did not drain within 10s of SIGTERM" >&2
  exit 1
fi
wait "$ROUTER_PID" 2>/dev/null || true
grep -q "drained, exiting" "$WORK/router.err" || {
  echo "cluster_smoke: router exited without reporting a clean drain" >&2
  cat "$WORK/router.err" >&2
  exit 1
}

echo "cluster_smoke: green"
