#!/usr/bin/env bash
# Sustained-load cluster benchmark -> BENCH_pr9.json (see EXPERIMENTS.md).
#
# Measures saturation throughput of one capacity-bound hmtx-serve node vs a
# 3-backend hmtx-router cluster under identical open-loop load. Every node
# runs `--mem-only --mem-cache 30` against the 80-key standard sweep, so
# the single node's LRU thrashes (the round-robin key cycle evicts every
# entry before its reuse — each arrival re-simulates at ~ms cost) while the
# consistent-hash ring gives each cluster backend a ~27-key partition that
# fits its cache entirely (each arrival is a ~us memory hit). On a 1-core
# host this isolates exactly the claim the cluster makes: throughput scales
# with AGGREGATE CACHE CAPACITY, not with cores.
#
# The offered rate self-calibrates to 2.5x the single node's measured
# all-miss throughput: safely past the single node's saturation point,
# safely below the cluster's (hits are ~3 orders cheaper than misses).
# Fails unless the cluster's achieved rate strictly exceeds the single
# node's.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pr9.json}"
MEM_CAP=30
DURATION_S="${DURATION_S:-8}"
CLIENTS="${CLIENTS:-8}"

PROFILE="${PROFILE:-release}"
SERVE="target/${PROFILE}/hmtx-serve"
ROUTER="target/${PROFILE}/hmtx-router"
LOAD="target/${PROFILE}/hmtx-load"
{ [ -x "$SERVE" ] && [ -x "$ROUTER" ] && [ -x "$LOAD" ]; } \
  || cargo build --release -p hmtx-server -p hmtx-cluster

WORK="$(mktemp -d)"
ALL_PIDS=()
cleanup() {
  for p in "${ALL_PIDS[@]}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_addr() {
  local out="$1" addr=""
  for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$out" | head -n1)"
    [ -n "$addr" ] && { echo "$addr"; return 0; }
    sleep 0.1
  done
  echo "cluster_bench: no address in $out" >&2
  return 1
}

start_backend() { # name; sets BACKEND_ADDR/BACKEND_PID, tracks the pid
  local name="$1"
  "$SERVE" --addr 127.0.0.1:0 --workers 2 --mem-only --mem-cache "$MEM_CAP" \
    >"$WORK/$name.out" 2>"$WORK/$name.err" &
  BACKEND_PID=$!
  disown "$BACKEND_PID"
  ALL_PIDS+=("$BACKEND_PID")
  BACKEND_ADDR="$(wait_addr "$WORK/$name.out")"
}

# --- phase 1: single capacity-bound node ----------------------------------
start_backend single
SINGLE_ADDR="$BACKEND_ADDR"
SINGLE_PID="$BACKEND_PID"
echo "cluster_bench: single node at $SINGLE_ADDR"

# Calibration: one closed-loop sweep round = the all-miss service rate.
"$LOAD" --addr "$SINGLE_ADDR" --clients "$CLIENTS" --rounds 1 \
  --json "$WORK/calibrate.json" 2>/dev/null
RATE="$(python3 -c '
import json, sys
r = json.load(open(sys.argv[1]))["rounds"][0]
print(max(20, int(r["throughput_jobs_per_s"] * 2.5)))
' "$WORK/calibrate.json")"
echo "cluster_bench: calibrated offered rate: $RATE/s for ${DURATION_S}s"

"$LOAD" --addr "$SINGLE_ADDR" --sustained --rate "$RATE" \
  --duration-s "$DURATION_S" --clients "$CLIENTS" --json "$WORK/single.json"
kill -TERM "$SINGLE_PID" 2>/dev/null || true

# --- phase 2: 3 backends behind the router --------------------------------
start_backend b0; B0="$BACKEND_ADDR"
start_backend b1; B1="$BACKEND_ADDR"
start_backend b2; B2="$BACKEND_ADDR"
"$ROUTER" --addr 127.0.0.1:0 --health-interval-ms 100 \
  --backends "$B0,$B1,$B2" >"$WORK/router.out" 2>"$WORK/router.err" &
ALL_PIDS+=($!); disown $!
ROUTER_ADDR="$(wait_addr "$WORK/router.out")"
echo "cluster_bench: router at $ROUTER_ADDR over $B0 $B1 $B2"

# Warm each backend's ring partition (one sweep round), then measure.
"$LOAD" --addr "$ROUTER_ADDR" --clients "$CLIENTS" --rounds 1 \
  --json /dev/null 2>/dev/null
"$LOAD" --addr "$ROUTER_ADDR" --sustained --rate "$RATE" \
  --duration-s "$DURATION_S" --clients "$CLIENTS" --json "$WORK/router.json"

# --- compose + gate -------------------------------------------------------
python3 - "$WORK/single.json" "$WORK/router.json" "$OUT" "$MEM_CAP" <<'EOF'
import json, sys
single = json.load(open(sys.argv[1]))
router = json.load(open(sys.argv[2]))
out, mem_cap = sys.argv[3], int(sys.argv[4])
report = {
    "schema": "hmtx-cluster-bench/1",
    "methodology": (
        "open-loop sustained load (hmtx-load --sustained) over the 80-key "
        "standard sweep; every node runs --mem-only --mem-cache "
        f"{mem_cap}, so the single node thrashes its LRU while each of 3 "
        "routed backends holds its consistent-hash partition resident; "
        "offered rate is 2.5x the single node's calibrated all-miss "
        "throughput"
    ),
    "mem_cache_cap_per_node": mem_cap,
    "offered_rps": single["offered_rps"],
    "duration_s": single["duration_s"],
    "clients": single["clients"],
    "single_node": single,
    "router_3_backends": router,
    "saturation_speedup": (
        router["achieved_rps"] / single["achieved_rps"]
        if single["achieved_rps"] > 0 else None
    ),
}
json.dump(report, open(out, "w"), indent=2)
open(out, "a").write("\n")
s, r = single["achieved_rps"], router["achieved_rps"]
print(f"cluster_bench: single {s:.1f}/s "
      f"(p50 {single['p50_us']}us p99 {single['p99_us']}us "
      f"p999 {single['p999_us']}us)")
print(f"cluster_bench: router {r:.1f}/s "
      f"(p50 {router['p50_us']}us p99 {router['p99_us']}us "
      f"p999 {router['p999_us']}us)")
assert router["ok"] > 0 and router["failed"] == 0, router
if r <= s:
    print(f"cluster_bench: FAIL: cluster ({r:.1f}/s) did not beat "
          f"the single node ({s:.1f}/s)", file=sys.stderr)
    sys.exit(1)
print(f"cluster_bench: cluster beats single node {r/s:.2f}x -> {out}")
EOF
