#!/usr/bin/env bash
# Smoke gate for hmtx-explore (see DESIGN.md §9): bounded systematic
# exploration must terminate clean on the two-thread machine kernels, the
# planted-defect pipeline must rediscover and shrink its counterexample,
# and a bound-limited sweep over every workload must finish within the
# smoke budget. Nonzero exit on any failure.
set -euo pipefail
cd "$(dirname "$0")/.."

PROFILE="${PROFILE:-release}"
EXPLORE="target/${PROFILE}/hmtx-explore"
[ -x "$EXPLORE" ] || cargo build --release -p hmtx-explore

CORPUS="$(mktemp -d)"
trap 'rm -rf "$CORPUS"' EXIT

# --- exhaustive kernel exploration ----------------------------------------
# Both op-level kernels and the two-thread machine kernels, to the default
# preemption bound of 3: the bounded space must be exhausted with zero
# invariant or oracle violations.
"$EXPLORE" --all-kernels --preemptions 3 --expect-exhausted

# --- planted-defect pipeline ----------------------------------------------
# Under the test-only stale-migration-replica defect the explorer must
# rediscover a failing schedule from scratch and shrink it to at most the
# pinned 7 ops (writes a throwaway corpus seed to verify that path too).
"$EXPLORE" --kernel migrated_line --seed-bug stale-migration-replica \
  --shrink --expect-failure --max-shrunk-len 7 --corpus-dir "$CORPUS"

# --- bounded workload sweep -----------------------------------------------
# Every paper workload analogue, bound-limited: exploration must terminate
# clean (invariants hold, committed output matches the sequential
# reference) within the smoke budget.
for W in 052.alvinn 130.li 164.gzip 186.crafty 197.parser 256.bzip2 456.hmmer ispell; do
  "$EXPLORE" --workload "$W" --bound 48 --preemptions 2
done

echo "explore_smoke green"
