#!/usr/bin/env bash
# Tier-1 gate: the checks every PR must keep green (see ROADMAP.md), plus a
# parallel smoke run of the full experiment harness. Fails on any nonzero
# exit or panic.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release

# Per-crate test matrix: the union equals `cargo test -q --workspace`, but a
# failure names its crate in the log instead of drowning in the firehose.
for CRATE in hmtx-types hmtx-isa hmtx-analysis hmtx-mem hmtx-core \
             hmtx-machine hmtx-explore hmtx-modelcheck hmtx-runtime \
             hmtx-smtx hmtx-workloads hmtx-power hmtx-bench hmtx-server \
             hmtx-cluster hmtx; do
  echo "--- cargo test -p ${CRATE}"
  cargo test -q -p "$CRATE"
done

# Chaos differential: committed outputs under any seeded fault schedule
# (including the pinned regression seeds) must match the fault-free run.
cargo test -q -p hmtx --test chaos

# Lint gate: the deny-by-default policy lives in `[workspace.lints]`
# (warnings denied, unsafe_code forbidden outside hmtx-mem/hmtx-server),
# so a plain clippy run enforces it.
cargo clippy --workspace --all-targets

# Static verification gate: every workload emitter, under every paradigm and
# SMTX mode, must produce programs the analyzer certifies clean (MTX
# protocol, register dataflow, queue matching/deadlock, store escape).
cargo run --release -p hmtx --bin hmtx-verify -- --all-workloads

# Protocol model-check gate: the 2-core × 2-line × vid_bits=2 model must
# exhaust clean in seconds — every reachable state satisfies every cache
# invariant, commit safety, and the serializability oracle — and the
# planted stale-migration-replica defect must be rediscovered (nonzero
# exit), proving the checker can still find real bugs.
cargo run --release -p hmtx-modelcheck --bin hmtx-model
if cargo run --release -p hmtx-modelcheck --bin hmtx-model -- \
    --seed-bug stale-migration-replica >/dev/null; then
  echo "hmtx-model failed to rediscover the planted defect" >&2
  exit 1
fi

# Serving-layer smoke: ephemeral hmtx-serve + hmtx-load burst; verifies
# byte-identical cold/warm responses, cache-hit accounting, SIGTERM drain.
bash scripts/serve_smoke.sh

# Cluster smoke: 3 backends behind hmtx-router; checked sweeps stay green
# through a hard backend kill (ring failover), the cluster frame reports
# the fleet, and the router drains cleanly on SIGTERM. (The sustained-load
# capacity benchmark is scripts/cluster_bench.sh -> BENCH_pr9.json; it is
# an artifact generator, not a CI gate.)
bash scripts/cluster_smoke.sh

# Exploration smoke: bounded systematic schedule exploration (hmtx-explore)
# must exhaust the kernel space clean, rediscover + shrink the planted
# defect, and terminate bound-limited on every workload (DESIGN.md §9).
bash scripts/explore_smoke.sh

# Full harness at quick scale across all host cores; the JSON report lands
# next to the sources as a regenerated artifact (see EXPERIMENTS.md).
cargo run --release -p hmtx-bench --bin experiments -- \
  all --quick --jobs "$(nproc)" --json BENCH_pr1.json >/dev/null

# Determinism differentials: two identical runs must produce identical
# traces and stats (overflow-table order), and the full sweep must render
# byte-identical whatever the host thread count.
cargo test -q --release -p hmtx-machine --test determinism
cargo test -q --release -p hmtx-bench --test differential

# HyTM determinism differential: the hybrid-mode column of the standard
# sweep (fast-path retries, seeded backoff, slow-path slabs) must render
# byte-identical serial vs parallel.
cargo test -q --release -p hmtx-bench --test differential \
  hytm_sweep_is_byte_identical_serial_vs_parallel

# Perf gate: committed-simulated-cycles/sec over the standard sweep must
# stay within 20% of the BENCH_pr6.json baseline (see EXPERIMENTS.md). The
# gate also fails if the committed cycle total drifts from the recording —
# that means the simulation changed, and the baseline must be regenerated
# in the same PR.
cargo run --release -p hmtx-bench --bin cyclebench -- \
  --reps 3 --gate BENCH_pr6.json --threshold 0.8

echo "tier-1 green"
