#!/usr/bin/env bash
# Tier-1 gate: the checks every PR must keep green (see ROADMAP.md), plus a
# parallel smoke run of the full experiment harness. Fails on any nonzero
# exit or panic.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

# Chaos differential: committed outputs under any seeded fault schedule
# (including the pinned regression seeds) must match the fault-free run.
cargo test -q -p hmtx --test chaos

# Lint gate: warnings are errors across the workspace.
cargo clippy --workspace --all-targets -- -D warnings

# Static verification gate: every workload emitter, under every paradigm and
# SMTX mode, must produce programs the analyzer certifies clean (MTX
# protocol, register dataflow, queue matching/deadlock, store escape).
cargo run --release -p hmtx --bin hmtx-verify -- --all-workloads

# Serving-layer smoke: ephemeral hmtx-serve + hmtx-load burst; verifies
# byte-identical cold/warm responses, cache-hit accounting, SIGTERM drain.
bash scripts/serve_smoke.sh

# Full harness at quick scale across all host cores; the JSON report lands
# next to the sources as a regenerated artifact (see EXPERIMENTS.md).
cargo run --release -p hmtx-bench --bin experiments -- \
  all --quick --jobs "$(nproc)" --json BENCH_pr1.json >/dev/null

echo "tier-1 green"
