//! PS-DSWP scaling: run one benchmark under every paradigm of Figure 1 and
//! with increasing core counts, showing why parallel-stage pipelines are
//! the paradigm that benefits from MTX support.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example psdswp_pipeline
//! ```

use hmtx::runtime::{run_loop, Paradigm};
use hmtx::types::MachineConfig;
use hmtx::workloads::parser::Parser;
use hmtx::workloads::Scale;

fn main() {
    let cfg = MachineConfig::paper_default();
    let w = Parser::new(Scale::Standard);

    let (_, seq) = run_loop(Paradigm::Sequential, &w, &cfg, u64::MAX).expect("sequential");
    println!("197.parser analogue, {} iterations\n", 48);
    println!("paradigm     cores      cycles    speedup");
    println!("Sequential       1  {:>10}      1.00x", seq.cycles);

    for paradigm in [Paradigm::Doacross, Paradigm::Dswp, Paradigm::PsDswp] {
        let (_, r) = run_loop(paradigm, &w, &cfg, u64::MAX).expect("parallel run");
        let threads = match paradigm {
            Paradigm::Doacross => cfg.num_cores,
            Paradigm::Dswp => 2,
            _ => cfg.num_cores,
        };
        println!(
            "{:<12} {:>5}  {:>10}     {:>5.2}x",
            paradigm.name(),
            threads,
            r.cycles,
            seq.cycles as f64 / r.cycles as f64
        );
    }

    println!("\nPS-DSWP scaling with core count:");
    println!("cores   workers      cycles    speedup");
    for cores in 2..=6 {
        let mut c = cfg.clone();
        c.num_cores = cores;
        let (_, r) = run_loop(Paradigm::PsDswp, &w, &c, u64::MAX).expect("scaling run");
        println!(
            "{cores:>5} {:>9}  {:>10}     {:>5.2}x",
            cores - 1,
            r.cycles,
            seq.cycles as f64 / r.cycles as f64
        );
    }
    println!(
        "\nDOACROSS pays the inter-core latency on every iteration; DSWP pipelines\n\
         it away but tops out at two stages; PS-DSWP replicates the parallel stage\n\
         — which requires transactions spanning multiple threads (MTX)."
    );
}
