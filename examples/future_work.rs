//! The paper's §8 future work, implemented and demonstrated:
//!
//! 1. **Unbounded read/write sets** — speculative versions that do not fit
//!    the cache hierarchy spill into a memory-side overflow table instead
//!    of aborting the transaction.
//! 2. **Directory-based coherence** — the same protocol over a banked
//!    directory fabric, scaling PS-DSWP past the snoopy bus's saturation
//!    point.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example future_work
//! ```

use hmtx::runtime::{run_loop, Paradigm};
use hmtx::types::{CacheConfig, Interconnect, MachineConfig};
use hmtx::workloads::bzip2::Bzip2;
use hmtx::workloads::{Scale, Workload};

fn main() {
    // ---- 1. unbounded sets ----
    println!("1. Unbounded read/write sets (8)\n");
    println!("256.bzip2 on caches far smaller than its speculative footprint:");
    for unbounded in [false, true] {
        let w = Bzip2::new(Scale::Standard);
        let mut cfg = MachineConfig::test_default();
        cfg.l1 = CacheConfig {
            size_bytes: 8 * 1024,
            ways: 4,
            latency: 2,
        };
        cfg.l2 = CacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
            latency: 40,
        };
        cfg.pipeline_window = 6;
        cfg.unbounded_sets = unbounded;
        let (machine, report) = run_loop(w.meta().paradigm, &w, &cfg, u64::MAX).expect("bzip2 run");
        println!(
            "  {:<14} {:>9} cycles   overflow aborts: {:>2}   spills to memory: {}",
            if unbounded { "unbounded" } else { "bounded" },
            report.cycles,
            report.recoveries,
            machine.mem().stats().unbounded_spills
        );
    }

    // ---- 2. directory scaling ----
    println!("\n2. Directory-based coherence (8)\n");
    println!("PS-DSWP on a memory-streaming loop; line-granularity bus occupancy:");
    println!("  cores   snoopy bus    8-bank directory");
    let rows = hmtx_bench_scaling();
    for (cores, bus, dir) in rows {
        println!("  {cores:>5} {bus:>11.2}x {dir:>17.2}x");
    }
    println!(
        "\nThe shared bus saturates past 16 cores; the banked directory keeps\n\
         scaling — the §8 adaptation the paper anticipates."
    );
}

/// A small local copy of the harness's scaling sweep (quick scale).
fn hmtx_bench_scaling() -> Vec<(usize, f64, f64)> {
    use hmtx::isa::{ProgramBuilder, Reg};
    use hmtx::machine::Machine;
    use hmtx::runtime::env::regs;
    use hmtx::runtime::{LoopBody, LoopEnv};

    struct Stream;
    const REGION: u64 = 0x20_0000;
    impl LoopBody for Stream {
        fn iterations(&self) -> u64 {
            192
        }
        fn build_image(&self, _m: &mut Machine, _env: &LoopEnv) {}
        fn emit_stage1(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
            b.mov(regs::ITEM, regs::N);
            b.li(regs::SPEC_LOADS, 1);
            b.li(regs::SPEC_STORES, 1);
        }
        fn emit_stage2(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
            b.mul(Reg::R1, regs::N, 32 * 64);
            b.addi(Reg::R1, Reg::R1, REGION as i64);
            hmtx::workloads::emitlib::counted_loop(b, Reg::R0, 32, |b| {
                b.shl(Reg::R2, Reg::R0, 6);
                b.add(Reg::R2, Reg::R2, Reg::R1);
                b.load(Reg::R3, Reg::R2, 0);
                b.add(Reg::R3, Reg::R3, regs::N);
                b.store(Reg::R3, Reg::R2, 0);
            })
            .unwrap();
            b.compute(120);
            b.li(regs::SPEC_LOADS, 32);
            b.li(regs::SPEC_STORES, 32);
        }
    }

    let stress = |c: &mut MachineConfig| {
        c.bus_occupancy = 16;
        c.l1 = CacheConfig {
            size_bytes: 8 * 1024,
            ways: 4,
            latency: 2,
        };
        c.l2 = CacheConfig {
            size_bytes: 1024 * 1024,
            ways: 32,
            latency: 40,
        };
        c.pipeline_window = 32;
    };
    let mut seq_cfg = MachineConfig::paper_default();
    stress(&mut seq_cfg);
    let (_, seq) = run_loop(Paradigm::Sequential, &Stream, &seq_cfg, u64::MAX).unwrap();

    let mut rows = Vec::new();
    for cores in [4usize, 8, 16, 32] {
        let mut speeds = Vec::new();
        for interconnect in [
            Interconnect::SnoopyBus,
            Interconnect::Directory {
                banks: 8,
                hop_latency: 6,
            },
        ] {
            let mut c = MachineConfig::paper_default();
            stress(&mut c);
            c.num_cores = cores;
            c.interconnect = interconnect;
            let (_, r) = run_loop(Paradigm::PsDswp, &Stream, &c, u64::MAX).unwrap();
            speeds.push(seq.cycles as f64 / r.cycles as f64);
        }
        rows.push((cores, speeds[0], speeds[1]));
    }
    rows
}
