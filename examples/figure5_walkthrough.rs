//! Walks through Figure 5 of the paper instruction by instruction, printing
//! the versioned cache state of address `0xa` after every step — the
//! canonical illustration of `(modVID, highVID)` version management,
//! uncommitted value forwarding, and group commit.
//!
//! Run with:
//!
//! ```text
//! cargo run --example figure5_walkthrough
//! ```

use hmtx::core::{AccessKind, AccessRequest, AccessResponse, MemorySystem};
use hmtx::types::{Addr, CoreId, MachineConfig, Vid};

fn access(mem: &mut MemorySystem, t: u64, core: usize, addr: u64, vid: u16, write: Option<u64>) {
    let req = AccessRequest {
        core: CoreId(core),
        addr: Addr(addr),
        kind: match write {
            Some(v) => AccessKind::Write(v),
            None => AccessKind::Read,
        },
        vid: Vid(vid),
        wrong_path: false,
    };
    match mem.access(t, &req).expect("well-formed access") {
        AccessResponse::Done { .. } => {}
        AccessResponse::Misspec { cause, .. } => panic!("unexpected misspeculation: {cause:?}"),
    }
}

fn show(mem: &MemorySystem, step: &str, addr: u64) {
    println!("{step}");
    let states = mem.line_states(Addr(addr));
    if states.is_empty() {
        println!("    (line not cached)");
    }
    for (loc, desc) in states {
        println!("    {loc:<6} {desc}");
    }
    println!();
}

fn main() {
    // Eager commit processing so commit effects are visible immediately,
    // matching the figure (lazy processing defers them until lines are
    // touched).
    let mut cfg = MachineConfig::paper_default();
    cfg.hmtx.lazy_commit = false;
    let mut mem = MemorySystem::new(cfg);
    let a = 0x40u64; // the figure's "0xa", line-aligned

    println!("Figure 5 walkthrough: versions of one address across two caches\n");

    access(&mut mem, 0, 0, a, 0, None);
    show(
        &mem,
        "(0) initial: thread 1 has the line non-speculatively",
        a,
    );

    access(&mut mem, 10, 0, a, 1, None);
    show(
        &mem,
        "(1) thread 1: beginMTX(1); r1 = M[0xa]          (speculative read)",
        a,
    );

    access(&mut mem, 20, 0, a, 1, Some(111));
    show(
        &mem,
        "(2) thread 1: M[0xa] = M[r1]                    (speculative write, VID 1)",
        a,
    );

    access(&mut mem, 30, 0, a, 2, None);
    access(&mut mem, 40, 0, a, 2, Some(222));
    show(
        &mem,
        "(3) thread 1: beginMTX(2); read + write          (next iteration, VID 2)",
        a,
    );

    access(&mut mem, 50, 1, a, 1, None);
    show(
        &mem,
        "(4) thread 2: beginMTX(1); r1 = M[0xa]           (hits S-O(1,2) on the bus;\n    \
         the version migrates to cache 2 — uncommitted value forwarding)",
        a,
    );

    mem.commit(60, Vid(1)).expect("commit 1");
    show(
        &mem,
        "(5) thread 2: commitMTX(1)                       (group commit of VID 1)",
        a,
    );

    mem.commit(70, Vid(2)).expect("commit 2");
    show(
        &mem,
        "(+) after commitMTX(2): only the committed M line remains",
        a,
    );

    println!(
        "final committed value of 0xa: {} (written by VID 2)",
        mem.peek_word(Addr(a), Vid(0))
    );
}
