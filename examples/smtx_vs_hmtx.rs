//! The paper's central comparison on one benchmark: sequential vs SMTX
//! (software MTX, with minimal / substantial / maximal validation) vs HMTX
//! with maximal validation — plus the area/power/energy picture of Table 3.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example smtx_vs_hmtx
//! ```

use hmtx::power::PowerModel;
use hmtx::runtime::{run_loop, Paradigm};
use hmtx::smtx::{run_smtx, RwSetMode};
use hmtx::types::MachineConfig;
use hmtx::workloads::gzip::Gzip;
use hmtx::workloads::{Scale, Workload};

fn main() {
    let cfg = MachineConfig::paper_default();
    let w = Gzip::new(Scale::Standard);

    let (seq_machine, seq) =
        run_loop(Paradigm::Sequential, &w, &cfg, u64::MAX).expect("sequential");
    println!("164.gzip analogue on the Table 2 machine\n");
    println!("execution model                cycles    speedup   validated acc/iter");
    println!(
        "sequential                {:>11}      1.00x                   --",
        seq.cycles
    );

    for mode in [
        RwSetMode::Minimal,
        RwSetMode::Substantial,
        RwSetMode::Maximal,
    ] {
        let (machine, r) = run_smtx(&w, &cfg, mode, u64::MAX).expect("smtx");
        let _ = &machine;
        println!(
            "SMTX ({:<11})       {:>11}     {:>5.2}x              {:>7}",
            mode.name(),
            r.cycles,
            seq.cycles as f64 / r.cycles as f64,
            match mode {
                RwSetMode::Minimal => "handful".to_string(),
                _ => "per-access".to_string(),
            }
        );
    }

    let (hmtx_machine, r) = run_loop(w.meta().paradigm, &w, &cfg, u64::MAX).expect("hmtx");
    println!(
        "HMTX (maximal)            {:>11}     {:>5.2}x           every one",
        r.cycles,
        seq.cycles as f64 / r.cycles as f64
    );

    // Table 3's story in miniature.
    let commodity = PowerModel::commodity(&cfg);
    let hmtx_hw = PowerModel::with_hmtx(&cfg);
    let seq_power = commodity.evaluate(&seq_machine);
    let hmtx_power = hmtx_hw.evaluate(&hmtx_machine);
    println!("\nhardware             area(mm^2)   leakage(W)   dynamic(W)   energy(J)");
    println!(
        "commodity            {:>10.1} {:>12.3} {:>12.2} {:>11.6}",
        seq_power.area_mm2, seq_power.leakage_w, seq_power.dynamic_w, seq_power.energy_j
    );
    println!(
        "commodity + HMTX     {:>10.1} {:>12.3} {:>12.2} {:>11.6}",
        hmtx_power.area_mm2, hmtx_power.leakage_w, hmtx_power.dynamic_w, hmtx_power.energy_j
    );
    println!(
        "\nHMTX burns more power (4 busy cores) but finishes sooner; its energy\n\
         is {:.1}% of the sequential run's.",
        100.0 * hmtx_power.energy_j / seq_power.energy_j
    );
}
