//! Quickstart: parallelize the paper's Figure 3 linked-list loop with
//! hardware multithreaded transactions and compare it against sequential
//! execution.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hmtx::runtime::{run_loop, Paradigm};
use hmtx::types::MachineConfig;
use hmtx::workloads::li::Li;
use hmtx::workloads::{Scale, Workload};

fn main() {
    // The 130.li workload is exactly Figure 3's shape: stage 1 walks a
    // linked list (`node = node->next` is the loop-carried dependence),
    // stage 2 runs `work(node)` on each element.
    let workload = Li::new(Scale::Standard);
    let cfg = MachineConfig::paper_default();

    println!(
        "machine: {} cores, {} KB L1, {} MB shared L2, {}-bit VIDs\n",
        cfg.num_cores,
        cfg.l1.size_bytes / 1024,
        cfg.l2.size_bytes / 1024 / 1024,
        cfg.hmtx.vid_bits
    );

    let (_, seq) =
        run_loop(Paradigm::Sequential, &workload, &cfg, u64::MAX).expect("sequential run");
    println!("sequential:        {:>12} cycles", seq.cycles);

    let (machine, par) =
        run_loop(workload.meta().paradigm, &workload, &cfg, u64::MAX).expect("parallel run");
    let stats = machine.mem().stats();
    println!(
        "PS-DSWP (HMTX):    {:>12} cycles   ({:.2}x speedup)",
        par.cycles,
        seq.cycles as f64 / par.cycles as f64
    );
    println!();
    println!("transactions committed:        {}", stats.commits);
    println!(
        "speculative loads / stores:    {} / {}",
        stats.spec_loads, stats.spec_stores
    );
    println!("SLAs sent (needed marking):    {}", stats.slas_sent);
    println!(
        "misspeculations:               {} (recoveries: {})",
        stats.aborts, par.recoveries
    );
    let rw = stats.rw_totals();
    println!(
        "avg read/write set per TX:     {:.2} kB / {:.2} kB",
        rw.avg_read_kb(),
        rw.avg_write_kb()
    );
}
