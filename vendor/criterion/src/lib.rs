//! Offline vendored stand-in for the `criterion` crate.
//!
//! The build container has no network access and no crates.io mirror, so the
//! workspace vendors the subset of `criterion` its benches use: benchmark
//! groups, `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical machinery it
//! runs each benchmark `sample_size` times and prints mean wall-clock per
//! iteration — enough to eyeball regressions and to keep `cargo bench`
//! compiling; real statistics come from the `experiments --json` reports.

use std::time::Instant;

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.into(), 10, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_bench(&full, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        iters: 0,
        elapsed_ns: 0,
    };
    for _ in 0..samples {
        f(&mut b);
    }
    let per_iter = b.elapsed_ns.checked_div(b.iters).unwrap_or(0);
    println!(
        "bench {name:<40} {per_iter:>12} ns/iter ({} iters)",
        b.iters
    );
}

pub struct Bencher {
    iters: u128,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times one execution of `f` per call (no warmup or outlier rejection).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters += 1;
    }
}

/// Identity function that defeats constant-propagation of its argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 3);
    }
}
