//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no network access and no crates.io mirror, so the
//! workspace vendors the tiny subset of `rand` it actually uses:
//! `StdRng::seed_from_u64`, `SeedableRng`, and `Rng::gen_range` over integer
//! ranges. The generator is a deterministic SplitMix64 — statistically fine
//! for the workload-seeding and shuffling duties it serves here, and stable
//! across platforms so simulated memory images are reproducible.
//!
//! This is NOT the upstream crate: sequences differ from the real
//! `rand::rngs::StdRng` (which is ChaCha12-based). All in-repo golden values
//! were produced with this generator.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from the given range. Panics if empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Samples an arbitrary value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

/// Types with a "whole domain" distribution (subset of `rand::distributions::Standard`).
pub trait Standard {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges an integer can be sampled from (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(0..10);
            assert!(v < 10);
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let u: usize = rng.gen_range(3..4);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn distribution_covers_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
