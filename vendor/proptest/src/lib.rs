//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build container has no network access and no crates.io mirror, so the
//! workspace vendors the subset of `proptest` its tests use:
//!
//! - the [`Strategy`] trait with `prop_map` / `prop_flat_map` / `boxed`
//! - integer-range, tuple, [`Just`], regex-string and `any::<T>()` strategies
//! - `prop::collection::vec`
//! - the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros
//! - [`ProptestConfig`] with a `cases` knob (plus the `PROPTEST_CASES`
//!   environment variable)
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports the full generated input
//!   (every bound variable, `Debug`-formatted) instead of a minimized one.
//! - **No persistence.** `*.proptest-regressions` files are neither read nor
//!   written; their `cc` seed hashes are meaningless to this generator.
//!   Regressions found by the real proptest must be pinned as named unit
//!   tests (see `crates/core/src/protocol_tests.rs`).
//! - **Deterministic seeding.** Case `i` of test `t` is seeded from
//!   `hash(t) ⊕ mix(i)`, so runs are reproducible across invocations and
//!   hosts, and different tests explore different sequences.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64-based generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG for one test case: stable across runs, distinct per
    /// test name and case index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ Self::mix(case as u64 + 1),
        }
    }

    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        Self::mix(self.state)
    }

    /// Uniform value in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sampling domain");
        self.next_u64() % n
    }
}

/// Number of cases to actually run: the configured count, unless the
/// `PROPTEST_CASES` environment variable overrides it (smaller wins).
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
    {
        Some(env) => configured.min(env.max(1)),
        None => configured,
    }
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Subset of `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of random values (subset of `proptest::strategy::Strategy`:
/// generation only, no shrink trees).
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe generation, so heterogeneous strategies can be unioned.
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy (subset of `proptest::strategy::BoxedStrategy`).
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 candidates in a row",
            self.whence
        );
    }
}

/// Uniform choice between boxed alternatives (behind [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Mild bias toward the range edges, like real proptest.
                let pick = match rng.below(8) {
                    0 => 0,
                    1 => span - 1,
                    _ => (rng.next_u64() as u128) % span,
                };
                (self.start as i128 + pick as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `any::<T>()`: the whole domain of a primitive type.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(PhantomData)
}

pub trait Arbitrary: Debug + Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

pub struct ArbitraryStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                // Bias toward the edge values that break arithmetic.
                match rng.below(8) {
                    0 => 0 as $t,
                    1 => 1 as $t,
                    2 => <$t>::MAX,
                    3 => <$t>::MIN,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        char::from_u32((0x20 + rng.below(0x5E)) as u32).unwrap()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Size specification for [`vec()`]: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Regex-string strategies
// ---------------------------------------------------------------------------

/// `&str` is a strategy producing strings matching the pattern, supporting
/// the subset of regex syntax the in-repo tests use: literals, `[...]`
/// classes (ranges and literal members), `(...)` groups, `\PC` (any
/// printable), and the `{m,n}` / `{m}` / `?` / `*` / `+` quantifiers.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let nodes = regex_lite::parse(self);
        let mut out = String::new();
        regex_lite::emit(&nodes, rng, &mut out);
        out
    }
}

mod regex_lite {
    use super::TestRng;

    #[derive(Debug, Clone)]
    pub enum Atom {
        Lit(char),
        /// Inclusive char ranges; single members are `(c, c)`.
        Class(Vec<(char, char)>),
        /// `\PC` and friends: any printable, non-control character.
        AnyPrintable,
        Group(Vec<Node>),
    }

    #[derive(Debug, Clone)]
    pub struct Node {
        pub atom: Atom,
        pub min: u32,
        pub max: u32, // inclusive
    }

    pub fn parse(pattern: &str) -> Vec<Node> {
        let mut chars = pattern.chars().peekable();
        parse_seq(&mut chars, None)
    }

    fn parse_seq(
        chars: &mut std::iter::Peekable<std::str::Chars>,
        until: Option<char>,
    ) -> Vec<Node> {
        let mut nodes = Vec::new();
        while let Some(&c) = chars.peek() {
            if Some(c) == until {
                chars.next();
                break;
            }
            chars.next();
            let atom = match c {
                '\\' => {
                    let esc = chars.next().expect("dangling escape");
                    match esc {
                        'P' | 'p' => {
                            // Unicode property: consume the one-letter class.
                            chars.next();
                            Atom::AnyPrintable
                        }
                        'd' => Atom::Class(vec![('0', '9')]),
                        'w' => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                        's' => Atom::Lit(' '),
                        other => Atom::Lit(other),
                    }
                }
                '[' => Atom::Class(parse_class(chars)),
                '(' => Atom::Group(parse_seq(chars, Some(')'))),
                '.' => Atom::AnyPrintable,
                lit => Atom::Lit(lit),
            };
            let (min, max) = parse_quantifier(chars);
            nodes.push(Node { atom, min, max });
        }
        nodes
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<(char, char)> {
        let mut members = Vec::new();
        let mut prev: Option<char> = None;
        while let Some(c) = chars.next() {
            match c {
                ']' => break,
                '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                    let lo = prev.take().unwrap();
                    let hi = chars.next().unwrap();
                    // `prev` was already pushed as a single member; replace it.
                    members.pop();
                    members.push((lo, hi));
                }
                c => {
                    members.push((c, c));
                    prev = Some(c);
                }
            }
        }
        assert!(!members.is_empty(), "empty character class");
        members
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars>) -> (u32, u32) {
        match chars.peek() {
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad {m,n} lower bound"),
                        hi.trim().parse().expect("bad {m,n} upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad {n} count");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        }
    }

    pub fn emit(nodes: &[Node], rng: &mut TestRng, out: &mut String) {
        for node in nodes {
            let reps = node.min + rng.below((node.max - node.min + 1) as u64) as u32;
            for _ in 0..reps {
                match &node.atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(members) => {
                        let (lo, hi) = members[rng.below(members.len() as u64) as usize];
                        let span = hi as u32 - lo as u32 + 1;
                        out.push(
                            char::from_u32(lo as u32 + rng.below(span as u64) as u32).unwrap(),
                        );
                    }
                    Atom::AnyPrintable => {
                        // Mostly ASCII printable, sometimes a wider char to
                        // exercise non-ASCII handling.
                        let c = if rng.below(8) == 0 {
                            char::from_u32(0xA1 + rng.below(0x1000) as u32).unwrap_or('¿')
                        } else {
                            char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap()
                        };
                        out.push(c);
                    }
                    Atom::Group(inner) => emit(inner, rng, out),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Runs each contained `#[test] fn name(binding in strategy, ...)` as a
/// property test: `cases` deterministic random cases per property. On
/// failure, every generated binding is printed (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let cases = $crate::resolve_cases(config.cases);
                let test_name = concat!(module_path!(), "::", stringify!($name));
                for case in 0..cases {
                    let mut __proptest_rng = $crate::TestRng::for_case(test_name, case);
                    $(let $arg =
                        $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    let __proptest_inputs = format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                        $(&$arg),+
                    );
                    let __proptest_result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(panic) = __proptest_result {
                        eprintln!(
                            "proptest case {}/{} of {} failed; inputs (no shrinking):{}",
                            case + 1, cases, test_name, __proptest_inputs,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Like `assert!` (the stub runs test bodies on the harness thread, so a
/// plain panic is the failure channel — no `TestCaseError` plumbing).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Like `assert_eq!`; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Like `assert_ne!`; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..500 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (-9i64..9).generate(&mut rng);
            assert!((-9..9).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..200 {
            let v = prop::collection::vec(0u64..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let exact = prop::collection::vec(0u64..5, 4usize).generate(&mut rng);
        assert_eq!(exact.len(), 4);
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::for_case("regex", 0);
        for _ in 0..200 {
            let s = "[a-z]{1,8}( [r@a-z0-9,()#x-]{0,20})?".generate(&mut rng);
            let head_len = s.split(' ').next().unwrap().len();
            assert!((1..=8).contains(&head_len), "bad head in {s:?}");
            let t = "\\PC{0,200}".generate(&mut rng);
            assert!(t.chars().count() <= 200);
            assert!(!t.chars().any(|c| c.is_control()), "control char in {t:?}");
        }
    }

    #[test]
    fn oneof_hits_every_alternative() {
        let mut rng = TestRng::for_case("oneof", 0);
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn seeding_is_deterministic_and_name_sensitive() {
        let a: u64 = any::<u64>().generate(&mut TestRng::for_case("t1", 0));
        let b: u64 = any::<u64>().generate(&mut TestRng::for_case("t1", 0));
        let c: u64 = any::<u64>().generate(&mut TestRng::for_case("t2", 0));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// The macro itself: bindings, config, tuple + map strategies.
        #[test]
        fn macro_smoke(x in 0u64..10, pair in (0usize..3, any::<bool>())) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 3);
        }
    }
}
