//! Machine-level behavioural tests: interpretation, pipelines over hardware
//! queues, MTX instructions end to end, interrupts, migration, wrong-path
//! execution, and output buffering.

use std::sync::Arc;

use hmtx_core::MisspecCause;
use hmtx_isa::{Cond, Program, ProgramBuilder, Reg};
use hmtx_types::{Addr, MachineConfig, QueueId, SimError, ThreadId, Vid};

use crate::machine::{Machine, RunEvent, ThreadContext};

fn cfg() -> MachineConfig {
    MachineConfig::test_default()
}

fn build(f: impl FnOnce(&mut ProgramBuilder)) -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    f(&mut b);
    Arc::new(b.build().expect("valid program"))
}

#[test]
fn arithmetic_and_memory_round_trip() {
    let p = build(|b| {
        b.li(Reg::R1, 0x1000);
        b.li(Reg::R2, 77);
        b.store(Reg::R2, Reg::R1, 0);
        b.load(Reg::R3, Reg::R1, 0);
        b.addi(Reg::R3, Reg::R3, 1);
        b.out(Reg::R3);
        b.halt();
    });
    let mut m = Machine::new(cfg());
    m.load_thread(0, ThreadContext::new(ThreadId(0), p));
    assert_eq!(m.run(100).unwrap(), RunEvent::AllHalted);
    assert_eq!(m.committed_output(), &[78]);
    assert!(m.cycles() > 0);
}

#[test]
fn loop_with_branches_counts_instructions() {
    let p = build(|b| {
        let head = b.new_label();
        b.li(Reg::R1, 0);
        b.bind(head).unwrap();
        b.addi(Reg::R1, Reg::R1, 1);
        b.branch_imm(Cond::Lt, Reg::R1, 100, head);
        b.halt();
    });
    let mut m = Machine::new(cfg());
    m.load_thread(0, ThreadContext::new(ThreadId(0), p));
    m.run(10_000).unwrap();
    assert_eq!(m.stats().branches, 100);
    assert!(m.stats().instructions >= 202);
}

#[test]
fn budget_exhaustion_detected() {
    let p = build(|b| {
        let head = b.new_label();
        b.bind(head).unwrap();
        b.jump(head);
    });
    let mut m = Machine::new(cfg());
    m.load_thread(0, ThreadContext::new(ThreadId(0), p));
    assert_eq!(m.run(1_000).unwrap(), RunEvent::BudgetExhausted);
}

#[test]
fn producer_consumer_pipeline() {
    // Stage 1 produces 1..=20 then a 0 sentinel; stage 2 sums until 0.
    let q = QueueId(0);
    let mut pb = ProgramBuilder::new();
    let head = pb.new_label();
    let done = pb.new_label();
    pb.li(Reg::R1, 1);
    pb.bind(head).unwrap();
    pb.produce(q, Reg::R1);
    pb.addi(Reg::R1, Reg::R1, 1);
    pb.branch_imm(Cond::GeU, Reg::R1, 21, done);
    pb.jump(head);
    pb.bind(done).unwrap();
    pb.li(Reg::R2, 0);
    pb.produce(q, Reg::R2);
    pb.halt();
    let producer = Arc::new(pb.build().unwrap());

    let mut cb = ProgramBuilder::new();
    let chead = cb.new_label();
    let cdone = cb.new_label();
    cb.li(Reg::R2, 0);
    cb.bind(chead).unwrap();
    cb.consume(Reg::R1, q);
    cb.branch_imm(Cond::Eq, Reg::R1, 0, cdone);
    cb.add(Reg::R2, Reg::R2, Reg::R1);
    cb.jump(chead);
    cb.bind(cdone).unwrap();
    cb.out(Reg::R2);
    cb.halt();
    let consumer = Arc::new(cb.build().unwrap());

    let mut m = Machine::new(cfg());
    m.load_thread(0, ThreadContext::new(ThreadId(0), producer));
    m.load_thread(1, ThreadContext::new(ThreadId(1), consumer));
    assert_eq!(m.run(100_000).unwrap(), RunEvent::AllHalted);
    assert_eq!(m.committed_output(), &[210]);
}

#[test]
fn mtx_instructions_commit_speculative_state() {
    // beginMTX(1); store; commitMTX(1) — the store becomes committed.
    let p = build(|b| {
        b.li(Reg::R10, 1);
        b.begin_mtx(Reg::R10);
        b.li(Reg::R1, 0x2000);
        b.li(Reg::R2, 5);
        b.store(Reg::R2, Reg::R1, 0);
        b.commit_mtx(Reg::R10);
        b.halt();
    });
    let mut m = Machine::new(cfg());
    m.load_thread(0, ThreadContext::new(ThreadId(0), p));
    assert_eq!(m.run(1_000).unwrap(), RunEvent::AllHalted);
    assert_eq!(m.mem().peek_word(Addr(0x2000), Vid(0)), 5);
    assert_eq!(m.mem().stats().commits, 1);
}

#[test]
fn speculative_output_is_buffered_until_commit() {
    let p = build(|b| {
        b.li(Reg::R10, 1);
        b.begin_mtx(Reg::R10);
        b.li(Reg::R1, 42);
        b.out(Reg::R1);
        b.li(Reg::R0, 0);
        b.begin_mtx(Reg::R0); // leave the TX without committing
        b.li(Reg::R2, 7);
        b.out(Reg::R2); // non-speculative: committed immediately
        b.commit_mtx(Reg::R10);
        b.halt();
    });
    let mut m = Machine::new(cfg());
    m.load_thread(0, ThreadContext::new(ThreadId(0), p));
    m.run(1_000).unwrap();
    // The non-speculative 7 surfaced before VID 1's buffered 42.
    assert_eq!(m.committed_output(), &[7, 42]);
}

#[test]
fn abort_mtx_flushes_and_reports() {
    let p = build(|b| {
        b.li(Reg::R10, 1);
        b.begin_mtx(Reg::R10);
        b.li(Reg::R1, 0x2000);
        b.store(Reg::R1, Reg::R1, 0);
        b.li(Reg::R9, 2);
        b.abort_mtx(Reg::R9);
        b.halt();
    });
    let mut m = Machine::new(cfg());
    m.load_thread(0, ThreadContext::new(ThreadId(0), p));
    match m.run(1_000).unwrap() {
        RunEvent::Misspeculation {
            cause: MisspecCause::ExplicitAbort { vid },
            ..
        } => {
            assert_eq!(vid, Vid(2));
        }
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(
        m.mem().peek_word(Addr(0x2000), Vid(0)),
        0,
        "speculative store flushed"
    );
    assert_eq!(m.stats().explicit_aborts, 1);
}

#[test]
fn raw_violation_across_threads_aborts_machine() {
    // Thread B (VID 2) reads a line; thread A (VID 1) then writes it.
    let reader = build(|b| {
        b.li(Reg::R10, 2);
        b.begin_mtx(Reg::R10);
        b.li(Reg::R1, 0x3000);
        b.load(Reg::R2, Reg::R1, 0);
        // Signal thread A to proceed.
        b.produce(QueueId(0), Reg::R2);
        b.compute(10_000);
        b.halt();
    });
    let writer = build(|b| {
        b.consume(Reg::R3, QueueId(0)); // wait for the read to happen
        b.li(Reg::R10, 1);
        b.begin_mtx(Reg::R10);
        b.li(Reg::R1, 0x3000);
        b.li(Reg::R2, 1);
        b.store(Reg::R2, Reg::R1, 0);
        b.halt();
    });
    let mut m = Machine::new(cfg());
    m.load_thread(0, ThreadContext::new(ThreadId(0), reader));
    m.load_thread(1, ThreadContext::new(ThreadId(1), writer));
    match m.run(100_000).unwrap() {
        RunEvent::Misspeculation {
            cause: MisspecCause::StoreBelowHighVid { .. },
            ..
        } => {}
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn interrupts_do_not_disturb_transactions() {
    let mut c = cfg();
    c.interrupt_period = 500;
    c.interrupt_handler_instrs = 50;
    // A long transaction with many loads/stores, spanning many interrupts.
    let p = build(|b| {
        let head = b.new_label();
        b.li(Reg::R10, 1);
        b.begin_mtx(Reg::R10);
        b.li(Reg::R1, 0x4000);
        b.li(Reg::R2, 0);
        b.bind(head).unwrap();
        b.store(Reg::R2, Reg::R1, 0);
        b.load(Reg::R3, Reg::R1, 0);
        b.addi(Reg::R1, Reg::R1, 64);
        b.addi(Reg::R2, Reg::R2, 1);
        b.branch_imm(Cond::Lt, Reg::R2, 50, head);
        b.commit_mtx(Reg::R10);
        b.halt();
    });
    let mut m = Machine::new(c);
    m.load_thread(0, ThreadContext::new(ThreadId(0), p));
    assert_eq!(m.run(100_000).unwrap(), RunEvent::AllHalted);
    assert!(m.stats().interrupts > 0, "interrupts must actually fire");
    assert_eq!(
        m.mem().stats().aborts,
        0,
        "no misspeculation from interrupts"
    );
    for i in 0..50u64 {
        assert_eq!(m.mem().peek_word(Addr(0x4000 + i * 64), Vid(0)), i);
    }
}

#[test]
fn thread_migration_mid_transaction() {
    let p = build(|b| {
        b.li(Reg::R10, 1);
        b.begin_mtx(Reg::R10);
        b.li(Reg::R1, 0x5000);
        b.li(Reg::R2, 9);
        b.store(Reg::R2, Reg::R1, 0);
        b.marker(1); // migration point
        b.load(Reg::R3, Reg::R1, 0);
        b.out(Reg::R3);
        b.commit_mtx(Reg::R10);
        b.halt();
    });
    let mut m = Machine::new(cfg());
    m.load_thread(0, ThreadContext::new(ThreadId(0), p));
    // Run until the marker, then migrate the thread to core 3.
    loop {
        m.run(1).unwrap();
        if !m.marker_log().is_empty() {
            break;
        }
    }
    m.migrate_thread(0, 3);
    assert_eq!(m.run(10_000).unwrap(), RunEvent::AllHalted);
    assert_eq!(
        m.committed_output(),
        &[9],
        "speculative data found after migration"
    );
    assert_eq!(m.mem().peek_word(Addr(0x5000), Vid(0)), 9);
}

#[test]
fn mispredicted_branches_execute_wrong_path_loads() {
    // A data-dependent branch pattern the predictor cannot learn, guarding
    // loads; wrong paths issue branch-speculative loads.
    let p = build(|b| {
        let head = b.new_label();
        let skip = b.new_label();
        let back = b.new_label();
        b.li(Reg::R1, 0x6000); // pointer
        b.li(Reg::R2, 0); // i
        b.li(Reg::R5, 0x9E3779B9); // hash constant
        b.li(Reg::R6, 0); // x
        b.bind(head).unwrap();
        // x = (x + const) * 2654435761 — pseudo-random
        b.add(Reg::R6, Reg::R6, Reg::R5);
        b.mul(Reg::R6, Reg::R6, 2654435761);
        b.shr(Reg::R7, Reg::R6, 13);
        b.and(Reg::R7, Reg::R7, 1);
        b.branch_imm(Cond::Eq, Reg::R7, 0, skip);
        b.load(Reg::R3, Reg::R1, 0);
        b.load(Reg::R4, Reg::R1, 64);
        b.jump(back);
        b.bind(skip).unwrap();
        b.load(Reg::R3, Reg::R1, 128);
        b.load(Reg::R4, Reg::R1, 192);
        b.bind(back).unwrap();
        b.addi(Reg::R2, Reg::R2, 1);
        b.branch_imm(Cond::Lt, Reg::R2, 500, head);
        b.halt();
    });
    let mut m = Machine::new(cfg());
    m.load_thread(0, ThreadContext::new(ThreadId(0), p));
    m.run(100_000).unwrap();
    assert!(
        m.stats().mispredictions > 50,
        "unpredictable branch must mispredict"
    );
    assert!(
        m.mem().stats().wrong_path_loads > 0,
        "mispredictions must issue wrong-path loads"
    );
}

#[test]
fn bad_vid_is_a_program_error() {
    let p = build(|b| {
        b.li(Reg::R10, 1 << 12); // far beyond 6-bit VIDs
        b.begin_mtx(Reg::R10);
        b.halt();
    });
    let mut m = Machine::new(cfg());
    m.load_thread(0, ThreadContext::new(ThreadId(0), p));
    match m.run(100) {
        Err(SimError::BadProgram(msg)) => assert!(msg.contains("beginMTX")),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn deterministic_across_runs() {
    let mk = || {
        let p = build(|b| {
            let head = b.new_label();
            b.li(Reg::R1, 0x7000);
            b.li(Reg::R2, 0);
            b.bind(head).unwrap();
            b.store(Reg::R2, Reg::R1, 0);
            b.addi(Reg::R1, Reg::R1, 64);
            b.addi(Reg::R2, Reg::R2, 1);
            b.branch_imm(Cond::Lt, Reg::R2, 64, head);
            b.halt();
        });
        let mut m = Machine::new(cfg());
        m.load_thread(0, ThreadContext::new(ThreadId(0), p));
        m.run(100_000).unwrap();
        (
            m.cycles(),
            m.stats().instructions,
            m.mem().stats().l1_misses,
        )
    };
    assert_eq!(mk(), mk());
}

#[test]
fn run_resumes_after_budget() {
    let p = build(|b| {
        let head = b.new_label();
        b.li(Reg::R1, 0);
        b.bind(head).unwrap();
        b.addi(Reg::R1, Reg::R1, 1);
        b.branch_imm(Cond::Lt, Reg::R1, 1000, head);
        b.out(Reg::R1);
        b.halt();
    });
    let mut m = Machine::new(cfg());
    m.load_thread(0, ThreadContext::new(ThreadId(0), p));
    assert_eq!(m.run(100).unwrap(), RunEvent::BudgetExhausted);
    assert_eq!(m.run(100_000).unwrap(), RunEvent::AllHalted);
    assert_eq!(m.committed_output(), &[1000]);
}

#[test]
fn produce_blocks_until_consumer_drains() {
    // Queue capacity from the test config is 64; a producer pushing 100
    // values must stall until the consumer catches up — and nothing is lost.
    let producer = build(|b| {
        let head = b.new_label();
        b.li(Reg::R1, 1);
        b.bind(head).unwrap();
        b.produce(QueueId(2), Reg::R1);
        b.addi(Reg::R1, Reg::R1, 1);
        b.branch_imm(Cond::LtU, Reg::R1, 101, head);
        b.halt();
    });
    let consumer = build(|b| {
        let head = b.new_label();
        let done = b.new_label();
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 0);
        b.bind(head).unwrap();
        b.consume(Reg::R1, QueueId(2));
        b.compute(50); // slow consumer forces the queue to fill
        b.add(Reg::R2, Reg::R2, Reg::R1);
        b.addi(Reg::R3, Reg::R3, 1);
        b.branch_imm(Cond::LtU, Reg::R3, 100, head);
        b.out(Reg::R2);
        b.bind(done).unwrap();
        b.halt();
    });
    let mut m = Machine::new(cfg());
    m.load_thread(0, ThreadContext::new(ThreadId(0), producer));
    m.load_thread(1, ThreadContext::new(ThreadId(1), consumer));
    assert_eq!(m.run(1_000_000).unwrap(), RunEvent::AllHalted);
    assert_eq!(m.committed_output(), &[(1..=100u64).sum::<u64>()]);
    let (_, _, full_stalls, _) = m.queues().stats();
    assert!(full_stalls > 0, "the producer must have hit a full queue");
}

#[test]
fn vidreset_instruction_resets_the_vid_space() {
    // Commit VID 1, reset from guest code, then reuse VID 1.
    let p = build(|b| {
        b.li(Reg::R10, 1);
        b.begin_mtx(Reg::R10);
        b.li(Reg::R1, 0x9000);
        b.li(Reg::R2, 5);
        b.store(Reg::R2, Reg::R1, 0);
        b.commit_mtx(Reg::R10);
        b.vid_reset();
        b.begin_mtx(Reg::R10); // VID 1 again
        b.li(Reg::R2, 6);
        b.store(Reg::R2, Reg::R1, 8);
        b.commit_mtx(Reg::R10);
        b.halt();
    });
    let mut m = Machine::new(cfg());
    m.load_thread(0, ThreadContext::new(ThreadId(0), p));
    assert_eq!(m.run(10_000).unwrap(), RunEvent::AllHalted);
    assert_eq!(m.mem().stats().vid_resets, 1);
    assert_eq!(m.mem().stats().commits, 2);
    assert_eq!(m.mem().peek_word(Addr(0x9000), Vid(0)), 5);
    assert_eq!(m.mem().peek_word(Addr(0x9008), Vid(0)), 6);
}

#[test]
fn compute_reg_charges_data_dependent_cycles() {
    let run_with = |n: i64| {
        let p = build(|b| {
            b.li(Reg::R1, n);
            b.compute_reg(Reg::R1);
            b.halt();
        });
        let mut m = Machine::new(cfg());
        m.load_thread(0, ThreadContext::new(ThreadId(0), p));
        m.run(100).unwrap();
        m.cycles()
    };
    let short = run_with(10);
    let long = run_with(5_000);
    assert!(long > short + 4_000, "{short} vs {long}");
}

#[test]
fn outputs_commit_in_vid_order_not_execution_order() {
    // Two threads buffer output under different VIDs; commits in VID order
    // must surface VID 1's output before VID 2's even though VID 2 emitted
    // first.
    let t2 = build(|b| {
        b.li(Reg::R10, 2);
        b.begin_mtx(Reg::R10);
        b.li(Reg::R1, 22);
        b.out(Reg::R1);
        b.li(Reg::R0, 0);
        b.begin_mtx(Reg::R0);
        // Tell thread 1 to proceed.
        b.produce(QueueId(5), Reg::R1);
        // Wait for thread 1's commit before committing VID 2.
        b.consume(Reg::R2, QueueId(6));
        b.commit_mtx(Reg::R10);
        b.halt();
    });
    let t1 = build(|b| {
        b.consume(Reg::R3, QueueId(5)); // VID 2 emitted already
        b.li(Reg::R10, 1);
        b.begin_mtx(Reg::R10);
        b.li(Reg::R1, 11);
        b.out(Reg::R1);
        b.commit_mtx(Reg::R10);
        b.produce(QueueId(6), Reg::R1);
        b.halt();
    });
    let mut m = Machine::new(cfg());
    m.load_thread(0, ThreadContext::new(ThreadId(0), t2));
    m.load_thread(1, ThreadContext::new(ThreadId(1), t1));
    assert_eq!(m.run(100_000).unwrap(), RunEvent::AllHalted);
    assert_eq!(m.committed_output(), &[11, 22]);
}

#[test]
fn interrupt_handler_is_charged_time() {
    let p = build(|b| {
        b.compute(20_000);
        b.halt();
    });
    let quiet = {
        let mut m = Machine::new(cfg());
        m.load_thread(0, ThreadContext::new(ThreadId(0), p.clone()));
        m.run(10_000).unwrap();
        m.cycles()
    };
    let noisy = {
        let mut c = cfg();
        c.interrupt_period = 1_000;
        c.interrupt_handler_instrs = 500;
        let mut m = Machine::new(c);
        m.load_thread(0, ThreadContext::new(ThreadId(0), p));
        m.run(10_000).unwrap();
        assert!(m.stats().interrupts > 0);
        m.cycles()
    };
    assert!(
        noisy > quiet,
        "interrupt handlers must cost cycles: {quiet} vs {noisy}"
    );
}

#[test]
fn core_stats_reveal_pipeline_balance() {
    // An unbalanced producer/consumer: the fast side must show queue stalls.
    let q = QueueId(9);
    let fast_producer = build(|b| {
        let head = b.new_label();
        b.li(Reg::R1, 0);
        b.bind(head).unwrap();
        b.produce(q, Reg::R1);
        b.addi(Reg::R1, Reg::R1, 1);
        b.branch_imm(Cond::LtU, Reg::R1, 200, head);
        b.halt();
    });
    let slow_consumer = build(|b| {
        let head = b.new_label();
        b.li(Reg::R2, 0);
        b.bind(head).unwrap();
        b.consume(Reg::R1, q);
        b.compute(100);
        b.addi(Reg::R2, Reg::R2, 1);
        b.branch_imm(Cond::LtU, Reg::R2, 200, head);
        b.halt();
    });
    let mut m = Machine::new(cfg());
    m.load_thread(0, ThreadContext::new(ThreadId(0), fast_producer));
    m.load_thread(1, ThreadContext::new(ThreadId(1), slow_consumer));
    assert_eq!(m.run(1_000_000).unwrap(), RunEvent::AllHalted);
    let cs = m.core_stats();
    assert!(cs[0].instructions > 0);
    assert!(cs[1].instructions > 0);
    assert!(
        cs[0].queue_stall_cycles > cs[1].queue_stall_cycles,
        "the fast producer stalls on the full queue: {} vs {}",
        cs[0].queue_stall_cycles,
        cs[1].queue_stall_cycles
    );
    assert_eq!(
        cs.iter().map(|c| c.instructions).sum::<u64>(),
        m.stats().instructions,
        "per-core instructions sum to the machine total"
    );
}
