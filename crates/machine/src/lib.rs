//! The multicore machine simulator for the HMTX reproduction.
//!
//! The paper evaluates HMTX in gem5 full-system mode on a 4-core
//! out-of-order Alpha. What the HMTX memory system observes is the stream of
//! VID-labeled loads, stores, and commit/abort operations, plus the
//! wrong-path loads produced by branch misprediction. This crate provides a
//! deterministic event-driven machine producing exactly those streams:
//!
//! * in-order cores interpreting the [`hmtx_isa`] mini-ISA, scheduled by
//!   smallest local clock by default (fully deterministic interleaving) —
//!   the pick point is a pluggable [`SchedulePolicy`] so replay and
//!   systematic exploration policies slot in (see [`schedule`]);
//! * a gshare branch predictor per core, with bounded wrong-path
//!   interpretation feeding branch-speculative loads to the caches (§5.1);
//! * hardware produce/consume queues for DSWP pipelines;
//! * timer interrupts whose handler performs non-speculative memory accesses
//!   from outside the guest text segment (§5.2);
//! * transaction-buffered program output (§4.7).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use hmtx_isa::{Cond, ProgramBuilder, Reg};
//! use hmtx_machine::{Machine, RunEvent, ThreadContext};
//! use hmtx_types::{MachineConfig, ThreadId};
//!
//! // Sum 0..10 into r2, print it.
//! let mut b = ProgramBuilder::new();
//! let head = b.new_label();
//! b.li(Reg::R1, 0).li(Reg::R2, 0);
//! b.bind(head)?;
//! b.add(Reg::R2, Reg::R2, Reg::R1);
//! b.addi(Reg::R1, Reg::R1, 1);
//! b.branch_imm(Cond::Lt, Reg::R1, 10, head);
//! b.out(Reg::R2).halt();
//!
//! let mut m = Machine::new(MachineConfig::test_default());
//! m.load_thread(0, ThreadContext::new(ThreadId(0), Arc::new(b.build()?)));
//! assert_eq!(m.run(10_000)?, RunEvent::AllHalted);
//! assert_eq!(m.committed_output(), &[45]);
//! # Ok::<(), hmtx_types::SimError>(())
//! ```

#![warn(missing_docs)]

pub mod machine;
pub mod predictor;
pub mod queue;
pub mod schedule;

pub use machine::{CoreStats, Machine, MachineStats, MarkerEvent, RunEvent, ThreadContext};
pub use predictor::{BranchPredictor, Gshare};
pub use queue::{ConsumeOutcome, ProduceOutcome, QueueSet};
pub use schedule::{
    CoreEvent, EventSummary, JitterPolicy, MinClock, ReplayPolicy, SchedulePolicy, ScheduleSeed,
};

// The bench harness fans complete simulations out across host threads
// (`hmtx_bench::runner`), moving machines and their statistics between
// workers and the result pool. Keep them thread-safe by construction: no
// `Rc`, no interior mutability, no borrowed lifetimes in simulation state.
const _: () = {
    const fn assert_send_sync<T: Send + Sync + 'static>() {}
    assert_send_sync::<Machine>();
    assert_send_sync::<MachineStats>();
    assert_send_sync::<CoreStats>();
    assert_send_sync::<MarkerEvent>();
    // The explorer ships policies and seeds across its worker threads.
    assert_send_sync::<MinClock>();
    assert_send_sync::<JitterPolicy>();
    assert_send_sync::<ReplayPolicy>();
    assert_send_sync::<ScheduleSeed>();
};

#[cfg(test)]
mod machine_tests;
