//! A gshare branch predictor.
//!
//! The paper's benchmarks run on an out-of-order core whose branch
//! mispredictions cause squashed wrong-path loads — the phenomenon the SLA
//! mechanism (§5.1) exists for. A gshare predictor (global history XOR PC
//! indexing a table of 2-bit saturating counters) produces realistic
//! per-workload misprediction rates from the guest programs' actual branch
//! behaviour (Table 1 reports 0.245%–5.59%).

/// A gshare predictor with 2-bit saturating counters.
///
/// # Examples
///
/// ```
/// use hmtx_machine::predictor::Gshare;
/// let mut p = Gshare::new(10);
/// // A strongly biased branch is quickly learned:
/// let mut wrong = 0;
/// for _ in 0..100 {
///     if p.predict_and_update(0x40, true) != true {
///         wrong += 1;
///     }
/// }
/// assert!(wrong <= 2);
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    counters: Vec<u8>,
    history: u64,
    index_bits: u32,
    predictions: u64,
    mispredictions: u64,
}

impl Gshare {
    /// Creates a predictor with `2^index_bits` counters, initialized to
    /// weakly-taken.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24.
    pub fn new(index_bits: u32) -> Self {
        assert!((1..=24).contains(&index_bits));
        Gshare {
            counters: vec![2u8; 1 << index_bits],
            history: 0,
            index_bits,
            predictions: 0,
            mispredictions: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.index_bits) - 1;
        ((pc ^ self.history) & mask) as usize
    }

    /// Predicts the branch at `pc`, then updates with the actual outcome.
    /// Returns the *prediction* (compare with `taken` for correctness).
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let prediction = self.counters[idx] >= 2;
        self.predictions += 1;
        if prediction != taken {
            self.mispredictions += 1;
        }
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << self.index_bits) - 1);
        prediction
    }

    /// Total predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total mispredictions.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate in `[0, 1]`.
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

/// One loop-predictor entry: learns a stable repetition count of one
/// outcome followed by a single "break" outcome (a counted loop's backedge
/// or exit).
#[derive(Debug, Clone, Copy, Default)]
struct LoopEntry {
    tag: u64,
    streak_outcome: bool,
    streak: u32,
    trip: u32,
    confidence: u8,
}

/// A hybrid branch predictor: a loop predictor that captures counted-loop
/// trip counts, backed by [`Gshare`] for everything else.
///
/// Plain gshare systematically mispredicts counted-loop exits whose period
/// exceeds its history window; out-of-order cores of the era modeled by the
/// paper (Alpha 21264 and successors) dedicate a loop/trip-count structure
/// to exactly this case. Without it, even ALVINN's perfectly regular affine
/// loops would show several percent misprediction instead of the paper's
/// 0.245% (Table 1).
///
/// # Examples
///
/// ```
/// use hmtx_machine::predictor::BranchPredictor;
/// let mut p = BranchPredictor::new();
/// // A counted loop: 12 not-takens then one taken, repeated.
/// let mut wrong = 0;
/// for _ in 0..50 {
///     for i in 0..13 {
///         let taken = i == 12;
///         if p.predict_and_update(0x40, taken) != taken {
///             wrong += 1;
///         }
///     }
/// }
/// assert!(wrong < 20, "loop exits must be learned, got {wrong}");
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    gshare: Gshare,
    loops: Vec<LoopEntry>,
    predictions: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// Creates the hybrid with a 14-bit gshare and 1024 loop entries.
    pub fn new() -> Self {
        BranchPredictor {
            gshare: Gshare::new(14),
            loops: vec![LoopEntry::default(); 1024],
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Predicts the branch at `pc`, then updates with the actual outcome.
    /// Returns the prediction.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = (pc as usize) & (self.loops.len() - 1);
        let entry = &mut self.loops[idx];
        if entry.tag != pc {
            *entry = LoopEntry {
                tag: pc,
                streak_outcome: taken,
                ..LoopEntry::default()
            };
        }
        let loop_prediction = if entry.confidence >= 2 {
            if entry.streak == entry.trip {
                Some(!entry.streak_outcome)
            } else {
                Some(entry.streak_outcome)
            }
        } else {
            None
        };
        let gshare_prediction = self.gshare.predict_and_update(pc, taken);
        let prediction = loop_prediction.unwrap_or(gshare_prediction);
        self.predictions += 1;
        if prediction != taken {
            self.mispredictions += 1;
        }
        // Train the loop entry.
        let entry = &mut self.loops[idx];
        if taken == entry.streak_outcome {
            entry.streak += 1;
            if entry.confidence >= 2 && entry.streak > entry.trip {
                entry.confidence = 0;
            }
        } else {
            if entry.streak == entry.trip {
                entry.confidence = (entry.confidence + 1).min(3);
            } else {
                entry.trip = entry.streak;
                entry.confidence = 1;
            }
            entry.streak = 0;
        }
        prediction
    }

    /// Total predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total mispredictions.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate in `[0, 1]`.
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

impl Default for BranchPredictor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branches() {
        let mut p = Gshare::new(10);
        for _ in 0..1000 {
            p.predict_and_update(0x10, true);
        }
        assert!(p.mispredict_rate() < 0.01);
    }

    #[test]
    fn learns_alternating_pattern_through_history() {
        let mut p = Gshare::new(10);
        let mut taken = false;
        // Warm up, then measure: gshare captures period-2 patterns.
        for _ in 0..200 {
            p.predict_and_update(0x20, taken);
            taken = !taken;
        }
        let warm_mispred = p.mispredictions();
        for _ in 0..1000 {
            p.predict_and_update(0x20, taken);
            taken = !taken;
        }
        let later = p.mispredictions() - warm_mispred;
        assert!(
            later < 20,
            "pattern should be learned, got {later} late mispredictions"
        );
    }

    #[test]
    fn random_branches_mispredict_often() {
        let mut p = Gshare::new(10);
        // A pseudo-random but deterministic sequence.
        let mut x = 0x12345678u64;
        let mut mispred = 0;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 33) & 1 == 1;
            if p.predict_and_update(0x30, taken) != taken {
                mispred += 1;
            }
        }
        let rate = mispred as f64 / 10_000.0;
        assert!(
            rate > 0.30,
            "random branches should mispredict ~50%, got {rate}"
        );
    }

    #[test]
    #[should_panic]
    fn zero_index_bits_rejected() {
        let _ = Gshare::new(0);
    }

    #[test]
    fn hybrid_learns_long_counted_loops() {
        let mut p = BranchPredictor::new();
        let mut wrong = 0u64;
        let mut total = 0u64;
        // A 24-trip inner loop nested in an outer loop — the exact shape
        // gshare alone cannot learn (period exceeds its history window).
        for _outer in 0..200 {
            for i in 0..25 {
                let taken = i == 24;
                if p.predict_and_update(0x10, taken) != taken {
                    wrong += 1;
                }
                total += 1;
            }
            let taken_outer = false;
            if p.predict_and_update(0x20, taken_outer) != taken_outer {
                wrong += 1;
            }
            total += 1;
        }
        let rate = wrong as f64 / total as f64;
        assert!(rate < 0.01, "hybrid must learn trip counts, got {rate:.4}");
        assert_eq!(p.predictions(), total);
        assert_eq!(p.mispredictions(), wrong);
    }

    #[test]
    fn hybrid_falls_back_to_gshare_for_irregular_branches() {
        let mut p = BranchPredictor::new();
        for _ in 0..1000 {
            p.predict_and_update(0x30, true);
        }
        assert!(p.mispredict_rate() < 0.01);
    }

    #[test]
    fn hybrid_random_branches_still_mispredict() {
        let mut p = BranchPredictor::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut wrong = 0;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 33) & 1 == 1;
            if p.predict_and_update(0x40, taken) != taken {
                wrong += 1;
            }
        }
        assert!(wrong as f64 / 10_000.0 > 0.3);
    }

    #[test]
    fn hybrid_adapts_when_trip_count_changes() {
        let mut p = BranchPredictor::new();
        for trip in [8u64, 16] {
            let mut wrong = 0;
            for _rep in 0..100 {
                for i in 0..=trip {
                    let taken = i == trip;
                    if p.predict_and_update(0x50, taken) != taken {
                        wrong += 1;
                    }
                }
            }
            assert!(wrong < 30, "trip {trip}: {wrong} wrong");
        }
    }
}
