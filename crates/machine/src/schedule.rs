//! The scheduler seam: pluggable policies for the machine's event-pick
//! point.
//!
//! [`Machine::run`](crate::Machine::run) advances the core with the smallest
//! local clock — a fully deterministic interleaving, but only *one* of the
//! many interleavings real hardware could produce. This module extracts that
//! pick into the [`SchedulePolicy`] trait so other schedulers plug in
//! without touching the interpreter:
//!
//! * [`MinClock`] — the default deterministic policy (byte-identical to the
//!   historical behaviour);
//! * [`JitterPolicy`] — a seeded policy that deterministically perturbs the
//!   pick, in the spirit of the chaos suite's fault plans;
//! * [`ReplayPolicy`] — replays a recorded list of divergences from the
//!   min-clock baseline, the substrate of `hmtx-explore`'s systematic
//!   schedule enumeration and of `hmtx-run --replay`.
//!
//! A policy picks among the *enabled* cores, each described by a
//! [`CoreEvent`] summarising what its next instruction would do (the memory
//! line it touches, whether a queue operation would block, MTX control).
//! The summaries are what lets an explorer branch only where interleaving
//! can matter: two next-events on different lines commute.
//!
//! When a controlled policy runs a core ahead of peers with earlier local
//! clocks, the machine *warps* the chosen core's clock up to the latest
//! previously scheduled event before stepping it, so the timestamps the
//! memory system observes stay non-decreasing (the protocol's trace and
//! statistics bookkeeping assume monotone time). Under [`MinClock`] the warp
//! is provably a no-op: the minimum clock never regresses.

use std::collections::BTreeMap;
use std::fmt;

use hmtx_core::MemorySystem;
use hmtx_types::{Cycle, Json, SimError, Vid};

/// What the next instruction of an enabled core would do, at the resolution
/// the explorer's partial-order reduction needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventSummary {
    /// A load or store to the given cache line.
    Mem {
        /// Line index ([`hmtx_types::Addr::line`]).
        line: u64,
        /// `true` for a store.
        write: bool,
    },
    /// An MTX control instruction (`beginMTX`/`commitMTX`/`abortMTX`/
    /// `vidReset`), which orders against everything.
    Mtx,
    /// A hardware queue operation.
    Queue {
        /// Queue index.
        q: usize,
        /// `true` for `produce`, `false` for `consume`.
        produce: bool,
        /// Whether the operation would stall right now (full/empty).
        would_block: bool,
    },
    /// Anything else (ALU, branches, output, ...): commutes with every
    /// other core's next event.
    Other,
}

impl EventSummary {
    /// Whether two co-enabled next-events can be order-sensitive. Memory
    /// operations conflict when they touch the same line and at least one
    /// writes; MTX control conflicts with everything; queue operations
    /// conflict on the same queue.
    pub fn conflicts_with(&self, other: &EventSummary) -> bool {
        match (self, other) {
            (
                EventSummary::Mem { line: a, write: wa },
                EventSummary::Mem { line: b, write: wb },
            ) => a == b && (*wa || *wb),
            (EventSummary::Mtx, EventSummary::Mem { .. } | EventSummary::Mtx)
            | (EventSummary::Mem { .. }, EventSummary::Mtx) => true,
            (EventSummary::Queue { q: a, .. }, EventSummary::Queue { q: b, .. }) => a == b,
            _ => false,
        }
    }
}

/// One enabled core at a scheduling point, sorted by `(ready_at, core)` so
/// index 0 is always the min-clock (default) choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreEvent {
    /// Core index.
    pub core: usize,
    /// The core's local clock.
    pub ready_at: Cycle,
    /// Summary of its next instruction.
    pub event: EventSummary,
}

/// A pluggable scheduling policy: picks which enabled core steps next.
pub trait SchedulePolicy: fmt::Debug {
    /// Picks an index into `enabled` (non-empty, sorted by
    /// `(ready_at, core)`). Out-of-range picks are clamped by the machine.
    /// `step` is the 0-based ordinal of this scheduling decision within the
    /// current [`run_with_policy`](crate::Machine::run_with_policy) call.
    fn pick(&mut self, step: u64, enabled: &[CoreEvent]) -> usize;

    /// Whether this policy reads the per-core [`EventSummary`] in the
    /// `enabled` list. Computing a summary means decoding the next
    /// instruction of every enabled core at every scheduling decision — the
    /// dominant per-decision cost — so policies that only look at
    /// `(ready_at, core)` (or at nothing, like [`MinClock`]) return `false`
    /// and receive [`EventSummary::Other`] placeholders instead. The pick
    /// sequence itself is unaffected either way.
    fn needs_summaries(&self) -> bool {
        true
    }

    /// Whether this policy always picks index 0 — i.e. it is
    /// observationally equivalent to [`MinClock`] as far as core choice
    /// goes. The machine uses this to skip building and sorting the
    /// `enabled` list entirely and compute the min-clock core with a
    /// plain scan; `observe_commit` is still invoked either way, so
    /// commit observers may return `true` as long as their `pick` is
    /// always 0. The schedule produced is identical on both paths.
    fn is_min_clock(&self) -> bool {
        false
    }

    /// Whether [`observe_commit`](Self::observe_commit) does anything. The
    /// min-clock fast path reads the committed VID before and after every
    /// step to detect commits; policies whose `observe_commit` is the
    /// default no-op return `false` so that bookkeeping can be skipped.
    /// Must be `true` for any policy that overrides `observe_commit`.
    fn observes_commits(&self) -> bool {
        true
    }

    /// Called after each successful `commitMTX`, with the newly committed
    /// VID, the quiescent memory system, and the committed output stream.
    /// An error aborts the run. The default does nothing — observers such
    /// as `hmtx-explore` hook per-commit invariant checks and oracle
    /// comparisons here.
    fn observe_commit(
        &mut self,
        vid: Vid,
        mem: &MemorySystem,
        committed_output: &[u64],
    ) -> Result<(), SimError> {
        let _ = (vid, mem, committed_output);
        Ok(())
    }
}

/// The default deterministic policy: always the smallest local clock
/// (ties broken by core index). Byte-identical to the historical scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinClock;

impl SchedulePolicy for MinClock {
    fn pick(&mut self, _step: u64, _enabled: &[CoreEvent]) -> usize {
        0
    }

    fn needs_summaries(&self) -> bool {
        false
    }

    fn is_min_clock(&self) -> bool {
        true
    }

    fn observes_commits(&self) -> bool {
        false
    }
}

/// A seeded policy that deterministically perturbs the min-clock pick:
/// with probability `rate_ppm` per decision it schedules a uniformly chosen
/// enabled core instead of the earliest one. The same `(seed, rate)` pair
/// replays the same schedule on every host, like the chaos fault plans.
#[derive(Debug, Clone)]
pub struct JitterPolicy {
    state: u64,
    rate_ppm: u32,
}

impl JitterPolicy {
    /// Creates a jitter policy from a seed and a perturbation rate.
    pub fn new(seed: u64, rate_ppm: u32) -> Self {
        JitterPolicy {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
            rate_ppm,
        }
    }

    fn next(&mut self) -> u64 {
        // SplitMix64, same generator family as the fault plans.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SchedulePolicy for JitterPolicy {
    fn pick(&mut self, _step: u64, enabled: &[CoreEvent]) -> usize {
        let roll = self.next() % 1_000_000;
        if roll < u64::from(self.rate_ppm) {
            (self.next() % enabled.len() as u64) as usize
        } else {
            0
        }
    }

    fn needs_summaries(&self) -> bool {
        false
    }
}

/// Replays a recorded schedule: at each decision ordinal present in the
/// divergence map, schedule the named core (if still enabled); everywhere
/// else, fall back to min-clock. Missing/disabled cores degrade to the
/// default pick rather than failing, so shrunk prefixes stay replayable.
#[derive(Debug, Clone, Default)]
pub struct ReplayPolicy {
    divergences: BTreeMap<u64, usize>,
}

impl ReplayPolicy {
    /// Builds a replay policy from `(decision ordinal, core)` pairs.
    pub fn new(picks: &[(u64, usize)]) -> Self {
        ReplayPolicy {
            divergences: picks.iter().copied().collect(),
        }
    }

    /// Builds a replay policy from a stored seed's pick list.
    pub fn from_seed(seed: &ScheduleSeed) -> Self {
        Self::new(&seed.picks)
    }
}

impl SchedulePolicy for ReplayPolicy {
    fn pick(&mut self, step: u64, enabled: &[CoreEvent]) -> usize {
        match self.divergences.get(&step) {
            Some(&core) => enabled.iter().position(|e| e.core == core).unwrap_or(0),
            None => 0,
        }
    }

    fn needs_summaries(&self) -> bool {
        false
    }
}

/// A replayable schedule, as written to `tests/corpus/` by the explorer's
/// shrinker and consumed by `hmtx-run --replay`.
///
/// Two kinds exist: `"machine"` seeds replay machine-level scheduling
/// divergences (`picks`), `"ops"` seeds replay an op-level interleaving
/// (`order`, a sequence of transaction-major global op ids).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScheduleSeed {
    /// `"machine"` or `"ops"`.
    pub kind: String,
    /// Kernel/workload name the seed applies to.
    pub name: String,
    /// Planted protocol defect required to reproduce (config knob name).
    pub seed_bug: Option<String>,
    /// Machine kind: `(decision ordinal, core)` divergences from min-clock.
    pub picks: Vec<(u64, usize)>,
    /// Ops kind: the retained global op ids, in execution order.
    pub order: Vec<usize>,
    /// Free-form provenance note (what failed, when it was pinned).
    pub note: String,
}

impl ScheduleSeed {
    /// Serializes the seed (fixed key order, replayable byte-for-byte).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::Str(self.kind.clone())),
            ("name", Json::Str(self.name.clone())),
            (
                "seed_bug",
                match &self.seed_bug {
                    Some(s) => Json::Str(s.clone()),
                    None => Json::Null,
                },
            ),
            (
                "picks",
                Json::Arr(
                    self.picks
                        .iter()
                        .map(|(s, c)| Json::Arr(vec![Json::Uint(*s), Json::Uint(*c as u64)]))
                        .collect(),
                ),
            ),
            (
                "order",
                Json::Arr(self.order.iter().map(|t| Json::Uint(*t as u64)).collect()),
            ),
            ("note", Json::Str(self.note.clone())),
        ])
    }

    /// Parses a seed serialized by [`ScheduleSeed::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadProgram`] on missing or malformed fields.
    pub fn from_json(v: &Json) -> Result<Self, SimError> {
        let bad = |msg: &str| SimError::BadProgram(format!("schedule seed: {msg}"));
        let text = |name: &str| {
            v.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(&format!("needs string `{name}`")))
        };
        let kind = text("kind")?;
        if kind != "machine" && kind != "ops" {
            return Err(bad(&format!("unknown kind `{kind}`")));
        }
        let seed_bug = match v.get("seed_bug") {
            None | Some(Json::Null) => None,
            Some(s) => Some(
                s.as_str()
                    .ok_or_else(|| bad("seed_bug must be a string or null"))?
                    .to_string(),
            ),
        };
        let mut picks = Vec::new();
        for p in v
            .get("picks")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("needs array `picks`"))?
        {
            let pair = p.as_arr().ok_or_else(|| bad("picks entries are pairs"))?;
            match pair {
                [s, c] => picks.push((
                    s.as_u64().ok_or_else(|| bad("pick step must be uint"))?,
                    c.as_u64().ok_or_else(|| bad("pick core must be uint"))? as usize,
                )),
                _ => return Err(bad("picks entries are [step, core] pairs")),
            }
        }
        let mut order = Vec::new();
        for t in v
            .get("order")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("needs array `order`"))?
        {
            order.push(t.as_u64().ok_or_else(|| bad("order entries are uints"))? as usize);
        }
        Ok(ScheduleSeed {
            kind,
            name: text("name")?,
            seed_bug,
            picks,
            order,
            note: text("note")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(core: usize, ready_at: Cycle) -> CoreEvent {
        CoreEvent {
            core,
            ready_at,
            event: EventSummary::Other,
        }
    }

    #[test]
    fn min_clock_always_picks_first() {
        let mut p = MinClock;
        assert_eq!(p.pick(0, &[ev(2, 5), ev(0, 9)]), 0);
        assert_eq!(p.pick(99, &[ev(1, 0)]), 0);
    }

    #[test]
    fn replay_diverges_only_at_recorded_steps() {
        let mut p = ReplayPolicy::new(&[(1, 3)]);
        let enabled = [ev(0, 5), ev(3, 9)];
        assert_eq!(p.pick(0, &enabled), 0);
        assert_eq!(p.pick(1, &enabled), 1);
        assert_eq!(p.pick(2, &enabled), 0);
        // A recorded core that is no longer enabled degrades to default.
        let mut p = ReplayPolicy::new(&[(0, 7)]);
        assert_eq!(p.pick(0, &enabled), 0);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let enabled = [ev(0, 0), ev(1, 0), ev(2, 0)];
        let run = |seed| {
            let mut p = JitterPolicy::new(seed, 500_000);
            (0..32).map(|s| p.pick(s, &enabled)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
        assert!(run(7).iter().any(|&i| i != 0), "rate 50% must perturb");
    }

    #[test]
    fn conflict_relation() {
        let w = |line| EventSummary::Mem { line, write: true };
        let r = |line| EventSummary::Mem { line, write: false };
        assert!(w(0x40).conflicts_with(&r(0x40)));
        assert!(!r(0x40).conflicts_with(&r(0x40)), "two reads commute");
        assert!(!w(0x40).conflicts_with(&w(0x80)), "different lines commute");
        assert!(EventSummary::Mtx.conflicts_with(&r(0x40)));
        assert!(EventSummary::Mtx.conflicts_with(&EventSummary::Mtx));
        let q0 = EventSummary::Queue {
            q: 0,
            produce: true,
            would_block: false,
        };
        let q1 = EventSummary::Queue {
            q: 1,
            produce: false,
            would_block: false,
        };
        assert!(q0.conflicts_with(&q0));
        assert!(!q0.conflicts_with(&q1));
        assert!(!EventSummary::Other.conflicts_with(&w(0x40)));
    }

    #[test]
    fn seed_round_trips_through_json() {
        let seed = ScheduleSeed {
            kind: "machine".into(),
            name: "race_detect".into(),
            seed_bug: None,
            picks: vec![(3, 1), (9, 0)],
            order: vec![],
            note: "pinned by hmtx-explore".into(),
        };
        let back = ScheduleSeed::from_json(&seed.to_json()).unwrap();
        assert_eq!(back, seed);
        let ops = ScheduleSeed {
            kind: "ops".into(),
            name: "migrated_line".into(),
            seed_bug: Some("stale-migration-replica".into()),
            picks: vec![],
            order: vec![0, 0, 1, 1],
            note: String::new(),
        };
        let back = ScheduleSeed::from_json(&ops.to_json()).unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn malformed_seeds_are_rejected() {
        for bad in [
            r#"{"kind":"nope","name":"x","seed_bug":null,"picks":[],"order":[],"note":""}"#,
            r#"{"kind":"ops","name":"x","seed_bug":null,"picks":[[1]],"order":[],"note":""}"#,
            r#"{"kind":"ops","name":"x","seed_bug":null,"picks":[],"order":["a"],"note":""}"#,
            r#"{"kind":"ops","seed_bug":null,"picks":[],"order":[],"note":""}"#,
            r#"[]"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(ScheduleSeed::from_json(&v).is_err(), "{bad}");
        }
    }
}
