//! The multicore machine: in-order cores interpreting the mini-ISA over the
//! HMTX memory system, with pluggable scheduling (deterministic min-clock by
//! default, see [`crate::schedule`]), branch prediction with wrong-path
//! execution, hardware queues, transaction-buffered output, and timer
//! interrupts.

use std::sync::Arc;

use hmtx_core::{
    AccessKind, AccessRequest, AccessResponse, FaultPlan, FaultSite, MemorySystem, MisspecCause,
};
use hmtx_isa::{Instr, Operand, Program, Reg};
use hmtx_types::{Addr, CoreId, Cycle, MachineConfig, SimError, ThreadId, Vid};

use crate::predictor::BranchPredictor;
use crate::queue::{ConsumeOutcome, ProduceOutcome, QueueSet};
use crate::schedule::{CoreEvent, EventSummary, MinClock, SchedulePolicy};

/// Cycles a core waits before retrying a blocked queue operation.
const RETRY_QUANTUM: u64 = 4;

/// Cycles charged for migrating a thread context between cores.
const MIGRATION_COST: u64 = 100;

/// Base of the per-core kernel scratch region touched by the interrupt
/// handler (disjoint from any guest data by construction).
const KERNEL_REGION_BASE: u64 = 0xFFFF_0000_0000;

/// Maximum retained marker events (markers are a diagnostic facility; the
/// log is bounded so marker-heavy runs don't grow without bound).
const MARKER_LOG_CAP: usize = 200_000;

/// An architectural thread context, bound to at most one core at a time.
///
/// Threads can migrate between cores mid-transaction (§5.2): their
/// speculative data is found in other caches through the VID.
#[derive(Debug, Clone)]
pub struct ThreadContext {
    /// Software thread ID.
    pub tid: ThreadId,
    /// The 32 general-purpose registers.
    pub regs: [u64; Reg::COUNT],
    /// Program counter (instruction index).
    pub pc: usize,
    /// The program this thread executes.
    pub program: Arc<Program>,
    /// The per-thread VID register set by `beginMTX` (§3.1).
    pub vid: Vid,
    /// Recovery entry point registered by `initMTX`.
    pub recovery_pc: Option<usize>,
    /// Set once the thread executes `halt` (or runs off the program end).
    pub halted: bool,
}

impl ThreadContext {
    /// Creates a thread at `pc` 0 with zeroed registers.
    pub fn new(tid: ThreadId, program: Arc<Program>) -> Self {
        ThreadContext {
            tid,
            regs: [0; Reg::COUNT],
            pc: 0,
            program,
            vid: Vid::NON_SPECULATIVE,
            recovery_pc: None,
            halted: false,
        }
    }

    /// Sets a register (builder-style initial state).
    pub fn with_reg(mut self, reg: Reg, value: u64) -> Self {
        self.regs[reg.index()] = value;
        self
    }
}

/// A marker event recorded by the `marker` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkerEvent {
    /// Cycle at which the marker executed.
    pub cycle: Cycle,
    /// Core that executed it.
    pub core: CoreId,
    /// Thread that executed it.
    pub tid: ThreadId,
    /// Marker payload.
    pub id: u32,
}

/// Why [`Machine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunEvent {
    /// Every loaded thread halted.
    AllHalted,
    /// Misspeculation was detected (or `abortMTX` executed); all speculative
    /// state has been flushed and queues drained. The runtime must
    /// re-dispatch from the last committed point.
    Misspeculation {
        /// The detected cause.
        cause: MisspecCause,
        /// Cycle of detection.
        cycle: Cycle,
    },
    /// The instruction budget was exhausted (likely livelock or an
    /// underestimated budget).
    BudgetExhausted,
}

/// Aggregate machine statistics (memory statistics live in
/// [`MemorySystem::stats`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct MachineStats {
    /// Instructions retired (correct path only).
    pub instructions: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredictions: u64,
    /// Wrong-path instructions interpreted after mispredictions.
    pub wrong_path_instructions: u64,
    /// Timer interrupts serviced.
    pub interrupts: u64,
    /// Explicit `abortMTX` executions.
    pub explicit_aborts: u64,
    /// Extra-latency faults injected into queue operations (chaos testing).
    pub injected_queue_delays: u64,
    /// Forced wrong-path load storms injected on retired branches (chaos
    /// testing).
    pub injected_wrong_path_storms: u64,
}

impl MachineStats {
    /// Branch misprediction rate in `[0, 1]`.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.branches as f64
        }
    }

    /// Fraction of retired instructions that are branches.
    pub fn branch_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.branches as f64 / self.instructions as f64
        }
    }
}

/// Per-core activity counters (pipeline balance analysis).
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreStats {
    /// Instructions retired on this core.
    pub instructions: u64,
    /// Cycles spent stalled on queue operations (full/empty retries).
    pub queue_stall_cycles: u64,
    /// The core's local clock at the end of the run.
    pub ready_at: Cycle,
}

enum StepOutcome {
    Continue,
    Misspec(MisspecCause),
}

/// The simulated multicore machine.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use hmtx_isa::{ProgramBuilder, Reg};
/// use hmtx_machine::{Machine, RunEvent, ThreadContext};
/// use hmtx_types::{MachineConfig, ThreadId};
///
/// let mut b = ProgramBuilder::new();
/// b.li(Reg::R1, 123).out(Reg::R1).halt();
/// let program = Arc::new(b.build()?);
///
/// let mut m = Machine::new(MachineConfig::test_default());
/// m.load_thread(0, ThreadContext::new(ThreadId(0), program));
/// assert_eq!(m.run(1_000)?, RunEvent::AllHalted);
/// assert_eq!(m.committed_output(), &[123]);
/// # Ok::<(), hmtx_types::SimError>(())
/// ```
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    mem: MemorySystem,
    threads: Vec<Option<ThreadContext>>,
    ready_at: Vec<Cycle>,
    next_interrupt: Vec<Cycle>,
    predictors: Vec<BranchPredictor>,
    queues: QueueSet,
    /// Speculative `out` values not yet committed, sorted by VID
    /// (a sorted vec: VIDs are tiny and drains are prefix drains).
    pending_outputs: Vec<(u16, Vec<u64>)>,
    committed_output: Vec<u64>,
    marker_log: Vec<MarkerEvent>,
    stats: MachineStats,
    core_stats: Vec<CoreStats>,
    high_water: Cycle,
    faults: Option<FaultPlan>,
}

impl Machine {
    /// Builds a machine with `cfg.num_cores` cores and 64 hardware queues.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use [`Self::try_new`] to get
    /// a diagnostic instead.
    pub fn new(cfg: MachineConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a machine for `cfg`, reporting an invalid configuration as an
    /// error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the machine configuration or any
    /// cache geometry is invalid.
    pub fn try_new(cfg: MachineConfig) -> Result<Self, SimError> {
        let n = cfg.num_cores;
        let first_interrupt = if cfg.interrupt_period > 0 {
            cfg.interrupt_period
        } else {
            u64::MAX
        };
        Ok(Machine {
            mem: MemorySystem::try_new(cfg.clone())?,
            threads: (0..n).map(|_| None).collect(),
            ready_at: vec![0; n],
            next_interrupt: vec![first_interrupt; n],
            predictors: (0..n).map(|_| BranchPredictor::new()).collect(),
            queues: QueueSet::new(64, cfg.queue_capacity, cfg.queue_latency),
            pending_outputs: Vec::new(),
            committed_output: Vec::new(),
            marker_log: Vec::new(),
            stats: MachineStats::default(),
            core_stats: vec![CoreStats::default(); n],
            high_water: 0,
            // The machine draws from its own fault plan, independent of the
            // memory system's: both are deterministic in the shared seed.
            faults: cfg.faults.map(FaultPlan::new),
            cfg,
        })
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The memory system.
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable access to the memory system (initial image construction).
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Machine-level statistics.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Per-core activity counters (for pipeline-balance analysis).
    pub fn core_stats(&self) -> &[CoreStats] {
        &self.core_stats
    }

    /// The hardware queues.
    pub fn queues(&self) -> &QueueSet {
        &self.queues
    }

    /// Output values committed so far (§4.7 transaction-buffered output).
    pub fn committed_output(&self) -> &[u64] {
        &self.committed_output
    }

    /// Marker events recorded so far.
    pub fn marker_log(&self) -> &[MarkerEvent] {
        &self.marker_log
    }

    /// The completion time: the largest cycle any core has reached.
    pub fn cycles(&self) -> Cycle {
        self.high_water
    }

    /// Places a thread on a core.
    ///
    /// # Panics
    ///
    /// Panics if the core already has a thread or is out of range.
    pub fn load_thread(&mut self, core: usize, thread: ThreadContext) {
        assert!(self.threads[core].is_none(), "core {core} already occupied");
        self.threads[core] = Some(thread);
    }

    /// Removes the thread from a core (if any).
    pub fn unload_thread(&mut self, core: usize) -> Option<ThreadContext> {
        self.threads[core].take()
    }

    /// The thread currently on `core`.
    pub fn thread(&self, core: usize) -> Option<&ThreadContext> {
        self.threads[core].as_ref()
    }

    /// Mutable access to the thread on `core`.
    pub fn thread_mut(&mut self, core: usize) -> Option<&mut ThreadContext> {
        self.threads[core].as_mut()
    }

    /// Migrates the thread on `from` to the (empty) core `to`, charging a
    /// context-switch cost. Speculative state needs no special handling: the
    /// thread's data is found in other caches through its VID (§5.2).
    ///
    /// # Panics
    ///
    /// Panics if `from` has no thread or `to` is occupied.
    pub fn migrate_thread(&mut self, from: usize, to: usize) {
        assert!(self.threads[to].is_none(), "target core occupied");
        let t = self.threads[from].take().expect("no thread to migrate");
        self.threads[to] = Some(t);
        self.ready_at[to] = self.ready_at[to].max(self.ready_at[from]) + MIGRATION_COST;
    }

    /// Runs until every thread halts, misspeculation aborts the machine, or
    /// `budget` instructions have retired.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for guest-program bugs (unaligned access,
    /// malformed VIDs, out-of-order commits).
    pub fn run(&mut self, budget: u64) -> Result<RunEvent, SimError> {
        self.run_with_policy(budget, &mut MinClock)
    }

    /// Runs like [`Machine::run`], but lets `policy` choose which enabled
    /// core steps at each scheduling point (the seam behind `hmtx-explore`
    /// and `hmtx-run --replay`).
    ///
    /// At every decision the policy sees the enabled cores sorted by
    /// `(ready_at, core)` — index 0 is the default min-clock choice, so
    /// [`MinClock`] reproduces [`Machine::run`] exactly. When the policy
    /// runs a core ahead of an earlier-clocked peer, the chosen core's
    /// clock is first warped up to the latest previously scheduled event so
    /// the memory system always observes non-decreasing timestamps (a no-op
    /// under [`MinClock`]: the minimum clock never regresses).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for guest-program bugs, or any error raised by
    /// the policy's `observe_commit` hook.
    pub fn run_with_policy(
        &mut self,
        budget: u64,
        policy: &mut dyn SchedulePolicy,
    ) -> Result<RunEvent, SimError> {
        if policy.is_min_clock() {
            return self.run_min_clock(budget, policy);
        }
        let start_instructions = self.stats.instructions;
        let mut enabled: Vec<CoreEvent> = Vec::with_capacity(self.threads.len());
        let mut sched_now: Cycle = 0;
        let mut step_ordinal: u64 = 0;
        let with_summaries = policy.needs_summaries();
        loop {
            self.collect_enabled(&mut enabled, with_summaries);
            if enabled.is_empty() {
                return Ok(RunEvent::AllHalted);
            }
            if self.stats.instructions - start_instructions >= budget {
                return Ok(RunEvent::BudgetExhausted);
            }
            let idx = policy.pick(step_ordinal, &enabled).min(enabled.len() - 1);
            step_ordinal += 1;
            let core = enabled[idx].core;
            // Time warp: keep scheduled timestamps monotone under arbitrary
            // policies (see run_with_policy docs).
            if self.ready_at[core] < sched_now {
                self.ready_at[core] = sched_now;
            }
            sched_now = self.ready_at[core];
            if self.ready_at[core] >= self.next_interrupt[core] {
                self.service_interrupt(core)?;
                continue;
            }
            let committed_before = self.mem.last_committed();
            match self.step(core)? {
                StepOutcome::Continue => {}
                StepOutcome::Misspec(cause) => {
                    let cycle = self.ready_at[core];
                    self.machine_abort(cycle);
                    return Ok(RunEvent::Misspeculation { cause, cycle });
                }
            }
            let committed_after = self.mem.last_committed();
            if committed_after > committed_before {
                policy.observe_commit(committed_after, &self.mem, &self.committed_output)?;
            }
        }
    }

    /// The allocation-free fast path behind [`Machine::run_with_policy`]
    /// for policies whose pick is always the min-clock core
    /// ([`SchedulePolicy::is_min_clock`]): instead of materializing and
    /// sorting the `enabled` list at every decision, scan for the core
    /// with the smallest `(ready_at, core)` directly. The schedule — and
    /// therefore every simulated cycle count and output byte — is
    /// identical to the general path; the time warp is skipped because
    /// the minimum clock never regresses.
    fn run_min_clock(
        &mut self,
        budget: u64,
        policy: &mut dyn SchedulePolicy,
    ) -> Result<RunEvent, SimError> {
        let start_instructions = self.stats.instructions;
        let observes = policy.observes_commits();
        // Enabled cores, maintained across the loop: while `run` holds
        // `&mut self` the only possible transition is the stepped core
        // halting, handled below — so the Option/halted checks run once
        // here instead of on every rescan.
        let mut enabled: Vec<u32> = (0..self.threads.len() as u32)
            .filter(|&i| self.threads[i as usize].as_ref().is_some_and(|t| !t.halted))
            .collect();
        loop {
            // Two-min argmin over packed (ready_at, core) keys: the
            // lexicographic order reproduces the sorted list's index-0
            // tie-break exactly, and the runner-up key lets the inner loop
            // below keep stepping the winner without rescanning.
            let mut best = u128::MAX;
            let mut second = u128::MAX;
            for &i in &enabled {
                let k = ((self.ready_at[i as usize] as u128) << 32) | i as u128;
                if k < best {
                    second = best;
                    best = k;
                } else if k < second {
                    second = k;
                }
            }
            if best == u128::MAX {
                return Ok(RunEvent::AllHalted);
            }
            let core = (best & 0xffff_ffff) as usize;
            // Run the picked core until the runner-up overtakes it. Between
            // steps only this core's clock moves (monotonically forward), so
            // the global argmin stays `core` while its key is below the
            // cached runner-up key. Machine-wide stalls (VID reset) can only
            // move other cores *later*, which at worst ends this inner run
            // early and falls back to a rescan — never a wrong pick. The
            // pending-interrupt deadline folds into the same bound so the
            // steady state pays one comparison per step.
            let mut int_key =
                ((self.next_interrupt[core] as u128) << 32) | core as u128;
            let mut bound = second.min(int_key);
            loop {
                if self.stats.instructions - start_instructions >= budget {
                    return Ok(RunEvent::BudgetExhausted);
                }
                let k = ((self.ready_at[core] as u128) << 32) | core as u128;
                if k >= bound {
                    if k >= int_key {
                        self.service_interrupt(core)?;
                        int_key =
                            ((self.next_interrupt[core] as u128) << 32) | core as u128;
                        bound = second.min(int_key);
                        let k = ((self.ready_at[core] as u128) << 32) | core as u128;
                        if k >= second {
                            break;
                        }
                        continue;
                    }
                    break; // overtaken by the runner-up
                }
                if observes {
                    let committed_before = self.mem.last_committed();
                    match self.step(core)? {
                        StepOutcome::Continue => {}
                        StepOutcome::Misspec(cause) => {
                            let cycle = self.ready_at[core];
                            self.machine_abort(cycle);
                            return Ok(RunEvent::Misspeculation { cause, cycle });
                        }
                    }
                    let committed_after = self.mem.last_committed();
                    if committed_after > committed_before {
                        policy.observe_commit(
                            committed_after,
                            &self.mem,
                            &self.committed_output,
                        )?;
                    }
                } else {
                    match self.step(core)? {
                        StepOutcome::Continue => {}
                        StepOutcome::Misspec(cause) => {
                            let cycle = self.ready_at[core];
                            self.machine_abort(cycle);
                            return Ok(RunEvent::Misspeculation { cause, cycle });
                        }
                    }
                }
                if self.threads[core].as_ref().is_none_or(|t| t.halted) {
                    enabled.retain(|&i| i as usize != core);
                    break;
                }
            }
        }
    }

    /// Flushes all speculative state: memory system, queues, buffered
    /// speculative output. Threads are left as-is for the runtime to
    /// re-dispatch (the paper's recovery-code jump).
    pub fn machine_abort(&mut self, cycle: Cycle) {
        let latency = self.mem.abort_all(cycle);
        for r in &mut self.ready_at {
            *r = (*r).max(cycle + latency);
        }
        self.queues.flush();
        self.pending_outputs.clear();
    }

    /// Stalls every core for `cycles` past the current completion time
    /// (HyTM backoff: the charge survives thread unload/re-dispatch because
    /// per-core clocks persist across loads). A no-op for `cycles == 0`.
    pub fn stall_all(&mut self, cycles: u64) {
        if cycles == 0 {
            return;
        }
        let now = self.high_water;
        for r in &mut self.ready_at {
            *r = (*r).max(now + cycles);
        }
    }

    /// Performs a VID reset (§4.6) at the current completion time,
    /// stalling every core for the reset latency. The runtime must have
    /// committed every outstanding transaction first.
    pub fn vid_reset(&mut self) {
        let now = self.high_water;
        let latency = self.mem.vid_reset(now);
        for r in &mut self.ready_at {
            *r = (*r).max(now + latency);
        }
    }

    /// Fills `out` with the enabled (loaded, non-halted) cores, sorted by
    /// `(ready_at, core)` so index 0 is the min-clock default pick. With
    /// `with_summaries` false (the policy never reads them, see
    /// [`SchedulePolicy::needs_summaries`]) the per-core instruction decode
    /// is skipped and every event is [`EventSummary::Other`].
    fn collect_enabled(&self, out: &mut Vec<CoreEvent>, with_summaries: bool) {
        out.clear();
        for (i, t) in self.threads.iter().enumerate() {
            if t.as_ref().is_some_and(|t| !t.halted) {
                out.push(CoreEvent {
                    core: i,
                    ready_at: self.ready_at[i],
                    event: if with_summaries {
                        self.event_summary(i)
                    } else {
                        EventSummary::Other
                    },
                });
            }
        }
        out.sort_unstable_by_key(|e| (e.ready_at, e.core));
    }

    /// Summarizes what the next instruction of the thread on `core` would
    /// do, at the resolution the explorer's reduction needs (effective line
    /// addresses are resolved against current register values).
    fn event_summary(&self, core: usize) -> EventSummary {
        let t = self.threads[core].as_ref().unwrap();
        let Some(instr) = t.program.get(t.pc) else {
            return EventSummary::Other;
        };
        match *instr {
            Instr::Load { base, disp, .. } => EventSummary::Mem {
                line: Addr(t.regs[base.index()].wrapping_add(disp as u64)).line().0,
                write: false,
            },
            Instr::Store { base, disp, .. } => EventSummary::Mem {
                line: Addr(t.regs[base.index()].wrapping_add(disp as u64)).line().0,
                write: true,
            },
            Instr::BeginMtx { .. }
            | Instr::CommitMtx { .. }
            | Instr::AbortMtx { .. }
            | Instr::VidReset => EventSummary::Mtx,
            Instr::Produce { q, .. } => EventSummary::Queue {
                q: q.0,
                produce: true,
                would_block: self.queues.produce_would_block(q),
            },
            Instr::Consume { q, .. } => EventSummary::Queue {
                q: q.0,
                produce: false,
                would_block: self.queues.consume_would_block(self.ready_at[core], q),
            },
            _ => EventSummary::Other,
        }
    }

    fn bump(&mut self, core: usize, cycles: u64) {
        self.ready_at[core] += cycles;
        self.core_stats[core].ready_at = self.ready_at[core];
        if self.ready_at[core] > self.high_water {
            self.high_water = self.ready_at[core];
        }
    }

    fn service_interrupt(&mut self, core: usize) -> Result<(), SimError> {
        hmtx_core::stats::inc(&mut self.stats.interrupts);
        let now = self.ready_at[core];
        // The OS handler's PC lies outside the program text segment, so its
        // accesses carry VID 0 regardless of the thread's VID register
        // (§5.2) and must not disturb speculative state.
        let base = KERNEL_REGION_BASE + (core as u64) * 4096;
        for k in 0..8u64 {
            let addr = Addr(base + k * 64);
            let kind = if k % 2 == 0 {
                AccessKind::Read
            } else {
                AccessKind::Write(now ^ k)
            };
            let req = AccessRequest {
                core: CoreId(core),
                addr,
                kind,
                vid: Vid::NON_SPECULATIVE,
                wrong_path: false,
            };
            match self.mem.access(now, &req)? {
                AccessResponse::Done { .. } => {}
                AccessResponse::Misspec { cause, .. } => {
                    unreachable!("kernel region is disjoint from guest data: {cause:?}")
                }
            }
        }
        self.bump(core, self.cfg.interrupt_handler_instrs);
        self.next_interrupt[core] = self.ready_at[core] + self.cfg.interrupt_period;
        Ok(())
    }

    fn reg(&self, core: usize, r: Reg) -> u64 {
        self.threads[core].as_ref().unwrap().regs[r.index()]
    }

    fn set_reg(&mut self, core: usize, r: Reg, v: u64) {
        self.threads[core].as_mut().unwrap().regs[r.index()] = v;
    }

    fn operand(&self, core: usize, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.reg(core, r),
            Operand::Imm(i) => i as u64,
        }
    }

    fn step(&mut self, core: usize) -> Result<StepOutcome, SimError> {
        let now = self.ready_at[core];
        // Hot arms below hold this one borrow for the whole instruction and
        // update `pc` themselves; only the cold tail re-borrows. `self.mem`,
        // `self.stats`, and `self.ready_at` are disjoint fields, so they
        // stay accessible while `t` is live.
        let t = self.threads[core].as_mut().unwrap();
        let pc = t.pc;
        let Some(&instr) = t.program.get(pc) else {
            t.halted = true;
            return Ok(StepOutcome::Continue);
        };
        let vid = t.vid;
        let tid = t.tid;
        hmtx_core::stats::inc(&mut self.stats.instructions);
        hmtx_core::stats::inc(&mut self.core_stats[core].instructions);

        match instr {
            Instr::Li { rd, imm } => {
                t.regs[rd.index()] = imm as u64;
                t.pc = pc + 1;
                self.bump(core, 1);
                return Ok(StepOutcome::Continue);
            }
            Instr::Mov { rd, rs } => {
                t.regs[rd.index()] = t.regs[rs.index()];
                t.pc = pc + 1;
                self.bump(core, 1);
                return Ok(StepOutcome::Continue);
            }
            Instr::Alu { op, rd, rs, rhs } => {
                let a = t.regs[rs.index()];
                let b = match rhs {
                    Operand::Reg(r) => t.regs[r.index()],
                    Operand::Imm(i) => i as u64,
                };
                t.regs[rd.index()] = op.apply(a, b);
                t.pc = pc + 1;
                self.bump(core, 1);
                return Ok(StepOutcome::Continue);
            }
            Instr::Jump { target } => {
                t.pc = target;
                self.bump(core, 1);
                return Ok(StepOutcome::Continue);
            }
            Instr::Compute { amount } => {
                let cycles = match amount {
                    Operand::Reg(r) => t.regs[r.index()],
                    Operand::Imm(i) => i as u64,
                };
                t.pc = pc + 1;
                self.bump(core, cycles.max(1));
                return Ok(StepOutcome::Continue);
            }
            Instr::Load { rd, base, disp } => {
                let addr = Addr(t.regs[base.index()].wrapping_add(disp as u64));
                let req = AccessRequest {
                    core: CoreId(core),
                    addr,
                    kind: AccessKind::Read,
                    vid,
                    wrong_path: false,
                };
                match self.mem.access(now, &req)? {
                    AccessResponse::Done { value, latency, .. } => {
                        t.regs[rd.index()] = value;
                        t.pc = pc + 1;
                        self.bump(core, latency);
                        return Ok(StepOutcome::Continue);
                    }
                    AccessResponse::Misspec { cause, latency } => {
                        // `pc` stays put on a misspeculation, as in the
                        // early return of the cold tail.
                        self.bump(core, latency);
                        return Ok(StepOutcome::Misspec(cause));
                    }
                }
            }
            Instr::Store { rs, base, disp } => {
                let addr = Addr(t.regs[base.index()].wrapping_add(disp as u64));
                let value = t.regs[rs.index()];
                let req = AccessRequest {
                    core: CoreId(core),
                    addr,
                    kind: AccessKind::Write(value),
                    vid,
                    wrong_path: false,
                };
                match self.mem.access(now, &req)? {
                    AccessResponse::Done { latency, .. } => {
                        t.pc = pc + 1;
                        self.bump(core, latency);
                        return Ok(StepOutcome::Continue);
                    }
                    AccessResponse::Misspec { cause, latency } => {
                        self.bump(core, latency);
                        return Ok(StepOutcome::Misspec(cause));
                    }
                }
            }
            _ => {}
        }

        let mut next_pc = pc + 1;
        match instr {
            Instr::Branch {
                cond,
                rs,
                rhs,
                target,
            } => {
                let a = self.reg(core, rs);
                let b = self.operand(core, rhs);
                let taken = cond.eval(a, b);
                let predicted = self.predictors[core].predict_and_update(pc as u64, taken);
                hmtx_core::stats::inc(&mut self.stats.branches);
                self.bump(core, 1);
                if taken {
                    next_pc = target;
                }
                if predicted != taken {
                    hmtx_core::stats::inc(&mut self.stats.mispredictions);
                    self.bump(core, self.cfg.mispredict_penalty);
                    let wrong_pc = if taken { pc + 1 } else { target };
                    if let Some(cause) = self.run_wrong_path(core, wrong_pc, vid, now)? {
                        return Ok(StepOutcome::Misspec(cause));
                    }
                } else if vid.is_speculative()
                    && self
                        .faults
                        .as_mut()
                        .is_some_and(|p| p.fire(FaultSite::WrongPathStorm))
                {
                    // Injected wrong-path storm: squash a correctly
                    // predicted branch as if mispredicted, forcing the §5.1
                    // SLA machinery to absorb a burst of squashed loads.
                    // Speculative contexts only: the non-speculative
                    // fallback rung stays immune by construction.
                    hmtx_core::stats::inc(&mut self.stats.injected_wrong_path_storms);
                    self.mem.note_fault(now, FaultSite::WrongPathStorm.name());
                    self.bump(core, self.cfg.mispredict_penalty);
                    let wrong_pc = if taken { pc + 1 } else { target };
                    if let Some(cause) = self.run_wrong_path(core, wrong_pc, vid, now)? {
                        return Ok(StepOutcome::Misspec(cause));
                    }
                }
            }
            Instr::Halt => {
                self.threads[core].as_mut().unwrap().halted = true;
                self.bump(core, 1);
            }
            Instr::BeginMtx { rvid } => {
                let raw = self.reg(core, rvid);
                let max = self.cfg.hmtx.max_vid().0 as u64;
                if raw > max {
                    return Err(SimError::BadProgram(format!(
                        "beginMTX with VID {raw} exceeds the {}-bit limit",
                        self.cfg.hmtx.vid_bits
                    )));
                }
                self.threads[core].as_mut().unwrap().vid = Vid(raw as u16);
                self.bump(core, 1);
            }
            Instr::CommitMtx { rvid } => {
                let raw = self.reg(core, rvid);
                let commit_vid = Vid(raw as u16);
                let latency = self.mem.commit(now, commit_vid)?;
                self.bump(core, latency);
                self.threads[core].as_mut().unwrap().vid = Vid::NON_SPECULATIVE;
                self.flush_outputs(commit_vid);
            }
            Instr::AbortMtx { rvid } => {
                let raw = self.reg(core, rvid);
                hmtx_core::stats::inc(&mut self.stats.explicit_aborts);
                self.bump(core, 1);
                return Ok(StepOutcome::Misspec(MisspecCause::ExplicitAbort {
                    vid: Vid(raw as u16),
                }));
            }
            Instr::InitMtx { handler } => {
                self.threads[core].as_mut().unwrap().recovery_pc = Some(handler);
                self.bump(core, 1);
            }
            Instr::VidReset => {
                let latency = self.mem.vid_reset(now);
                // The reset broadcast stalls every core (the §4.6 pipeline
                // stall), not just the issuer.
                for r in &mut self.ready_at {
                    *r = (*r).max(now + latency);
                }
                self.bump(core, 1);
            }
            Instr::Produce { q, rs } => {
                let value = self.reg(core, rs);
                match self.queues.produce(now, q, value) {
                    ProduceOutcome::Accepted => {
                        self.bump(core, 1);
                        self.inject_queue_delay(core, now)?;
                    }
                    ProduceOutcome::Full => {
                        next_pc = pc; // retry the same instruction
                        self.stats.instructions -= 1;
                        self.core_stats[core].instructions -= 1;
                        hmtx_core::stats::add(&mut self.core_stats[core].queue_stall_cycles, RETRY_QUANTUM);
                        self.bump(core, RETRY_QUANTUM);
                    }
                }
            }
            Instr::Consume { rd, q } => match self.queues.consume(now, q) {
                ConsumeOutcome::Ready(v) => {
                    self.set_reg(core, rd, v);
                    self.bump(core, 1);
                    self.inject_queue_delay(core, now)?;
                }
                ConsumeOutcome::NotYet(at) => {
                    next_pc = pc;
                    self.stats.instructions -= 1;
                    self.core_stats[core].instructions -= 1;
                    hmtx_core::stats::add(
                            &mut self.core_stats[core].queue_stall_cycles,
                            at.saturating_sub(self.ready_at[core]),
                        );
                    self.ready_at[core] = at;
                    self.high_water = self.high_water.max(at);
                }
                ConsumeOutcome::Empty => {
                    next_pc = pc;
                    self.stats.instructions -= 1;
                    self.core_stats[core].instructions -= 1;
                    hmtx_core::stats::add(&mut self.core_stats[core].queue_stall_cycles, RETRY_QUANTUM);
                    self.bump(core, RETRY_QUANTUM);
                }
            },
            Instr::Out { rs } => {
                let value = self.reg(core, rs);
                if vid.is_non_speculative() {
                    self.committed_output.push(value);
                } else {
                    let slot = match self
                        .pending_outputs
                        .binary_search_by_key(&vid.0, |(k, _)| *k)
                    {
                        Ok(i) => i,
                        Err(i) => {
                            self.pending_outputs.insert(i, (vid.0, Vec::new()));
                            i
                        }
                    };
                    self.pending_outputs[slot].1.push(value);
                }
                self.bump(core, 1);
            }
            Instr::Marker { id } => {
                if self.marker_log.len() < MARKER_LOG_CAP {
                    self.marker_log.push(MarkerEvent {
                        cycle: now,
                        core: CoreId(core),
                        tid,
                        id,
                    });
                }
                self.bump(core, 1);
            }
            // Hot instructions returned from the first match above.
            Instr::Li { .. }
            | Instr::Mov { .. }
            | Instr::Alu { .. }
            | Instr::Jump { .. }
            | Instr::Compute { .. }
            | Instr::Load { .. }
            | Instr::Store { .. } => unreachable!("handled on the fast path"),
        }
        self.threads[core].as_mut().unwrap().pc = next_pc;
        Ok(StepOutcome::Continue)
    }

    /// Chaos fault: charge a completed queue operation deterministic extra
    /// latency. Pure timing — never affects committed results.
    fn inject_queue_delay(&mut self, core: usize, now: Cycle) -> Result<(), SimError> {
        let Some(plan) = self.faults.as_mut() else {
            return Ok(());
        };
        if !plan.fire(FaultSite::QueueDelay) {
            return Ok(());
        }
        let extra = plan.magnitude(FaultSite::QueueDelay, self.cfg.queue_latency.max(8));
        hmtx_core::stats::inc(&mut self.stats.injected_queue_delays);
        self.mem.note_fault(now, FaultSite::QueueDelay.name());
        hmtx_core::stats::add(&mut self.core_stats[core].queue_stall_cycles, extra);
        self.bump(core, extra);
        Ok(())
    }

    /// Interprets up to `wrong_path_depth` instructions down the mispredicted
    /// path: register writes go to a shadow file, loads are issued as
    /// branch-speculative (§5.1), and any store, control-flow, queue, or MTX
    /// instruction ends the wrong path.
    fn run_wrong_path(
        &mut self,
        core: usize,
        start_pc: usize,
        vid: Vid,
        now: Cycle,
    ) -> Result<Option<MisspecCause>, SimError> {
        let mut shadow = self.threads[core].as_ref().unwrap().regs;
        let program = Arc::clone(&self.threads[core].as_ref().unwrap().program);
        let mut pc = start_pc;
        for _ in 0..self.cfg.wrong_path_depth {
            let Some(instr) = program.get(pc) else { break };
            hmtx_core::stats::inc(&mut self.stats.wrong_path_instructions);
            match *instr {
                Instr::Li { rd, imm } => shadow[rd.index()] = imm as u64,
                Instr::Mov { rd, rs } => shadow[rd.index()] = shadow[rs.index()],
                Instr::Alu { op, rd, rs, rhs } => {
                    let b = match rhs {
                        Operand::Reg(r) => shadow[r.index()],
                        Operand::Imm(i) => i as u64,
                    };
                    shadow[rd.index()] = op.apply(shadow[rs.index()], b);
                }
                Instr::Load { rd, base, disp } => {
                    let addr = Addr(shadow[base.index()].wrapping_add(disp as u64));
                    if !addr.word_in_line() {
                        // A wrong-path address can be garbage; real hardware
                        // would squash the fault. Stop following the path.
                        break;
                    }
                    let req = AccessRequest {
                        core: CoreId(core),
                        addr,
                        kind: AccessKind::Read,
                        vid,
                        wrong_path: true,
                    };
                    match self.mem.access(now, &req)? {
                        AccessResponse::Done { value, .. } => shadow[rd.index()] = value,
                        AccessResponse::Misspec { cause, .. } => return Ok(Some(cause)),
                    }
                }
                Instr::Marker { .. } | Instr::Out { .. } | Instr::Compute { .. } => {}
                Instr::Jump { target } => {
                    pc = target;
                    continue;
                }
                Instr::Branch {
                    cond,
                    rs,
                    rhs,
                    target,
                } => {
                    // The wrong path keeps fetching under (shadow) branch
                    // resolution: resolve against shadow registers, which is
                    // what an OoO core's in-flight state would provide.
                    let a = shadow[rs.index()];
                    let bval = match rhs {
                        Operand::Reg(r) => shadow[r.index()],
                        Operand::Imm(i) => i as u64,
                    };
                    if cond.eval(a, bval) {
                        pc = target;
                        continue;
                    }
                }
                // Stores retire at commit, so squashed stores never reach the
                // cache; MTX/queue/halt instructions end the modeled window.
                _ => break,
            }
            pc += 1;
        }
        Ok(None)
    }

    /// Moves buffered output of every VID `<= vid` to the committed stream.
    fn flush_outputs(&mut self, vid: Vid) {
        let n = self
            .pending_outputs
            .iter()
            .take_while(|(k, _)| *k <= vid.0)
            .count();
        for (_, mut vals) in self.pending_outputs.drain(..n) {
            self.committed_output.append(&mut vals);
        }
    }
}
