//! Hardware produce/consume queues connecting pipeline stages.
//!
//! DSWP-style pipelines communicate loop-carried values and VIDs through
//! synthesized hardware queues (the paper's `produceVID`/`consumeVID`,
//! §3.2). Queues have finite capacity and a fixed producer-to-consumer
//! latency modeling inter-core transfer.

use std::collections::VecDeque;

use hmtx_types::{Cycle, QueueId};

/// Outcome of a produce attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProduceOutcome {
    /// Value enqueued.
    Accepted,
    /// Queue full; retry later.
    Full,
}

/// Outcome of a consume attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsumeOutcome {
    /// A value is ready.
    Ready(u64),
    /// The queue has data, but it is still in flight until the given cycle.
    NotYet(Cycle),
    /// The queue is empty.
    Empty,
}

#[derive(Debug, Clone)]
struct Entry {
    value: u64,
    available_at: Cycle,
}

/// A set of hardware queues with uniform capacity and latency.
///
/// # Examples
///
/// ```
/// use hmtx_machine::queue::{ConsumeOutcome, ProduceOutcome, QueueSet};
/// use hmtx_types::QueueId;
///
/// let mut qs = QueueSet::new(2, 4, 10);
/// assert_eq!(qs.produce(0, QueueId(0), 42), ProduceOutcome::Accepted);
/// assert_eq!(qs.consume(5, QueueId(0)), ConsumeOutcome::NotYet(10));
/// assert_eq!(qs.consume(10, QueueId(0)), ConsumeOutcome::Ready(42));
/// assert_eq!(qs.consume(11, QueueId(0)), ConsumeOutcome::Empty);
/// ```
#[derive(Debug, Clone)]
pub struct QueueSet {
    queues: Vec<VecDeque<Entry>>,
    capacity: usize,
    latency: u64,
    produces: u64,
    consumes: u64,
    full_stalls: u64,
    empty_stalls: u64,
}

impl QueueSet {
    /// Creates `count` queues with the given per-queue capacity and
    /// producer-to-consumer latency.
    pub fn new(count: usize, capacity: usize, latency: u64) -> Self {
        QueueSet {
            queues: vec![VecDeque::new(); count],
            capacity,
            latency,
            produces: 0,
            consumes: 0,
            full_stalls: 0,
            empty_stalls: 0,
        }
    }

    /// Number of queues.
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    /// Returns `true` if the set has no queues.
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    /// Attempts to enqueue `value` at cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn produce(&mut self, now: Cycle, q: QueueId, value: u64) -> ProduceOutcome {
        let queue = &mut self.queues[q.0];
        if queue.len() >= self.capacity {
            self.full_stalls += 1;
            return ProduceOutcome::Full;
        }
        queue.push_back(Entry {
            value,
            available_at: now + self.latency,
        });
        self.produces += 1;
        ProduceOutcome::Accepted
    }

    /// Attempts to dequeue at cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn consume(&mut self, now: Cycle, q: QueueId) -> ConsumeOutcome {
        let queue = &mut self.queues[q.0];
        match queue.front() {
            None => {
                self.empty_stalls += 1;
                ConsumeOutcome::Empty
            }
            Some(e) if e.available_at > now => {
                self.empty_stalls += 1;
                ConsumeOutcome::NotYet(e.available_at)
            }
            Some(_) => {
                let e = queue.pop_front().unwrap();
                self.consumes += 1;
                ConsumeOutcome::Ready(e.value)
            }
        }
    }

    /// Current occupancy of queue `q`.
    pub fn occupancy(&self, q: QueueId) -> usize {
        self.queues[q.0].len()
    }

    /// Whether a `produce` on `q` would stall right now (read-only peek;
    /// does not touch the stall counters).
    pub fn produce_would_block(&self, q: QueueId) -> bool {
        self.queues[q.0].len() >= self.capacity
    }

    /// Whether a `consume` on `q` at cycle `now` would stall right now
    /// (empty, or the head entry still in flight; read-only peek).
    pub fn consume_would_block(&self, now: Cycle, q: QueueId) -> bool {
        match self.queues[q.0].front() {
            None => true,
            Some(e) => e.available_at > now,
        }
    }

    /// `(produces, consumes, full_stalls, empty_stalls)` counters.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (
            self.produces,
            self.consumes,
            self.full_stalls,
            self.empty_stalls,
        )
    }

    /// Drops all queued values (used on abort recovery: in-flight VIDs and
    /// forwarded values from squashed iterations are stale).
    pub fn flush(&mut self) {
        for q in &mut self.queues {
            q.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut qs = QueueSet::new(1, 8, 0);
        for v in 0..5 {
            assert_eq!(qs.produce(0, QueueId(0), v), ProduceOutcome::Accepted);
        }
        for v in 0..5 {
            assert_eq!(qs.consume(0, QueueId(0)), ConsumeOutcome::Ready(v));
        }
    }

    #[test]
    fn capacity_limits_producers() {
        let mut qs = QueueSet::new(1, 2, 0);
        assert_eq!(qs.produce(0, QueueId(0), 1), ProduceOutcome::Accepted);
        assert_eq!(qs.produce(0, QueueId(0), 2), ProduceOutcome::Accepted);
        assert_eq!(qs.produce(0, QueueId(0), 3), ProduceOutcome::Full);
        assert_eq!(qs.consume(100, QueueId(0)), ConsumeOutcome::Ready(1));
        assert_eq!(qs.produce(100, QueueId(0), 3), ProduceOutcome::Accepted);
    }

    #[test]
    fn latency_delays_availability() {
        let mut qs = QueueSet::new(1, 2, 30);
        qs.produce(100, QueueId(0), 7);
        assert_eq!(qs.consume(100, QueueId(0)), ConsumeOutcome::NotYet(130));
        assert_eq!(qs.consume(129, QueueId(0)), ConsumeOutcome::NotYet(130));
        assert_eq!(qs.consume(130, QueueId(0)), ConsumeOutcome::Ready(7));
    }

    #[test]
    fn independent_queues() {
        let mut qs = QueueSet::new(3, 2, 0);
        qs.produce(0, QueueId(0), 1);
        qs.produce(0, QueueId(2), 3);
        assert_eq!(qs.consume(0, QueueId(1)), ConsumeOutcome::Empty);
        assert_eq!(qs.consume(0, QueueId(2)), ConsumeOutcome::Ready(3));
        assert_eq!(qs.consume(0, QueueId(0)), ConsumeOutcome::Ready(1));
    }

    #[test]
    fn flush_empties_everything() {
        let mut qs = QueueSet::new(2, 4, 0);
        qs.produce(0, QueueId(0), 1);
        qs.produce(0, QueueId(1), 2);
        qs.flush();
        assert_eq!(qs.consume(10, QueueId(0)), ConsumeOutcome::Empty);
        assert_eq!(qs.consume(10, QueueId(1)), ConsumeOutcome::Empty);
    }

    #[test]
    fn stats_count_stalls() {
        let mut qs = QueueSet::new(1, 1, 0);
        qs.consume(0, QueueId(0));
        qs.produce(0, QueueId(0), 1);
        qs.produce(0, QueueId(0), 2);
        let (p, c, fs, es) = qs.stats();
        assert_eq!((p, c, fs, es), (1, 0, 1, 1));
    }
}
