//! Determinism: two identical runs must produce identical traces and
//! statistics, byte for byte.
//!
//! The workload is shaped to drive the §8 overflow table (unbounded sets on
//! a deliberately tiny L1), whose walk order used to depend on `HashMap`
//! iteration order — the regression this test pins is that spill/writeback
//! accounting now happens in a deterministic (sorted) order.

use std::sync::Arc;

use hmtx_isa::{AluOp, Cond, ProgramBuilder, Reg};
use hmtx_machine::{Machine, RunEvent, ThreadContext};
use hmtx_types::{CacheConfig, MachineConfig, ThreadId};

/// Lines touched inside the transaction — far beyond the 8-line L1 below,
/// so most of the speculative write set spills to the overflow table.
const LINES: i64 = 64;

fn overflow_cfg() -> MachineConfig {
    let mut c = MachineConfig::test_default();
    c.num_cores = 2;
    c.unbounded_sets = true;
    c.l1 = CacheConfig {
        size_bytes: 512,
        ways: 2,
        latency: 2,
    };
    c.l2 = CacheConfig {
        size_bytes: 1024,
        ways: 2,
        latency: 40,
    };
    c
}

/// One transaction that writes `LINES` distinct lines and then reads them
/// all back: the writes overflow the L1 into the §8 table, and the reads
/// pull spilled versions back in (spills *and* fills on one run).
fn spilling_program() -> Arc<hmtx_isa::Program> {
    let mut b = ProgramBuilder::new();
    let handler = b.new_label();
    b.init_mtx(handler);
    b.li(Reg::R3, 1);
    b.begin_mtx(Reg::R3);
    b.li(Reg::R31, 0x1_0000);
    b.li(Reg::R0, 0);
    let wr = b.new_label();
    b.bind(wr).unwrap();
    b.alu(AluOp::Shl, Reg::R1, Reg::R0, 6i64);
    b.alu(AluOp::Add, Reg::R1, Reg::R1, Reg::R31);
    b.store(Reg::R0, Reg::R1, 0);
    b.alu(AluOp::Add, Reg::R0, Reg::R0, 1i64);
    b.branch_imm(Cond::Lt, Reg::R0, LINES, wr);
    b.li(Reg::R0, 0);
    let rd = b.new_label();
    b.bind(rd).unwrap();
    b.alu(AluOp::Shl, Reg::R1, Reg::R0, 6i64);
    b.alu(AluOp::Add, Reg::R1, Reg::R1, Reg::R31);
    b.load(Reg::R2, Reg::R1, 0);
    b.alu(AluOp::Add, Reg::R0, Reg::R0, 1i64);
    b.branch_imm(Cond::Lt, Reg::R0, LINES, rd);
    b.commit_mtx(Reg::R3);
    b.out(Reg::R2);
    b.halt();
    b.bind(handler).unwrap();
    b.halt();
    Arc::new(b.build().unwrap())
}

/// A non-speculative neighbour on core 1 so the run also exercises
/// cross-core scheduling, on disjoint lines (no misspeculation).
fn neighbour_program() -> Arc<hmtx_isa::Program> {
    let mut b = ProgramBuilder::new();
    b.li(Reg::R31, 0x8_0000);
    b.li(Reg::R0, 0);
    let top = b.new_label();
    b.bind(top).unwrap();
    b.alu(AluOp::Shl, Reg::R1, Reg::R0, 6i64);
    b.alu(AluOp::Add, Reg::R1, Reg::R1, Reg::R31);
    b.store(Reg::R0, Reg::R1, 0);
    b.alu(AluOp::Add, Reg::R0, Reg::R0, 1i64);
    b.branch_imm(Cond::Lt, Reg::R0, 32, top);
    b.halt();
    Arc::new(b.build().unwrap())
}

/// Runs the workload once and renders everything order-sensitive about it.
fn run_once() -> (Vec<String>, String, String, Vec<u64>, u64, u64) {
    let mut m = Machine::new(overflow_cfg());
    m.mem_mut().set_trace_capacity(1 << 16);
    m.load_thread(0, ThreadContext::new(ThreadId(0), spilling_program()));
    m.load_thread(1, ThreadContext::new(ThreadId(1), neighbour_program()));
    assert_eq!(m.run(1_000_000).unwrap(), RunEvent::AllHalted);
    let trace: Vec<String> = m
        .mem_mut()
        .take_trace()
        .iter()
        .map(|e| format!("{e:?}"))
        .collect();
    let spills = m.mem().stats().unbounded_spills;
    let fills = m.mem().stats().unbounded_fills;
    let mem_stats = format!("{:?}", m.mem().stats());
    let machine_stats = format!("{:?}", m.stats());
    let output = m.committed_output().to_vec();
    (trace, mem_stats, machine_stats, output, spills, fills)
}

#[test]
fn identical_runs_produce_identical_traces_and_stats() {
    let a = run_once();
    let b = run_once();
    assert!(
        a.4 > 0,
        "workload never spilled to the overflow table (spills = {})",
        a.4
    );
    assert!(a.5 > 0, "workload never refilled a spilled version");
    assert_eq!(a.0, b.0, "trace events diverged between identical runs");
    assert_eq!(a.1, b.1, "memory stats diverged between identical runs");
    assert_eq!(a.2, b.2, "machine stats diverged between identical runs");
    assert_eq!(a.3, b.3, "committed output diverged between identical runs");
}
