//! Differential testing: the full machine simulator and the flat reference
//! interpreter must agree on the architectural semantics of every
//! single-threaded, non-transactional program.

use std::sync::Arc;

use hmtx_isa::interp::run_reference;
use hmtx_isa::{AluOp, Instr, Operand, Program, ProgramBuilder, Reg};
use hmtx_machine::{Machine, RunEvent, ThreadContext};
use hmtx_types::{Addr, MachineConfig, ThreadId, Vid};
use proptest::prelude::*;

/// Runs a program on the machine and extracts `(regs, output, mem words)`.
fn run_machine(p: &Program, addrs: &[u64]) -> ([u64; 32], Vec<u64>, Vec<u64>) {
    let mut m = Machine::new(MachineConfig::test_default());
    m.load_thread(0, ThreadContext::new(ThreadId(0), Arc::new(p.clone())));
    assert_eq!(m.run(200_000).unwrap(), RunEvent::AllHalted);
    let regs = m.thread(0).unwrap().regs;
    let output = m.committed_output().to_vec();
    m.mem_mut().drain_committed().unwrap();
    let words = addrs
        .iter()
        .map(|a| m.mem().memory().read_word(Addr(*a)))
        .collect();
    (regs, output, words)
}

/// Scratch region the generated programs address.
const BASE: u64 = 0x1_0000;
const WORDS: u64 = 64;

fn arb_reg() -> impl Strategy<Value = Reg> {
    // r31 is the reserved base pointer of the generated programs.
    (0usize..31).prop_map(Reg::from_index)
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::SltU),
        Just(AluOp::Slt),
        Just(AluOp::Seq),
    ]
}

fn arb_straightline_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_reg(), any::<i64>()).prop_map(|(rd, imm)| Instr::Li { rd, imm }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Instr::Mov { rd, rs }),
        (arb_alu(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs, rt)| Instr::Alu {
            op,
            rd,
            rs,
            rhs: Operand::Reg(rt)
        }),
        (arb_alu(), arb_reg(), arb_reg(), -99i64..99).prop_map(|(op, rd, rs, i)| Instr::Alu {
            op,
            rd,
            rs,
            rhs: Operand::Imm(i)
        }),
        (arb_reg(), 0i64..WORDS as i64).prop_map(|(rd, k)| Instr::Load {
            rd,
            base: Reg::R31,
            disp: k * 8
        }),
        (arb_reg(), 0i64..WORDS as i64).prop_map(|(rs, k)| Instr::Store {
            rs,
            base: Reg::R31,
            disp: k * 8
        }),
        arb_reg().prop_map(|rs| Instr::Out { rs }),
        (1i64..100).prop_map(|n| Instr::Compute {
            amount: Operand::Imm(n)
        }),
    ]
}

fn build_program(instrs: Vec<Instr>) -> Program {
    let mut b = ProgramBuilder::new();
    b.li(Reg::R31, BASE as i64);
    for i in instrs {
        b.raw(i);
    }
    b.halt();
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn machine_agrees_with_reference_on_straightline_programs(
        instrs in prop::collection::vec(arb_straightline_instr(), 1..60)
    ) {
        let p = build_program(instrs);
        let addrs: Vec<u64> = (0..WORDS).map(|k| BASE + k * 8).collect();
        let (regs, output, words) = run_machine(&p, &addrs);
        let r = run_reference(&p, 200_000).unwrap();
        prop_assert_eq!(regs, r.regs);
        prop_assert_eq!(output, r.output);
        for (k, addr) in addrs.iter().enumerate() {
            prop_assert_eq!(words[k], *r.memory.get(addr).unwrap_or(&0), "word {}", k);
        }
    }
}

#[test]
fn machine_agrees_with_reference_on_branchy_kernels() {
    // Hand-written kernels with loops and data-dependent branches (the
    // random generator is straight-line so branch targets stay valid).
    let sources = [
        r"
            li r1, 0
            li r2, 1
        loop:
            mul r2, r2, 3
            rem r2, r2, 1000003
            add r1, r1, 1
            bltu r1, 500, loop
            out r2
            halt
        ",
        r"
            li r31, 0x10000
            li r1, 0
        fill:
            shl r3, r1, 3
            add r3, r3, r31
            mul r4, r1, r1
            st r4, (r3)
            add r1, r1, 1
            bltu r1, 50, fill
            li r1, 0
            li r5, 0
        sum:
            shl r3, r1, 3
            add r3, r3, r31
            ld r4, (r3)
            add r5, r5, r4
            add r1, r1, 2
            bltu r1, 50, sum
            out r5
            halt
        ",
        r"
            li r1, 0x9E3779B9
            li r2, 0
        mix:
            shl r3, r1, 13
            xor r1, r1, r3
            shr r3, r1, 7
            xor r1, r1, r3
            and r4, r1, 1
            beq r4, 0, even
            add r2, r2, 1
        even:
            add r5, r2, 0
            bltu r2, 64, mix
            out r1
            out r2
            halt
        ",
    ];
    for (i, src) in sources.iter().enumerate() {
        let p = hmtx_isa::assemble(src).unwrap();
        let (regs, output, _) = run_machine(&p, &[]);
        let r = run_reference(&p, 1_000_000).unwrap();
        assert_eq!(regs, r.regs, "kernel {i} registers");
        assert_eq!(output, r.output, "kernel {i} output");
    }
}

#[test]
fn machine_memory_view_matches_reference_after_transactions() {
    // A transactional program and its non-transactional twin must leave the
    // same committed memory (transactions are invisible when they commit).
    let tx = hmtx_isa::assemble(
        r"
            li r31, 0x10000
            li r10, 1
            beginMTX r10
            li r1, 7
            st r1, (r31)
            st r1, 64(r31)
            commitMTX r10
            li r10, 2
            beginMTX r10
            ld r2, (r31)
            add r2, r2, 1
            st r2, 128(r31)
            commitMTX r10
            halt
        ",
    )
    .unwrap();
    let plain = hmtx_isa::assemble(
        r"
            li r31, 0x10000
            li r1, 7
            st r1, (r31)
            st r1, 64(r31)
            ld r2, (r31)
            add r2, r2, 1
            st r2, 128(r31)
            halt
        ",
    )
    .unwrap();
    let addrs = [0x10000u64, 0x10040, 0x10080];
    let (_, _, tx_words) = run_machine(&tx, &addrs);
    let r = run_reference(&plain, 1_000).unwrap();
    for (k, addr) in addrs.iter().enumerate() {
        assert_eq!(tx_words[k], *r.memory.get(addr).unwrap_or(&0), "word {k}");
    }
    let _ = Vid(0);
}
