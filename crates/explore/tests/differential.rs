//! Differential test: `hmtx-explore`'s in-process schedule replay and
//! `hmtx-run --replay` must agree on every explored schedule.
//!
//! Both sides build the machine the same way (quick configuration, one
//! core per thread with a floor of two, same budget) and replay the same
//! divergence list through [`ReplayPolicy`]; the test drives every
//! schedule the explorer enumerates at preemption bound 2 through both
//! paths and compares outcome, completion cycle, committed output, and the
//! committed view of every tracked word.

use std::sync::Arc;

use hmtx_explore::mexplore::{run_one, MachineSpec};
use hmtx_explore::{asm_kernels, seed, AsmKernel};
use hmtx_isa::assemble;
use hmtx_machine::{Machine, ReplayPolicy, RunEvent, ScheduleSeed, ThreadContext};
use hmtx_types::{Addr, MachineConfig, ThreadId, Vid};

const BUDGET: u64 = 50_000;

/// Replays one divergence list in-process, reporting the same fields
/// `hmtx::cli::run` reports.
fn replay_locally(kernel: &AsmKernel, picks: &[(u64, usize)]) -> (String, u64, Vec<u64>, Vec<(u64, u64)>) {
    let mut cfg = MachineConfig::test_default();
    cfg.num_cores = kernel.threads.len().max(2);
    let mut machine = Machine::new(cfg);
    for (addr, value) in &kernel.init {
        machine.mem_mut().memory_mut().write_word(Addr(*addr), *value);
    }
    for (i, text) in kernel.threads.iter().enumerate() {
        let program = Arc::new(assemble(text).unwrap());
        machine.load_thread(i, ThreadContext::new(ThreadId(i), program));
    }
    let mut policy = ReplayPolicy::new(picks);
    let outcome = match machine.run_with_policy(BUDGET, &mut policy).unwrap() {
        RunEvent::AllHalted => "all threads halted".to_string(),
        RunEvent::Misspeculation { cause, cycle } => {
            format!("misspeculation at cycle {cycle}: {cause:?}")
        }
        RunEvent::BudgetExhausted => format!("instruction budget ({BUDGET}) exhausted"),
    };
    let dumps = kernel
        .tracked
        .iter()
        .map(|a| (*a, machine.mem().peek_word(Addr(*a), Vid(0))))
        .collect();
    (
        outcome,
        machine.cycles(),
        machine.committed_output().to_vec(),
        dumps,
    )
}

/// Collects every divergence list the explorer would visit at the given
/// preemption bound (breadth-first, like `explore_spec`).
fn explored_schedules(kernel: &AsmKernel, preemptions: usize) -> Vec<Vec<(u64, usize)>> {
    let spec = MachineSpec::from_kernel(kernel, BUDGET, None).unwrap();
    let oracle = spec.oracle().unwrap();
    let mut queue = vec![Vec::new()];
    let mut seen = Vec::new();
    while let Some(picks) = queue.pop() {
        let (outcome, branches) = run_one(&spec, &picks, Some(&oracle), true);
        assert!(
            outcome.failure.is_none(),
            "{}: {:?}",
            kernel.name,
            outcome.failure
        );
        if picks.len() < preemptions {
            for (step, alts) in &branches {
                for &core in alts {
                    let mut d = picks.clone();
                    d.push((*step, core));
                    queue.push(d);
                }
            }
        }
        seen.push(picks);
    }
    seen
}

#[test]
fn explorer_and_cli_replay_agree_on_every_schedule() {
    let dir = std::env::temp_dir().join(format!("hmtx_differential_{}", std::process::id()));
    for kernel in asm_kernels() {
        let schedules = explored_schedules(&kernel, 2);
        assert!(
            schedules.len() > 1,
            "{}: expected branching, got {} schedule(s)",
            kernel.name,
            schedules.len()
        );
        for (i, picks) in schedules.iter().enumerate() {
            let stored = ScheduleSeed {
                kind: "machine".into(),
                name: kernel.name.to_string(),
                seed_bug: None,
                picks: picks.clone(),
                order: Vec::new(),
                note: "differential test".into(),
            };
            let path = seed::write_seed(&dir, &format!("{}_{i}", kernel.name), &stored).unwrap();

            let opts = hmtx::cli::Options {
                programs: kernel.threads.iter().map(|t| t.to_string()).collect(),
                quick: true,
                replay: Some(path.display().to_string()),
                dump: kernel.tracked.clone(),
                budget: BUDGET,
                ..hmtx::cli::Options::default()
            };
            let cli = hmtx::cli::run(&opts).unwrap();
            let (outcome, cycles, outputs, dumps) = replay_locally(&kernel, picks);
            assert_eq!(cli.outcome, outcome, "{} picks {picks:?}", kernel.name);
            assert_eq!(cli.cycles, cycles, "{} picks {picks:?}", kernel.name);
            assert_eq!(cli.outputs, outputs, "{} picks {picks:?}", kernel.name);
            assert_eq!(cli.dumps, dumps, "{} picks {picks:?}", kernel.name);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
