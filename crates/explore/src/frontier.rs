//! Deterministic parallel execution of exploration runs.
//!
//! Modeled on `hmtx_bench::runner`'s rule: fan work out across host
//! threads, but keep every observable result in a deterministic order so
//! output is byte-identical for any `--jobs N`. Work is processed in
//! fixed-size batches; results are collected by batch index, and children
//! produced by a batch are appended to the queue in index order before the
//! next batch starts.

use std::collections::VecDeque;

/// Maps `f` over `items` using up to `jobs` scoped worker threads.
/// Results come back in input order regardless of completion order.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(jobs);
    let f = &f;
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("exploration worker panicked"));
        }
    });
    out
}

/// Processes a growing frontier of exploration items: each item runs to a
/// result plus a list of child items. Batches of up to `jobs` items run
/// concurrently; children append in item order, so the sequence of results
/// is identical for any `jobs`. Stops once `cap` results exist (returning
/// `false` as the second element) or the frontier drains (`true`:
/// exhausted).
pub fn run_frontier<T, R, F>(roots: Vec<T>, jobs: usize, cap: usize, run: F) -> (Vec<R>, bool)
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> (R, Vec<T>) + Sync,
{
    let mut queue: VecDeque<T> = roots.into();
    let mut results = Vec::new();
    while !queue.is_empty() {
        if results.len() >= cap {
            return (results, false);
        }
        let batch_len = queue.len().min(jobs.max(1)).min(cap - results.len());
        let batch: Vec<T> = queue.drain(..batch_len).collect();
        let batch_out = parallel_map(&batch, jobs, |item| run(item));
        for (r, children) in batch_out {
            results.push(r);
            for c in children {
                queue.push_back(c);
            }
        }
    }
    (results, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = parallel_map(&items, 1, |x| x * 3);
        let fanned = parallel_map(&items, 8, |x| x * 3);
        assert_eq!(serial, fanned);
        assert_eq!(serial[99], 297);
    }

    #[test]
    fn frontier_is_deterministic_across_job_counts() {
        // Each item `n` yields children `10n+1..10n+3` below a depth cutoff.
        let run = |&n: &u64| {
            let children = if n < 100 {
                vec![n * 10 + 1, n * 10 + 2, n * 10 + 3]
            } else {
                vec![]
            };
            (n, children)
        };
        let (a, ea) = run_frontier(vec![1, 2], 1, usize::MAX, run);
        let (b, eb) = run_frontier(vec![1, 2], 7, usize::MAX, run);
        assert_eq!(a, b);
        assert!(ea && eb);
        let (c, ec) = run_frontier(vec![1, 2], 4, 5, run);
        assert_eq!(c, a[..5].to_vec());
        assert!(!ec, "cap cuts enumeration short");
    }
}
