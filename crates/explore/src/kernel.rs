//! The kernels the explorer enumerates schedules over.
//!
//! Two granularities:
//!
//! * [`OpKernel`] — a transaction is a fixed list of labeled loads/stores
//!   driven straight into the [`hmtx_core::MemorySystem`] (the same model
//!   as `tests/proptest_serializability.rs`). The interleaving space is
//!   fully static, so schedules are enumerable without execution and the
//!   reference is a trivial serial last-writer-wins replay.
//! * [`AsmKernel`] — whole guest programs on the full machine, scheduled
//!   through the [`hmtx_machine::SchedulePolicy`] seam and checked against
//!   the [`hmtx_isa::run_serial_tm`] sequential TM oracle.

use hmtx_types::Addr;

/// One memory operation of an [`OpKernel`] transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSpec {
    /// Issuing core.
    pub core: usize,
    /// Word address.
    pub addr: u64,
    /// `Some(value)` for a store, `None` for a load.
    pub write: Option<u64>,
}

impl OpSpec {
    /// Whether two ops can be order-sensitive: same line, at least one
    /// store (the relation the DPOR-lite reduction keys on).
    pub fn conflicts_with(&self, other: &OpSpec) -> bool {
        Addr(self.addr).line() == Addr(other.addr).line()
            && (self.write.is_some() || other.write.is_some())
    }
}

/// An op-level kernel: transaction `i` carries VID `i + 1` and commits in
/// VID order as soon as its ops (and all earlier transactions) are done.
#[derive(Debug, Clone)]
pub struct OpKernel {
    /// Kernel name (corpus seeds reference it).
    pub name: &'static str,
    /// Ops per transaction, in program order.
    pub txs: Vec<Vec<OpSpec>>,
    /// Word addresses the oracle comparison checks.
    pub tracked: Vec<u64>,
}

impl OpKernel {
    /// Total op count.
    pub fn len(&self) -> usize {
        self.txs.iter().map(Vec::len).sum()
    }

    /// Whether the kernel has no ops.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolves a global op id (transaction-major) to `(tx, op)`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn locate(&self, id: usize) -> (usize, OpSpec) {
        let mut rest = id;
        for (tx, ops) in self.txs.iter().enumerate() {
            if rest < ops.len() {
                return (tx, ops[rest]);
            }
            rest -= ops.len();
        }
        panic!("op id {id} out of range for kernel {}", self.name);
    }
}

/// A machine-level kernel: assembly programs, one per thread/core.
#[derive(Debug, Clone)]
pub struct AsmKernel {
    /// Kernel name.
    pub name: &'static str,
    /// Assembly source, one program per thread (thread `i` on core `i`).
    pub threads: Vec<&'static str>,
    /// Initial memory words `(addr, value)`.
    pub init: Vec<(u64, u64)>,
    /// Word addresses compared against the oracle at each commit and at
    /// the end of halting runs.
    pub tracked: Vec<u64>,
}

/// Shared addresses used by the built-in kernels (same region as the
/// pinned PR 1 counterexample).
pub const ADDR_A: u64 = 0x4_0000;
/// Second shared line.
pub const ADDR_B: u64 = 0x4_0040;
/// Third shared line.
pub const ADDR_C: u64 = 0x4_0080;

/// The value the pinned PR 1 counterexample stored.
pub const BIG: u64 = 14448302813484138936;

/// The built-in op-level kernels.
pub fn op_kernels() -> Vec<OpKernel> {
    let r = |core, addr| OpSpec {
        core,
        addr,
        write: None,
    };
    let w = |core, addr, value| OpSpec {
        core,
        addr,
        write: Some(value),
    };
    vec![
        // The pinned PR 1 counterexample schedule's ops, grouped by
        // transaction: a version written by tx 1 migrates between caches
        // through speculative reads, then tx 2 writes the same line last.
        // Clean on the real protocol under every interleaving; under
        // `--seed-bug stale-migration-replica` the migration leaves a live
        // duplicate and the invariant scan fires.
        OpKernel {
            name: "migrated_line",
            txs: vec![
                vec![w(1, ADDR_A, 0), r(0, ADDR_A), r(3, ADDR_A)],
                vec![r(1, ADDR_B), r(0, ADDR_B), r(2, ADDR_B), w(3, ADDR_A, BIG)],
            ],
            tracked: vec![ADDR_A, ADDR_B],
        },
        // Forwarding chain: each transaction reads what the previous one
        // wrote (uncommitted value forwarding, §3 property 2) and writes
        // the next line.
        OpKernel {
            name: "forwarding_chain",
            txs: vec![
                vec![w(0, ADDR_A, 11)],
                vec![r(1, ADDR_A), w(1, ADDR_B, 22)],
                vec![r(2, ADDR_B), w(2, ADDR_C, 33)],
            ],
            tracked: vec![ADDR_A, ADDR_B, ADDR_C],
        },
        // Write skew: both transactions read both lines and each writes
        // one of them; later-VID reads of an earlier-VID write target force
        // the §4.2/4.3 version-splitting paths, and some interleavings
        // misspeculate (an earlier VID writing under a later VID's read).
        OpKernel {
            name: "write_skew",
            txs: vec![
                vec![r(0, ADDR_A), r(0, ADDR_B), w(0, ADDR_A, 1)],
                vec![r(1, ADDR_A), r(1, ADDR_B), w(1, ADDR_B, 2)],
            ],
            tracked: vec![ADDR_A, ADDR_B],
        },
    ]
}

/// Base value of the model checker's write payloads: transaction `vid`
/// stores `MODEL_VALUE_BASE + vid` into every line it writes. The payload
/// depends only on the VID — never on the line or the core — which is what
/// makes the checker's line-permutation symmetry reduction sound.
pub const MODEL_VALUE_BASE: u64 = 0xD000;

/// Builds the model checker's kernel for a [`hmtx_types::ModelCheckConfig`]:
/// `2^vid_bits - 1` transactions, where transaction `t` (VID `t + 1`) runs
/// on core `t % cores` and, for each of the `lines` lines in ascending
/// order, reads it and then writes `MODEL_VALUE_BASE + vid`. Every pair of
/// transactions conflicts on every line, so the interleaving space
/// exercises version splitting, uncommitted value forwarding, migration,
/// and misspeculation.
///
/// The kernel's name is [`hmtx_types::ModelCheckConfig::kernel_name`], so
/// counterexample seeds lowered from the checker carry everything a replay
/// needs to reconstruct the kernel (see [`resolve_kernel`]).
pub fn model_kernel(cfg: &hmtx_types::ModelCheckConfig) -> OpKernel {
    assert!(
        cfg.cores >= 1 && cfg.lines >= 1 && cfg.vid_bits >= 1,
        "degenerate model"
    );
    let tracked: Vec<u64> = (0..cfg.lines).map(|l| ADDR_A + 0x40 * l as u64).collect();
    let txs: Vec<Vec<OpSpec>> = (0..cfg.max_vid() as usize)
        .map(|t| {
            let core = t % cfg.cores;
            let vid = t as u64 + 1;
            tracked
                .iter()
                .flat_map(|&addr| {
                    [
                        OpSpec {
                            core,
                            addr,
                            write: None,
                        },
                        OpSpec {
                            core,
                            addr,
                            write: Some(MODEL_VALUE_BASE + vid),
                        },
                    ]
                })
                .collect()
        })
        .collect();
    OpKernel {
        name: Box::leak(cfg.kernel_name().into_boxed_str()),
        txs,
        tracked,
    }
}

/// Resolves an op-kernel by name: a built-in from [`op_kernels`], or a
/// model-checker kernel (`model-cN-lK-vV`) rebuilt from its encoded
/// configuration. Returns `None` for unknown names.
pub fn resolve_kernel(name: &str) -> Option<OpKernel> {
    if let Some(k) = op_kernels().into_iter().find(|k| k.name == name) {
        return Some(k);
    }
    let cfg = hmtx_types::ModelCheckConfig::parse_kernel_name(name)?;
    Some(model_kernel(&cfg))
}

/// The built-in machine-level kernels. Both are two-thread MTX kernels with
/// commit order enforced by queue tokens under **every** schedule (the
/// machine faults on out-of-order `commitMTX`, so kernels must synchronize
/// commits the way generated runtime code does).
pub fn asm_kernels() -> Vec<AsmKernel> {
    vec![
        // Transactional hand-off: tx 1 stores A and signals; tx 2 reads A
        // (possibly through uncommitted value forwarding, before tx 1
        // commits), derives B from it, and commits second. Every schedule
        // must commit both transactions with A=7, B=8, output [8].
        AsmKernel {
            name: "handoff",
            threads: vec![
                r"
                    li r10, 1
                    beginMTX r10
                    li r1, 0x40000
                    li r2, 7
                    st r2, (r1)
                    li r3, 1
                    produce q0, r3
                    commitMTX r10
                    li r3, 2
                    produce q1, r3
                    halt
                ",
                r"
                    consume r9, q0
                    li r10, 2
                    beginMTX r10
                    li r1, 0x40000
                    ld r4, (r1)
                    li r5, 0x40040
                    add r6, r4, 1
                    st r6, (r5)
                    consume r9, q1
                    commitMTX r10
                    out r6
                    halt
                ",
            ],
            init: Vec::new(),
            tracked: vec![ADDR_A, ADDR_B],
        },
        // Race detection: tx 2 reads A with *no* ordering against tx 1's
        // store of A. Schedules where the read lands first must
        // misspeculate (a VID-1 write under a VID-2 read mark, §4.4);
        // schedules where the store lands first must forward 5 and commit.
        // Either way no invariant or oracle violation is allowed.
        AsmKernel {
            name: "race_detect",
            threads: vec![
                r"
                    li r10, 1
                    beginMTX r10
                    li r1, 0x40000
                    li r2, 5
                    st r2, (r1)
                    li r3, 1
                    produce q0, r3
                    commitMTX r10
                    halt
                ",
                r"
                    li r10, 2
                    beginMTX r10
                    li r1, 0x40000
                    ld r4, (r1)
                    li r5, 0x40040
                    st r4, (r5)
                    consume r9, q0
                    commitMTX r10
                    out r4
                    halt
                ",
            ],
            init: Vec::new(),
            tracked: vec![ADDR_A, ADDR_B],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_ids_are_transaction_major() {
        let k = &op_kernels()[0];
        assert_eq!(k.len(), 7);
        assert_eq!(k.locate(0).0, 0);
        assert_eq!(k.locate(2).0, 0);
        assert_eq!(k.locate(3).0, 1);
        assert_eq!(k.locate(6), (1, k.txs[1][3]));
    }

    #[test]
    fn conflict_requires_same_line_and_a_write() {
        let w = OpSpec {
            core: 0,
            addr: ADDR_A,
            write: Some(1),
        };
        let r_same = OpSpec {
            core: 1,
            addr: ADDR_A + 8,
            write: None,
        };
        let r_other = OpSpec {
            core: 1,
            addr: ADDR_B,
            write: None,
        };
        assert!(w.conflicts_with(&r_same), "same line, one write");
        assert!(!w.conflicts_with(&r_other));
        assert!(!r_same.conflicts_with(&r_same), "two reads commute");
    }

    #[test]
    fn builtin_kernels_assemble() {
        for k in asm_kernels() {
            for t in &k.threads {
                hmtx_isa::assemble(t).unwrap_or_else(|e| panic!("{}: {e}", k.name));
            }
        }
    }
}
