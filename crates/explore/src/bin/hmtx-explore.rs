//! `hmtx-explore`: systematic schedule exploration with a serializability
//! oracle.
//!
//! Enumerates interleavings of small MTX kernels (op-level and full-machine)
//! under a preemption bound, checks protocol invariants plus a sequential TM
//! oracle at every group commit, greedily shrinks failing schedules, and
//! writes them to the replayable corpus (`tests/corpus/`, replayed by
//! `hmtx-run --replay` and `tests/explore_corpus.rs`). Also drives bounded
//! exploration of the 8 benchmark workloads' generated parallel code
//! (invariants + termination + sequential-output reference).
//!
//! ```text
//! hmtx-explore --list
//! hmtx-explore --all-kernels --preemptions 3 --expect-exhausted
//! hmtx-explore --kernel migrated_line --seed-bug stale-migration-replica \
//!     --shrink --expect-failure --max-shrunk-len 7
//! hmtx-explore --workload 052.alvinn --bound 8 --json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use hmtx_explore::{asm_kernels, mexplore, op_kernels, opexplore, seed, shrink};
use hmtx_machine::ScheduleSeed;
use hmtx_types::{Json, SeedBug, SimError};
use hmtx_workloads::{suite, Scale};

#[derive(Debug)]
struct Opts {
    list: bool,
    kernels: Vec<String>,
    all_kernels: bool,
    workloads: Vec<String>,
    all_workloads: bool,
    paradigm: Option<hmtx_runtime::Paradigm>,
    preemptions: u32,
    bound: usize,
    jobs: usize,
    json: bool,
    no_reduce: bool,
    seed_bug: Option<SeedBug>,
    shrink: bool,
    corpus_dir: PathBuf,
    expect_failure: bool,
    expect_exhausted: bool,
    max_shrunk_len: Option<usize>,
    budget: Option<u64>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            list: false,
            kernels: Vec::new(),
            all_kernels: false,
            workloads: Vec::new(),
            all_workloads: false,
            paradigm: None,
            preemptions: 3,
            bound: 100_000,
            jobs: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            json: false,
            no_reduce: false,
            seed_bug: None,
            shrink: false,
            corpus_dir: PathBuf::from("tests/corpus"),
            expect_failure: false,
            expect_exhausted: false,
            max_shrunk_len: None,
            budget: None,
        }
    }
}

const USAGE: &str = "usage: hmtx-explore [--list] [--kernel NAME]... [--all-kernels] \
    [--workload NAME]... [--all-workloads] [--paradigm P] [--preemptions N] \
    [--bound N] [--jobs N] [--json] [--no-reduce] [--seed-bug NAME] [--shrink] \
    [--corpus-dir DIR] [--expect-failure] [--expect-exhausted] \
    [--max-shrunk-len N] [--budget N]";

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Opts, SimError> {
    let mut opts = Opts::default();
    let mut it = args.into_iter();
    let bad = |msg: String| SimError::BadProgram(msg);
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next()
            .ok_or_else(|| SimError::BadProgram(format!("{flag} needs a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => opts.list = true,
            "--kernel" => opts.kernels.push(need(&mut it, "--kernel")?),
            "--all-kernels" => opts.all_kernels = true,
            "--workload" => opts.workloads.push(need(&mut it, "--workload")?),
            "--all-workloads" => opts.all_workloads = true,
            "--paradigm" => {
                let v = need(&mut it, "--paradigm")?;
                opts.paradigm = Some(match v.as_str() {
                    "sequential" => hmtx_runtime::Paradigm::Sequential,
                    "doall" => hmtx_runtime::Paradigm::Doall,
                    "doacross" => hmtx_runtime::Paradigm::Doacross,
                    "dswp" => hmtx_runtime::Paradigm::Dswp,
                    "ps-dswp" | "psdswp" => hmtx_runtime::Paradigm::PsDswp,
                    _ => return Err(bad(format!("unknown paradigm `{v}`"))),
                });
            }
            "--preemptions" => {
                let v = need(&mut it, "--preemptions")?;
                opts.preemptions = v
                    .parse()
                    .map_err(|_| bad(format!("bad preemption bound `{v}`")))?;
            }
            "--bound" => {
                let v = need(&mut it, "--bound")?;
                opts.bound = v.parse().map_err(|_| bad(format!("bad bound `{v}`")))?;
            }
            "--jobs" => {
                let v = need(&mut it, "--jobs")?;
                opts.jobs = v.parse().map_err(|_| bad(format!("bad job count `{v}`")))?;
            }
            "--json" => opts.json = true,
            "--no-reduce" => opts.no_reduce = true,
            "--seed-bug" => {
                let v = need(&mut it, "--seed-bug")?;
                opts.seed_bug =
                    Some(SeedBug::from_name(&v).ok_or_else(|| bad(format!(
                        "unknown seed bug `{v}` (try `stale-migration-replica`)"
                    )))?);
            }
            "--shrink" => opts.shrink = true,
            "--corpus-dir" => opts.corpus_dir = PathBuf::from(need(&mut it, "--corpus-dir")?),
            "--expect-failure" => opts.expect_failure = true,
            "--expect-exhausted" => opts.expect_exhausted = true,
            "--max-shrunk-len" => {
                let v = need(&mut it, "--max-shrunk-len")?;
                opts.max_shrunk_len =
                    Some(v.parse().map_err(|_| bad(format!("bad length `{v}`")))?);
            }
            "--budget" => {
                let v = need(&mut it, "--budget")?;
                opts.budget = Some(v.parse().map_err(|_| bad(format!("bad budget `{v}`")))?);
            }
            other => return Err(bad(format!("unknown argument `{other}`\n{USAGE}"))),
        }
    }
    Ok(opts)
}

/// One explored target's result, normalized across the three modes.
struct TargetResult {
    target: String,
    mode: &'static str,
    runs: usize,
    exhausted: bool,
    misspecs: usize,
    failures: usize,
    first_failure: Option<String>,
    shrunk: Option<(usize, PathBuf)>,
}

impl TargetResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("target", Json::Str(self.target.clone())),
            ("mode", Json::Str(self.mode.to_string())),
            ("runs", Json::Uint(self.runs as u64)),
            ("exhausted", Json::Bool(self.exhausted)),
            ("misspecs", Json::Uint(self.misspecs as u64)),
            ("failures", Json::Uint(self.failures as u64)),
            (
                "first_failure",
                self.first_failure
                    .as_ref()
                    .map_or(Json::Null, |s| Json::Str(s.clone())),
            ),
            (
                "shrunk",
                self.shrunk.as_ref().map_or(Json::Null, |(len, path)| {
                    Json::obj(vec![
                        ("len", Json::Uint(*len as u64)),
                        ("seed", Json::Str(path.display().to_string())),
                    ])
                }),
            ),
        ])
    }
}

fn corpus_stem(kernel: &str, seed_bug: Option<SeedBug>) -> String {
    match seed_bug {
        Some(bug) => format!("regression_{}", bug.name().replace('-', "_")),
        None => format!("regression_{kernel}"),
    }
}

fn explore_op_kernel(
    opts: &Opts,
    kernel: &hmtx_explore::OpKernel,
) -> Result<TargetResult, SimError> {
    let report = opexplore::explore(
        kernel,
        opts.preemptions,
        !opts.no_reduce,
        opts.bound,
        opts.seed_bug,
        opts.jobs,
    );
    let mut result = TargetResult {
        target: kernel.name.to_string(),
        mode: "ops",
        runs: report.runs,
        exhausted: report.exhausted,
        misspecs: report.misspecs,
        failures: report.failures.len(),
        first_failure: report.failures.first().map(|f| {
            format!("{} (order {:?})", f.failure.as_ref().unwrap(), f.order)
        }),
        shrunk: None,
    };
    if opts.shrink {
        if let Some(first) = report.failures.first() {
            let shrunk = shrink::shrink_ops(kernel, &first.order, opts.seed_bug)
                .expect("reported failure must reproduce");
            let stored = ScheduleSeed {
                kind: "ops".into(),
                name: kernel.name.to_string(),
                seed_bug: opts.seed_bug.map(|b| b.name().to_string()),
                picks: Vec::new(),
                order: shrunk.order.clone(),
                note: format!(
                    "pinned by hmtx-explore: {} ({} shrink attempts)",
                    shrunk.failure, shrunk.attempts
                ),
            };
            let path = seed::write_seed(&opts.corpus_dir, &corpus_stem(kernel.name, opts.seed_bug), &stored)
                .map_err(|e| SimError::BadProgram(format!("writing corpus seed: {e}")))?;
            result.shrunk = Some((shrunk.order.len(), path));
        }
    }
    Ok(result)
}

fn explore_asm_kernel(
    opts: &Opts,
    kernel: &hmtx_explore::AsmKernel,
) -> Result<TargetResult, SimError> {
    let budget = opts.budget.unwrap_or(50_000);
    let spec = mexplore::MachineSpec::from_kernel(kernel, budget, opts.seed_bug)?;
    let oracle = spec.oracle()?;
    let report = mexplore::explore_spec(
        &spec,
        Some(&oracle),
        opts.preemptions,
        !opts.no_reduce,
        opts.bound,
        opts.jobs,
    );
    let mut result = TargetResult {
        target: kernel.name.to_string(),
        mode: "machine",
        runs: report.runs,
        exhausted: report.exhausted,
        misspecs: report.misspecs,
        failures: report.failures.len(),
        first_failure: report.failures.first().map(|f| {
            format!("{} (picks {:?})", f.failure.as_ref().unwrap(), f.picks)
        }),
        shrunk: None,
    };
    if opts.shrink {
        if let Some(first) = report.failures.first() {
            let kind = first.failure.as_ref().unwrap().kind;
            let (kept, _attempts) = shrink::shrink_items(&first.picks, |candidate| {
                let (o, _) = mexplore::run_one(&spec, candidate, Some(&oracle), !opts.no_reduce);
                o.failure.is_some_and(|f| f.kind == kind)
            });
            let stored = ScheduleSeed {
                kind: "machine".into(),
                name: kernel.name.to_string(),
                seed_bug: opts.seed_bug.map(|b| b.name().to_string()),
                picks: kept.clone(),
                order: Vec::new(),
                note: format!("pinned by hmtx-explore: {}", first.failure.as_ref().unwrap()),
            };
            let path = seed::write_seed(&opts.corpus_dir, &corpus_stem(kernel.name, opts.seed_bug), &stored)
                .map_err(|e| SimError::BadProgram(format!("writing corpus seed: {e}")))?;
            result.shrunk = Some((kept.len(), path));
        }
    }
    Ok(result)
}

fn explore_one_workload(opts: &Opts, name: &str) -> Result<TargetResult, SimError> {
    let workloads = suite(Scale::Quick);
    let w = workloads
        .iter()
        .find(|w| w.meta().name == name || w.meta().name.contains(name))
        .ok_or_else(|| {
            SimError::BadProgram(format!(
                "unknown workload `{name}` (valid: {})",
                workloads
                    .iter()
                    .map(|w| w.meta().name)
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?;
    let paradigm = opts.paradigm.unwrap_or(w.meta().paradigm);
    let budget = opts.budget.unwrap_or(50_000_000);
    let report =
        mexplore::explore_workload(w.as_ref(), paradigm, opts.preemptions, opts.bound, budget)?;
    Ok(TargetResult {
        target: format!("{} [{}]", w.meta().name, paradigm.name()),
        mode: "workload",
        runs: report.runs,
        exhausted: report.exhausted,
        misspecs: report.misspecs,
        failures: report.failures.len(),
        first_failure: report.failures.first().map(|f| {
            format!("{} (picks {:?})", f.failure.as_ref().unwrap(), f.picks)
        }),
        shrunk: None,
    })
}

fn list() {
    println!("op kernels:");
    for k in op_kernels() {
        println!("  {} ({} txs, {} ops)", k.name, k.txs.len(), k.len());
    }
    println!("machine kernels:");
    for k in asm_kernels() {
        println!("  {} ({} threads)", k.name, k.threads.len());
    }
    println!("workloads (quick scale):");
    for w in suite(Scale::Quick) {
        println!("  {} [{}]", w.meta().name, w.meta().paradigm.name());
    }
}

fn run(opts: &Opts) -> Result<Vec<TargetResult>, SimError> {
    let mut results = Vec::new();
    let op_ks = op_kernels();
    let asm_ks = asm_kernels();
    let mut wanted: Vec<String> = opts.kernels.clone();
    if opts.all_kernels {
        wanted.extend(op_ks.iter().map(|k| k.name.to_string()));
        wanted.extend(asm_ks.iter().map(|k| k.name.to_string()));
    }
    for name in &wanted {
        if let Some(k) = op_ks.iter().find(|k| k.name == name) {
            results.push(explore_op_kernel(opts, k)?);
        } else if let Some(k) = asm_ks.iter().find(|k| k.name == name) {
            results.push(explore_asm_kernel(opts, k)?);
        } else {
            return Err(SimError::BadProgram(format!(
                "unknown kernel `{name}` (try --list)"
            )));
        }
    }
    let mut workload_names: Vec<String> = opts.workloads.clone();
    if opts.all_workloads {
        workload_names.extend(suite(Scale::Quick).iter().map(|w| w.meta().name.to_string()));
    }
    for name in &workload_names {
        results.push(explore_one_workload(opts, name)?);
    }
    Ok(results)
}

fn verdict(opts: &Opts, results: &[TargetResult]) -> Result<(), String> {
    if results.is_empty() && !opts.list {
        return Err(format!("nothing to explore\n{USAGE}"));
    }
    let any_failure = results.iter().any(|r| r.failures > 0);
    let all_exhausted = results.iter().all(|r| r.exhausted);
    if opts.expect_failure && !any_failure {
        return Err("expected a failure, found none".into());
    }
    if !opts.expect_failure && any_failure {
        let r = results.iter().find(|r| r.failures > 0).unwrap();
        return Err(format!(
            "{}: {}",
            r.target,
            r.first_failure.as_deref().unwrap_or("failure")
        ));
    }
    if opts.expect_exhausted && !all_exhausted {
        return Err("expected exhaustive enumeration, hit the run cap".into());
    }
    if let Some(max) = opts.max_shrunk_len {
        for r in results {
            if let Some((len, _)) = &r.shrunk {
                if *len > max {
                    return Err(format!(
                        "{}: shrunk schedule has {len} elements, limit {max}",
                        r.target
                    ));
                }
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("hmtx-explore: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.list {
        list();
        if opts.kernels.is_empty() && opts.workloads.is_empty() && !opts.all_kernels {
            return ExitCode::SUCCESS;
        }
    }
    let results = match run(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hmtx-explore: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.json {
        let doc = Json::obj(vec![(
            "targets",
            Json::Arr(results.iter().map(TargetResult::to_json).collect()),
        )]);
        println!("{}", doc.pretty());
    } else {
        for r in &results {
            println!(
                "{} ({}): {} runs{}, {} misspecs, {} failures",
                r.target,
                r.mode,
                r.runs,
                if r.exhausted { ", exhausted" } else { " (capped)" },
                r.misspecs,
                r.failures
            );
            if let Some(f) = &r.first_failure {
                println!("  first failure: {f}");
            }
            if let Some((len, path)) = &r.shrunk {
                println!("  shrunk to {len} elements -> {}", path.display());
            }
        }
    }
    match verdict(&opts, &results) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("hmtx-explore: {msg}");
            ExitCode::FAILURE
        }
    }
}
