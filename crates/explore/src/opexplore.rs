//! Op-level systematic exploration: enumerate every interleaving of an
//! [`OpKernel`]'s transactions (under a preemption bound and a DPOR-lite
//! reduction), execute each against a fresh [`MemorySystem`], and check the
//! protocol invariants plus a serial last-writer-wins oracle at every group
//! commit.
//!
//! A schedule is a sequence of *global op ids* (transaction-major indices
//! into the kernel, see [`OpKernel::locate`]) preserving each transaction's
//! program order. Shrunk schedules are subsequences: dropped ops simply
//! never execute, and a transaction auto-commits as soon as its retained
//! ops (and all earlier transactions) are done — mirroring the
//! `tests/proptest_serializability.rs` execution model the pinned PR 1
//! counterexample was recorded under.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use hmtx_core::{AccessKind, AccessRequest, AccessResponse, MemorySystem};
use hmtx_types::{Addr, CoreId, MachineConfig, SeedBug, Vid};

use crate::kernel::OpKernel;
use crate::Failure;

/// Result of executing one op schedule.
#[derive(Debug, Clone)]
pub struct OpOutcome {
    /// The schedule (global op ids, in execution order).
    pub order: Vec<usize>,
    /// Highest VID committed.
    pub committed: u16,
    /// Misspeculation that ended the run early (not a failure: aborting is
    /// a legal protocol outcome as long as committed state stays sound).
    pub misspec: Option<String>,
    /// Invariant/oracle/panic failure, if any.
    pub failure: Option<Failure>,
}

/// Aggregate result of exploring one kernel.
#[derive(Debug, Clone)]
pub struct OpsReport {
    /// Schedules executed.
    pub runs: usize,
    /// Whether the bounded space was fully enumerated (`false` when the
    /// `--bound` cap cut enumeration short).
    pub exhausted: bool,
    /// How many runs ended in (legal) misspeculation.
    pub misspecs: usize,
    /// The failing outcomes, in enumeration order.
    pub failures: Vec<OpOutcome>,
}

/// The default-schedule order: every op in transaction-major order.
pub fn full_order(kernel: &OpKernel) -> Vec<usize> {
    (0..kernel.len()).collect()
}

/// Serial last-writer-wins reference: committed memory after transactions
/// `1..=upto_vid`, executed atomically in VID order, restricted to the ops
/// retained in `order`.
pub fn reference(kernel: &OpKernel, order: &[usize], upto_vid: u16) -> HashMap<u64, u64> {
    let mut retained: Vec<Vec<usize>> = vec![Vec::new(); kernel.txs.len()];
    for &id in order {
        let (tx, _) = kernel.locate(id);
        retained[tx].push(id);
    }
    let mut mem = HashMap::new();
    for ops in retained.iter().take(kernel.txs.len().min(upto_vid as usize)) {
        for &id in ops {
            let (_, op) = kernel.locate(id);
            if let Some(value) = op.write {
                mem.insert(op.addr, value);
            }
        }
    }
    mem
}

/// Executes one schedule against a fresh memory system and checks it.
///
/// Checks, in order, at every group commit: `check_invariants` (first —
/// a corrupted hierarchy makes any further lookup meaningless), then the
/// oracle comparison of every tracked word via the committed-prefix view
/// `peek_word(addr, Vid(committed))`. Runs are wrapped in `catch_unwind`
/// so debug assertions inside the protocol (e.g. hit-uniqueness) classify
/// as `"panic"` failures instead of tearing down the explorer.
pub fn execute_order(kernel: &OpKernel, order: &[usize], seed_bug: Option<SeedBug>) -> OpOutcome {
    let result = catch_unwind(AssertUnwindSafe(|| execute_inner(kernel, order, seed_bug)));
    match result {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            OpOutcome {
                order: order.to_vec(),
                committed: 0,
                misspec: None,
                failure: Some(Failure {
                    kind: "panic",
                    detail: msg,
                }),
            }
        }
    }
}

fn execute_inner(kernel: &OpKernel, order: &[usize], seed_bug: Option<SeedBug>) -> OpOutcome {
    let mut cfg = MachineConfig::test_default();
    cfg.hmtx.seed_bug = seed_bug;
    let mut mem = MemorySystem::new(cfg);
    let mut outcome = OpOutcome {
        order: order.to_vec(),
        committed: 0,
        misspec: None,
        failure: None,
    };

    let mut remaining = vec![0usize; kernel.txs.len()];
    for &id in order {
        remaining[kernel.locate(id).0] += 1;
    }

    let mut now = 100u64;
    let mut committed: u16 = 0;

    // Commits every transaction whose retained ops (and predecessors) are
    // done. Returns false when a check failed and the run must stop.
    let commit_ready = |mem: &mut MemorySystem,
                        now: u64,
                        committed: &mut u16,
                        remaining: &[usize],
                        outcome: &mut OpOutcome|
     -> bool {
        while (*committed as usize) < kernel.txs.len() && remaining[*committed as usize] == 0 {
            let vid = Vid(*committed + 1);
            if let Err(e) = mem.commit(now, vid) {
                outcome.failure = Some(Failure {
                    kind: "sim-error",
                    detail: format!("commit of v{}: {e}", vid.0),
                });
                return false;
            }
            *committed += 1;
            outcome.committed = *committed;
            let violations = mem.check_invariants();
            if !violations.is_empty() {
                outcome.failure = Some(Failure {
                    kind: "invariant",
                    detail: format!("after commit of v{}: {:?}", *committed, violations[0]),
                });
                return false;
            }
            let expect = reference(kernel, &outcome.order, *committed);
            for &addr in &kernel.tracked {
                let got = mem.peek_word(Addr(addr), Vid(*committed));
                let want = *expect.get(&addr).unwrap_or(&0);
                if got != want {
                    outcome.failure = Some(Failure {
                        kind: "oracle",
                        detail: format!(
                            "after commit of v{}: word {addr:#x} is {got}, oracle says {want}",
                            *committed
                        ),
                    });
                    return false;
                }
            }
        }
        true
    };

    if !commit_ready(&mut mem, now, &mut committed, &remaining, &mut outcome) {
        return outcome;
    }
    for &id in order {
        let (tx, op) = kernel.locate(id);
        let vid = Vid(tx as u16 + 1);
        let req = AccessRequest {
            core: CoreId(op.core),
            addr: Addr(op.addr),
            kind: match op.write {
                Some(value) => AccessKind::Write(value),
                None => AccessKind::Read,
            },
            vid,
            wrong_path: false,
        };
        now += 10;
        match mem.access(now, &req) {
            Ok(AccessResponse::Done { .. }) => {}
            Ok(AccessResponse::Misspec { cause, .. }) => {
                mem.abort_all(now);
                outcome.misspec = Some(format!("{cause:?}"));
                break;
            }
            Err(e) => {
                outcome.failure = Some(Failure {
                    kind: "sim-error",
                    detail: e.to_string(),
                });
                return outcome;
            }
        }
        remaining[tx] -= 1;
        if !commit_ready(&mut mem, now, &mut committed, &remaining, &mut outcome) {
            return outcome;
        }
    }

    // Quiescent end-of-run checks: the committed prefix must match the
    // oracle whether the run committed everything or aborted midway.
    let violations = mem.check_invariants();
    if !violations.is_empty() {
        outcome.failure = Some(Failure {
            kind: "invariant",
            detail: format!("at end of run: {:?}", violations[0]),
        });
        return outcome;
    }
    if outcome.misspec.is_none() {
        if let Err(v) = mem.drain_committed() {
            outcome.failure = Some(Failure {
                kind: "drain",
                detail: v.join("; "),
            });
            return outcome;
        }
    }
    let expect = reference(kernel, &outcome.order, committed);
    for &addr in &kernel.tracked {
        let got = mem.peek_word(Addr(addr), Vid(committed));
        let want = *expect.get(&addr).unwrap_or(&0);
        if got != want {
            outcome.failure = Some(Failure {
                kind: "oracle",
                detail: format!(
                    "at end of run (v{} committed): word {addr:#x} is {got}, oracle says {want}",
                    committed
                ),
            });
            return outcome;
        }
    }
    outcome
}

/// The machine configuration the model checker and [`execute_order_checked`]
/// share: the test geometry, core count covering every core the kernel
/// names, and a VID space of at least `txs + 1`. Checker and replay **must**
/// build identical configurations or counterexamples would not reproduce.
pub fn model_machine_config(kernel: &OpKernel, seed_bug: Option<SeedBug>) -> MachineConfig {
    let mut cfg = MachineConfig::test_default();
    let max_core = kernel
        .txs
        .iter()
        .flatten()
        .map(|op| op.core)
        .max()
        .unwrap_or(0);
    cfg.num_cores = max_core + 1;
    let need_bits = (usize::BITS - kernel.txs.len().leading_zeros()).max(2);
    cfg.hmtx.vid_bits = cfg.hmtx.vid_bits.max(need_bits);
    cfg.hmtx.seed_bug = seed_bug;
    cfg
}

/// An incremental, forkable executor of an [`OpKernel`] with the model
/// checker's *strict* checking discipline: the six protocol invariants plus
/// the extended model rules (`check_model_invariants`) after **every** op,
/// the serial last-writer-wins oracle at every group commit, and a drain +
/// VID-reset epilogue on finished runs.
///
/// Semantics differ from [`execute_order`] in one deliberate way: a
/// transaction auto-commits only once **all** its kernel ops have been
/// issued (orders are treated as *prefixes* of a full run, not
/// subsequences). That is exactly the transition relation the model checker
/// explores, so any action trace the checker records replays here
/// step-for-step — [`execute_order_checked`] is the replay entry point.
#[derive(Debug, Clone)]
pub struct OpMachine {
    /// The live memory system (cloning forks the whole simulation state).
    pub mem: MemorySystem,
    /// Ops issued so far, per transaction.
    pub next: Vec<usize>,
    /// Highest VID committed.
    pub committed: u16,
    /// Terminal misspeculation, if any (rendered cause). Misspeculation
    /// aborts everything; no further steps are legal.
    pub misspec: Option<String>,
    /// Issued global op ids, in order (the replayable trace).
    pub trace: Vec<usize>,
    now: u64,
}

impl OpMachine {
    /// A fresh machine over [`model_machine_config`] for the kernel.
    pub fn new(kernel: &OpKernel, seed_bug: Option<SeedBug>) -> Self {
        OpMachine {
            mem: MemorySystem::new(model_machine_config(kernel, seed_bug)),
            next: vec![0; kernel.txs.len()],
            committed: 0,
            misspec: None,
            trace: Vec::new(),
            now: 100,
        }
    }

    /// Transactions that still have ops to issue (empty once terminal).
    pub fn enabled(&self, kernel: &OpKernel) -> Vec<usize> {
        if self.misspec.is_some() {
            return Vec::new();
        }
        (0..kernel.txs.len())
            .filter(|&t| self.next[t] < kernel.txs[t].len())
            .collect()
    }

    /// Whether no further steps are possible (all ops issued, or aborted).
    pub fn terminal(&self, kernel: &OpKernel) -> bool {
        self.enabled(kernel).is_empty()
    }

    fn strict_check(&self, context: &str) -> Result<(), Failure> {
        let mut violations = self.mem.check_invariants();
        violations.extend(self.mem.check_model_invariants());
        match violations.first() {
            None => Ok(()),
            Some(v) => Err(Failure {
                kind: "invariant",
                detail: format!("{context}: {}: {}", v.rule, v.detail),
            }),
        }
    }

    /// Commits every transaction whose ops are all issued (in VID order),
    /// checking invariants and the oracle after each commit.
    ///
    /// # Errors
    ///
    /// Returns the first failed check.
    pub fn settle(&mut self, kernel: &OpKernel) -> Result<(), Failure> {
        while self.misspec.is_none()
            && (self.committed as usize) < kernel.txs.len()
            && self.next[self.committed as usize] == kernel.txs[self.committed as usize].len()
        {
            let vid = Vid(self.committed + 1);
            self.mem.commit(self.now, vid).map_err(|e| Failure {
                kind: "sim-error",
                detail: format!("commit of v{}: {e}", vid.0),
            })?;
            self.committed += 1;
            let ctx = format!("after commit of v{}", self.committed);
            self.strict_check(&ctx)?;
            let expect = reference(kernel, &self.trace, self.committed);
            for &addr in &kernel.tracked {
                let got = self.mem.peek_word(Addr(addr), Vid(self.committed));
                let want = *expect.get(&addr).unwrap_or(&0);
                if got != want {
                    return Err(Failure {
                        kind: "oracle",
                        detail: format!(
                            "{ctx}: forwarded values serialize: \
                             word {addr:#x} is {got}, oracle says {want}"
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Issues transaction `tx`'s next op, settles commits, and runs the
    /// strict checks. Legal only on non-terminal states with `tx` enabled.
    ///
    /// # Errors
    ///
    /// Returns the first failed check (misspeculation is *not* a failure;
    /// it marks the machine terminal).
    pub fn step(&mut self, kernel: &OpKernel, tx: usize) -> Result<(), Failure> {
        assert!(self.misspec.is_none(), "step on an aborted machine");
        let op = kernel.txs[tx][self.next[tx]];
        let id = kernel
            .txs
            .iter()
            .take(tx)
            .map(Vec::len)
            .sum::<usize>()
            + self.next[tx];
        let req = AccessRequest {
            core: CoreId(op.core),
            addr: Addr(op.addr),
            kind: match op.write {
                Some(value) => AccessKind::Write(value),
                None => AccessKind::Read,
            },
            vid: Vid(tx as u16 + 1),
            wrong_path: false,
        };
        self.now += 10;
        self.next[tx] += 1;
        self.trace.push(id);
        match self.mem.access(self.now, &req).map_err(|e| Failure {
            kind: "sim-error",
            detail: e.to_string(),
        })? {
            AccessResponse::Done { .. } => {}
            AccessResponse::Misspec { cause, .. } => {
                self.mem.abort_all(self.now);
                self.misspec = Some(format!("{cause:?}"));
                return self.strict_check("after abort");
            }
        }
        let ctx = format!(
            "after op {id} (tx{tx} core{} {} {:#x})",
            op.core,
            if op.write.is_some() { "st" } else { "ld" },
            op.addr
        );
        self.strict_check(&ctx)?;
        self.settle(kernel)
    }

    /// End-of-run checks on a terminal state, on clones (the machine itself
    /// is left untouched): the drained committed image must match the
    /// oracle, and on fully committed runs a VID reset must leave a clean
    /// hierarchy.
    ///
    /// # Errors
    ///
    /// Returns the first failed check.
    pub fn finish(&self, kernel: &OpKernel) -> Result<(), Failure> {
        let fully_committed = (self.committed as usize) == kernel.txs.len();
        let mut end = self.mem.clone();
        if self.misspec.is_none() && fully_committed {
            let mut reset = self.mem.clone();
            reset.vid_reset(self.now + 10);
            let mut violations = reset.check_invariants();
            violations.extend(reset.check_model_invariants());
            if let Some(v) = violations.first() {
                return Err(Failure {
                    kind: "invariant",
                    detail: format!("after vid-reset: {}: {}", v.rule, v.detail),
                });
            }
            end.drain_committed().map_err(|v| Failure {
                kind: "drain",
                detail: v.join("; "),
            })?;
        }
        let expect = reference(kernel, &self.trace, self.committed);
        for &addr in &kernel.tracked {
            let got = end.peek_word(Addr(addr), Vid(self.committed));
            let want = *expect.get(&addr).unwrap_or(&0);
            if got != want {
                return Err(Failure {
                    kind: "oracle",
                    detail: format!(
                        "at end of run (v{} committed): forwarded values serialize: \
                         word {addr:#x} is {got}, oracle says {want}",
                        self.committed
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Replays an order as a *prefix* trace under the model checker's strict
/// semantics (see [`OpMachine`]); this is how `hmtx-run --replay` executes
/// counterexample seeds lowered from `hmtx-model`. The order must follow
/// each transaction's program order with no gaps; replay stops at the first
/// misspeculation (matching the checker's terminal-abort rule).
pub fn execute_order_checked(
    kernel: &OpKernel,
    order: &[usize],
    seed_bug: Option<SeedBug>,
) -> OpOutcome {
    let run = || -> OpOutcome {
        let mut m = OpMachine::new(kernel, seed_bug);
        let mut outcome = OpOutcome {
            order: order.to_vec(),
            committed: 0,
            misspec: None,
            failure: None,
        };
        let fail = |m: &OpMachine, outcome: &mut OpOutcome, f: Failure| {
            outcome.committed = m.committed;
            outcome.misspec = m.misspec.clone();
            outcome.failure = Some(f);
        };
        if let Err(f) = m.settle(kernel) {
            fail(&m, &mut outcome, f);
            return outcome;
        }
        for &id in order {
            if m.misspec.is_some() {
                break;
            }
            let (tx, _) = kernel.locate(id);
            let expected: usize =
                kernel.txs.iter().take(tx).map(Vec::len).sum::<usize>() + m.next[tx];
            if id != expected {
                fail(
                    &m,
                    &mut outcome,
                    Failure {
                        kind: "sim-error",
                        detail: format!(
                            "order is not a program-order prefix: op {id} arrived when \
                             tx{tx} is at op {expected}"
                        ),
                    },
                );
                return outcome;
            }
            if let Err(f) = m.step(kernel, tx) {
                fail(&m, &mut outcome, f);
                return outcome;
            }
        }
        if let Err(f) = m.finish(kernel) {
            fail(&m, &mut outcome, f);
            return outcome;
        }
        outcome.committed = m.committed;
        outcome.misspec = m.misspec.clone();
        outcome
    };
    match catch_unwind(AssertUnwindSafe(run)) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            OpOutcome {
                order: order.to_vec(),
                committed: 0,
                misspec: None,
                failure: Some(Failure {
                    kind: "panic",
                    detail: msg,
                }),
            }
        }
    }
}

/// Statically enumerates schedules: DFS over transaction draws preserving
/// program order, bounded by `preemptions` context switches away from an
/// unfinished transaction. With `reduce`, a candidate beyond the first is
/// only explored when its next op *conflicts* (same line, at least one
/// store) with the next op of an already-explored sibling — the DPOR-lite
/// sleep-set heuristic; pass `reduce = false` (`--no-reduce`) for the full
/// bounded space. Returns the schedules and whether enumeration finished
/// before hitting `cap`.
pub fn enumerate_orders(
    kernel: &OpKernel,
    preemptions: u32,
    reduce: bool,
    cap: usize,
) -> (Vec<Vec<usize>>, bool) {
    let mut offsets = vec![0usize; kernel.txs.len()];
    let mut acc = 0;
    for (t, ops) in kernel.txs.iter().enumerate() {
        offsets[t] = acc;
        acc += ops.len();
    }
    let mut out = Vec::new();
    let mut next = vec![0usize; kernel.txs.len()];
    let mut path = Vec::with_capacity(kernel.len());
    let exhausted = dfs(
        kernel,
        &offsets,
        &mut next,
        &mut path,
        None,
        preemptions,
        reduce,
        cap,
        &mut out,
    );
    (out, exhausted)
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    kernel: &OpKernel,
    offsets: &[usize],
    next: &mut Vec<usize>,
    path: &mut Vec<usize>,
    last_tx: Option<usize>,
    preemptions_left: u32,
    reduce: bool,
    cap: usize,
    out: &mut Vec<Vec<usize>>,
) -> bool {
    let enabled: Vec<usize> = (0..kernel.txs.len())
        .filter(|&t| next[t] < kernel.txs[t].len())
        .collect();
    if enabled.is_empty() {
        if out.len() >= cap {
            return false;
        }
        out.push(path.clone());
        return true;
    }
    // Continue the running transaction first: it costs no preemption and
    // is the schedule real hardware most often produces.
    let mut candidates = Vec::with_capacity(enabled.len());
    if let Some(l) = last_tx {
        if enabled.contains(&l) {
            candidates.push(l);
        }
    }
    for &t in &enabled {
        if Some(t) != last_tx {
            candidates.push(t);
        }
    }
    let mut explored: Vec<usize> = Vec::new();
    for &t in &candidates {
        let cost = match last_tx {
            Some(l) if l != t && next[l] < kernel.txs[l].len() => 1,
            _ => 0,
        };
        if cost > preemptions_left {
            continue;
        }
        if reduce && !explored.is_empty() {
            let op = kernel.txs[t][next[t]];
            let conflicts = explored
                .iter()
                .any(|&e| kernel.txs[e][next[e]].conflicts_with(&op));
            if !conflicts {
                continue;
            }
        }
        explored.push(t);
        path.push(offsets[t] + next[t]);
        next[t] += 1;
        let done = dfs(
            kernel,
            offsets,
            next,
            path,
            Some(t),
            preemptions_left - cost,
            reduce,
            cap,
            out,
        );
        next[t] -= 1;
        path.pop();
        if !done {
            return false;
        }
    }
    true
}

/// Explores a kernel: enumerate, then execute every schedule (fanned out
/// over `jobs` worker threads, results in enumeration order).
pub fn explore(
    kernel: &OpKernel,
    preemptions: u32,
    reduce: bool,
    cap: usize,
    seed_bug: Option<SeedBug>,
    jobs: usize,
) -> OpsReport {
    let (orders, exhausted) = enumerate_orders(kernel, preemptions, reduce, cap);
    let outcomes = crate::frontier::parallel_map(&orders, jobs, |order| {
        execute_order(kernel, order, seed_bug)
    });
    let mut report = OpsReport {
        runs: outcomes.len(),
        exhausted,
        misspecs: 0,
        failures: Vec::new(),
    };
    for o in outcomes {
        if o.misspec.is_some() {
            report.misspecs += 1;
        }
        if o.failure.is_some() {
            report.failures.push(o);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{op_kernels, OpSpec, ADDR_A, ADDR_B};

    fn kernel(name: &'static str) -> OpKernel {
        op_kernels().into_iter().find(|k| k.name == name).unwrap()
    }

    #[test]
    fn serial_order_of_every_kernel_is_clean() {
        for k in op_kernels() {
            let o = execute_order(&k, &full_order(&k), None);
            assert!(o.failure.is_none(), "{}: {:?}", k.name, o.failure);
            assert!(o.misspec.is_none(), "{}: serial order cannot conflict", k.name);
            assert_eq!(o.committed as usize, k.txs.len());
        }
    }

    #[test]
    fn enumeration_respects_program_order_and_bound() {
        let k = kernel("write_skew");
        let (orders, exhausted) = enumerate_orders(&k, 0, false, usize::MAX);
        // Zero preemptions: only the two run-to-completion orders of two
        // transactions (tx0 first or tx1 first).
        assert!(exhausted);
        assert_eq!(orders.len(), 2);
        for order in &orders {
            let tx0: Vec<usize> = order.iter().copied().filter(|&i| i < 3).collect();
            assert_eq!(tx0, vec![0, 1, 2], "program order violated: {order:?}");
        }
        let (all, _) = enumerate_orders(&k, 6, false, usize::MAX);
        let (reduced, _) = enumerate_orders(&k, 6, true, usize::MAX);
        assert!(all.len() > orders.len());
        assert!(reduced.len() <= all.len());
    }

    #[test]
    fn reference_is_last_writer_wins_in_vid_order() {
        let k = kernel("migrated_line");
        let full = full_order(&k);
        assert_eq!(reference(&k, &full, 1).get(&ADDR_A), Some(&0));
        assert_eq!(
            reference(&k, &full, 2).get(&ADDR_A),
            Some(&crate::kernel::BIG)
        );
        assert_eq!(reference(&k, &full, 2).get(&ADDR_B), None);
    }

    #[test]
    fn planted_seed_bug_is_detected_and_real_protocol_is_clean() {
        let k = kernel("migrated_line");
        let clean = explore(&k, 3, true, usize::MAX, None, 2);
        assert!(clean.exhausted);
        assert!(clean.failures.is_empty(), "{:?}", clean.failures[0]);
        let buggy = explore(
            &k,
            3,
            true,
            usize::MAX,
            Some(hmtx_types::SeedBug::StaleMigrationReplica),
            2,
        );
        assert!(
            !buggy.failures.is_empty(),
            "the planted migration defect must be rediscovered"
        );
    }

    #[test]
    fn oracle_catches_a_wrong_reference() {
        // Sanity-check the checker itself: a kernel whose tracked word the
        // reference deliberately disagrees on (impossible value) — build a
        // one-op kernel and tamper with the order so the reference drops
        // the write while the execution performs it.
        let k = OpKernel {
            name: "tamper",
            txs: vec![vec![OpSpec {
                core: 0,
                addr: ADDR_A,
                write: Some(42),
            }]],
            tracked: vec![ADDR_A],
        };
        let good = execute_order(&k, &[0], None);
        assert!(good.failure.is_none());
        // Dropping the only op: execution commits an empty transaction and
        // the reference agrees (word stays 0) — still clean.
        let empty = execute_order(&k, &[], None);
        assert!(empty.failure.is_none());
        assert_eq!(empty.committed, 1);
    }
}
