//! Greedy schedule shrinking.
//!
//! Given a failing schedule, repeatedly drop one element at a time and keep
//! each drop that still reproduces the *same failure class* (the
//! [`Failure::kind`] string), iterating to a fixpoint. This is
//! delta-debugging's 1-minimal reduction: the result cannot lose any single
//! element and still fail, though a smaller subset dropping several
//! elements at once may exist.
//!
//! The shrinker is generic over the element type so the same pass
//! minimizes op-level schedules (elements = global op ids) and
//! machine-level divergence lists (elements = `(step, core)` picks).

use hmtx_types::SeedBug;

use crate::kernel::OpKernel;
use crate::opexplore::execute_order;
use crate::Failure;

/// Greedily removes elements from `items` while `still_fails` holds,
/// to a fixpoint. Returns the minimized list and how many candidate
/// executions the search spent.
pub fn shrink_items<T, F>(items: &[T], still_fails: F) -> (Vec<T>, usize)
where
    T: Clone,
    F: Fn(&[T]) -> bool,
{
    let mut kept: Vec<T> = items.to_vec();
    let mut attempts = 0;
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < kept.len() {
            let mut candidate = kept.clone();
            candidate.remove(i);
            attempts += 1;
            if still_fails(&candidate) {
                kept = candidate;
                progressed = true;
                // Same index now names the next element; don't advance.
            } else {
                i += 1;
            }
        }
        if !progressed {
            return (kept, attempts);
        }
    }
}

/// Result of shrinking one failing op schedule.
#[derive(Debug, Clone)]
pub struct ShrunkOps {
    /// Minimized schedule (global op ids).
    pub order: Vec<usize>,
    /// The failure the minimized schedule still reproduces.
    pub failure: Failure,
    /// Candidate executions spent shrinking.
    pub attempts: usize,
}

/// Minimizes a failing op schedule, preserving the failure class.
///
/// Returns `None` when `order` does not actually fail (nothing to shrink).
pub fn shrink_ops(
    kernel: &OpKernel,
    order: &[usize],
    seed_bug: Option<SeedBug>,
) -> Option<ShrunkOps> {
    let kind = execute_order(kernel, order, seed_bug).failure?.kind;
    let (kept, attempts) = shrink_items(order, |candidate| {
        execute_order(kernel, candidate, seed_bug)
            .failure
            .is_some_and(|f| f.kind == kind)
    });
    let failure = execute_order(kernel, &kept, seed_bug)
        .failure
        .expect("shrinker invariant: kept schedule still fails");
    Some(ShrunkOps {
        order: kept,
        failure,
        attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::op_kernels;
    use crate::opexplore::{enumerate_orders, full_order};

    #[test]
    fn shrink_items_reaches_a_one_minimal_subset() {
        // Fails whenever both 3 and 7 are present.
        let items: Vec<u32> = (0..10).collect();
        let (kept, attempts) =
            shrink_items(&items, |c| c.contains(&3) && c.contains(&7));
        assert_eq!(kept, vec![3, 7]);
        assert!(attempts > 0);
    }

    #[test]
    fn clean_schedules_do_not_shrink() {
        let k = &op_kernels()[0];
        assert!(shrink_ops(k, &full_order(k), None).is_none());
    }

    #[test]
    fn planted_bug_counterexample_shrinks_below_pinned_length() {
        // Acceptance criterion: rediscover the pinned PR 1 counterexample
        // shape from scratch and shrink it to at most its recorded length
        // (7 ops).
        let k = op_kernels()
            .into_iter()
            .find(|k| k.name == "migrated_line")
            .unwrap();
        let bug = Some(SeedBug::StaleMigrationReplica);
        let (orders, exhausted) = enumerate_orders(&k, 3, true, usize::MAX);
        assert!(exhausted);
        let failing = orders
            .iter()
            .find(|o| execute_order(&k, o, bug).failure.is_some())
            .expect("exploration rediscovers the planted defect");
        let shrunk = shrink_ops(&k, failing, bug).unwrap();
        assert!(
            shrunk.order.len() <= 7,
            "shrunk to {} ops: {:?}",
            shrunk.order.len(),
            shrunk.order
        );
        // Still clean on the real protocol: the defect is the knob, not
        // the schedule.
        assert!(execute_order(&k, &shrunk.order, None).failure.is_none());
    }
}
