//! Corpus seed I/O: replayable [`ScheduleSeed`]s on disk.
//!
//! The shrinker writes every minimized failing schedule here
//! (`tests/corpus/` by default); `tests/explore_corpus.rs` and
//! `hmtx-run --replay` replay them byte-deterministically.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use hmtx_machine::ScheduleSeed;
use hmtx_types::{Json, SimError};

/// Reads and parses a seed file.
///
/// # Errors
///
/// Returns [`SimError::BadProgram`] when the file is unreadable or not a
/// valid seed document.
pub fn read_seed(path: &Path) -> Result<ScheduleSeed, SimError> {
    let text = fs::read_to_string(path)
        .map_err(|e| SimError::BadProgram(format!("cannot read `{}`: {e}", path.display())))?;
    let doc = Json::parse(&text)
        .map_err(|e| SimError::BadProgram(format!("`{}`: {e}", path.display())))?;
    ScheduleSeed::from_json(&doc)
}

/// Writes a seed under `dir` as `<file_stem>.json` (pretty-printed, fixed
/// key order — byte-identical for identical seeds). Creates `dir` if
/// missing. Returns the written path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_seed(dir: &Path, file_stem: &str, seed: &ScheduleSeed) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{file_stem}.json"));
    let mut text = seed.to_json().pretty();
    text.push('\n');
    fs::write(&path, text)?;
    Ok(path)
}

/// Lists the seed files under `dir`, sorted by file name.
///
/// # Errors
///
/// Propagates filesystem errors (a missing directory yields an empty list).
pub fn list_seeds(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "json") {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_round_trip_through_disk_byte_identically() {
        let dir = std::env::temp_dir().join("hmtx_explore_seed_test");
        let seed = ScheduleSeed {
            kind: "ops".into(),
            name: "migrated_line".into(),
            seed_bug: Some("stale-migration-replica".into()),
            picks: vec![],
            order: vec![0, 1],
            note: "unit test".into(),
        };
        let p1 = write_seed(&dir, "roundtrip", &seed).unwrap();
        let bytes1 = std::fs::read(&p1).unwrap();
        assert_eq!(read_seed(&p1).unwrap(), seed);
        let p2 = write_seed(&dir, "roundtrip", &seed).unwrap();
        assert_eq!(bytes1, std::fs::read(&p2).unwrap());
        assert!(list_seeds(&dir).unwrap().contains(&p1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
