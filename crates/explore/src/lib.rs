//! Systematic schedule exploration with a serializability oracle.
//!
//! The paper's central claim (§4, Figure 7) is that uncommitted value
//! forwarding plus group commit still yields serializable MTX group
//! commits. PR 2's chaos suite samples the interleaving space randomly;
//! this crate checks it *systematically* on small kernels:
//!
//! * **op-level** ([`opexplore`]) — transactions as fixed op lists driven
//!   straight into the memory system; the full interleaving space (under a
//!   preemption bound and a DPOR-lite same-line-conflict reduction) is
//!   enumerated statically and every schedule is executed fresh, with
//!   `check_invariants` plus a serial last-writer-wins oracle compare at
//!   every group commit;
//! * **machine-level** ([`mexplore`]) — whole guest programs on the full
//!   machine through the [`hmtx_machine::SchedulePolicy`] seam, with
//!   iterative context bounding (CHESS-style divergence extension) and the
//!   [`hmtx_isa::run_serial_tm`] sequential TM interpreter as the oracle.
//!
//! Failing schedules are greedily shrunk ([`shrink`]) and written to
//! `tests/corpus/` as replayable [`hmtx_machine::ScheduleSeed`]s
//! ([`seed`]); `hmtx-run --replay` and `tests/explore_corpus.rs` replay
//! them byte-deterministically.

#![warn(missing_docs)]

pub mod frontier;
pub mod kernel;
pub mod mexplore;
pub mod opexplore;
pub mod seed;
pub mod shrink;

pub use kernel::{
    asm_kernels, model_kernel, op_kernels, resolve_kernel, AsmKernel, OpKernel, OpSpec,
};
pub use opexplore::{execute_order_checked, model_machine_config, OpMachine};

/// Why a schedule is considered failing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Stable failure class: `"invariant"`, `"oracle"`, `"drain"`,
    /// `"sim-error"`, `"budget"`, or `"panic"`. The shrinker preserves the
    /// class while minimizing.
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl Failure {
    /// The stable rule id of this failure: invariant failures carry the
    /// violated rule in their rendered detail (`{context}: {rule}: {detail}`),
    /// oracle and drain failures map to their respective properties, and the
    /// remaining kinds are themselves the rule. The model checker
    /// deduplicates counterexamples and the CLI names violations by this id.
    #[must_use]
    pub fn rule(&self) -> String {
        match self.kind {
            "oracle" => "forwarded values serialize".to_string(),
            "drain" => "drain leaves no speculative lines".to_string(),
            "invariant" => self
                .detail
                .split(": ")
                .nth(1)
                .unwrap_or(self.kind)
                .to_string(),
            other => other.to_string(),
        }
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

// Exploration results cross the parallel frontier's worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync + 'static>() {}
    assert_send_sync::<Failure>();
    assert_send_sync::<OpKernel>();
    assert_send_sync::<AsmKernel>();
};
