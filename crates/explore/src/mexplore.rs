//! Machine-level systematic exploration through the
//! [`hmtx_machine::SchedulePolicy`] seam.
//!
//! Exploration is CHESS-style iterative context bounding over *divergence
//! lists*: a schedule is described by the steps at which it departs from
//! the deterministic min-clock baseline (`picks`, as replayed by
//! [`hmtx_machine::ReplayPolicy`]). The root run carries no divergences;
//! while a run executes, the policy records every scheduling point past its
//! last divergence where at least two cores were enabled and interleaving
//! could matter (the chosen core's next event conflicts with an
//! alternative's — same line with a write, MTX control, same queue). Each
//! recorded `(step, alternative core)` spawns a child divergence list, and
//! the frontier explores children breadth-first up to the preemption bound
//! (= divergence count). Every run executes on a fresh machine, so state
//! never leaks between schedules.
//!
//! Oracles: assembly kernels are compared against the
//! [`hmtx_isa::run_serial_tm`] sequential TM interpreter — at every group
//! commit the tracked words of the machine's committed-prefix view must
//! equal the oracle's snapshot for that VID, and halted runs must reproduce
//! the oracle's final memory and output. Workload runs (generated runtime
//! code spin-waits on the runtime control block, which a sequential TM
//! interpreter cannot follow) are checked for protocol invariants and
//! termination only, with the Sequential-paradigm output as the end-state
//! reference.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use hmtx_core::MemorySystem;
use hmtx_isa::{assemble, run_serial_tm, Program, TmRefState};
use hmtx_machine::{CoreEvent, Machine, RunEvent, SchedulePolicy, ThreadContext};
use hmtx_runtime::{build_paradigm, LoopBody, LoopEnv, Paradigm};
use hmtx_types::{Addr, MachineConfig, SeedBug, SimError, ThreadId, Vid};

use crate::frontier;
use crate::kernel::AsmKernel;
use crate::Failure;

/// Branch points recorded during a run: `(step, alternative cores)` pairs,
/// each an extension candidate for iterative context bounding.
pub type BranchPoints = Vec<(u64, Vec<usize>)>;

/// Per-run cap on recorded branch points: bounds the frontier's branching
/// factor; exploration that hits it still replays correctly, it just stops
/// proposing new divergences for that run.
const MAX_BRANCH_POINTS: usize = 64;

/// Instruction-step budget for the serial TM oracle.
const ORACLE_STEPS: u64 = 1_000_000;

/// A fully prepared machine-level exploration target.
pub struct MachineSpec {
    /// Kernel/workload name (stamped into corpus seeds).
    pub name: String,
    /// Assembled guest programs, thread `i` on core `i`.
    pub programs: Vec<Arc<Program>>,
    /// Machine configuration every run starts from.
    pub cfg: MachineConfig,
    /// Initial memory words.
    pub init: Vec<(u64, u64)>,
    /// Word addresses the oracle comparison checks.
    pub tracked: Vec<u64>,
    /// Instruction budget per run.
    pub budget: u64,
}

impl MachineSpec {
    /// Assembles an [`AsmKernel`] into a spec (quick configuration, one
    /// core per thread, optional planted defect).
    ///
    /// # Errors
    ///
    /// Returns assembly errors.
    pub fn from_kernel(
        kernel: &AsmKernel,
        budget: u64,
        seed_bug: Option<SeedBug>,
    ) -> Result<Self, SimError> {
        let mut programs = Vec::with_capacity(kernel.threads.len());
        for t in &kernel.threads {
            programs.push(Arc::new(assemble(t)?));
        }
        let mut cfg = MachineConfig::test_default();
        cfg.num_cores = kernel.threads.len().max(2);
        cfg.hmtx.seed_bug = seed_bug;
        Ok(MachineSpec {
            name: kernel.name.to_string(),
            programs,
            cfg,
            init: kernel.init.clone(),
            tracked: kernel.tracked.clone(),
            budget,
        })
    }

    /// Runs the serial TM oracle over this spec's programs.
    ///
    /// # Errors
    ///
    /// Propagates oracle interpretation errors (deadlock, unsupported
    /// instructions, step budget).
    pub fn oracle(&self) -> Result<TmRefState, SimError> {
        let refs: Vec<&Program> = self.programs.iter().map(Arc::as_ref).collect();
        let init: HashMap<u64, u64> = self.init.iter().copied().collect();
        run_serial_tm(&refs, ORACLE_STEPS, &init)
    }
}

/// Result of executing one machine schedule.
#[derive(Debug, Clone)]
pub struct MachineOutcome {
    /// The divergence list that produced this run.
    pub picks: Vec<(u64, usize)>,
    /// Highest VID committed.
    pub committed: u16,
    /// Misspeculation that ended the run (legal; committed prefix is still
    /// checked against the oracle).
    pub misspec: Option<String>,
    /// Failure, if any.
    pub failure: Option<Failure>,
}

/// Aggregate result of exploring one machine spec.
#[derive(Debug, Clone)]
pub struct MachineReport {
    /// Schedules executed.
    pub runs: usize,
    /// Whether the bounded space drained before the run cap.
    pub exhausted: bool,
    /// Runs that ended in (legal) misspeculation.
    pub misspecs: usize,
    /// Runs that halted cleanly.
    pub halts: usize,
    /// Failing outcomes, in exploration order.
    pub failures: Vec<MachineOutcome>,
}

/// The recording replay policy: replays `divergences`, records branch
/// points past the last divergence, and hooks per-commit checks.
struct ExplorePolicy<'a> {
    divergences: BTreeMap<u64, usize>,
    /// First step at which new branch points may be recorded (one past the
    /// last divergence — iterative context bounding only ever extends a
    /// schedule *after* its existing divergences).
    frontier_after: u64,
    reduce: bool,
    branches: Vec<(u64, Vec<usize>)>,
    oracle: Option<&'a TmRefState>,
    tracked: &'a [u64],
    violations: Vec<Failure>,
}

impl fmt::Debug for ExplorePolicy<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExplorePolicy")
            .field("divergences", &self.divergences)
            .field("branches", &self.branches.len())
            .finish()
    }
}

impl<'a> ExplorePolicy<'a> {
    fn new(
        picks: &[(u64, usize)],
        reduce: bool,
        oracle: Option<&'a TmRefState>,
        tracked: &'a [u64],
    ) -> Self {
        let divergences: BTreeMap<u64, usize> = picks.iter().copied().collect();
        let frontier_after = divergences.keys().next_back().map_or(0, |s| s + 1);
        ExplorePolicy {
            divergences,
            frontier_after,
            reduce,
            branches: Vec::new(),
            oracle,
            tracked,
            violations: Vec::new(),
        }
    }
}

impl SchedulePolicy for ExplorePolicy<'_> {
    fn pick(&mut self, step: u64, enabled: &[CoreEvent]) -> usize {
        let idx = match self.divergences.get(&step) {
            Some(&core) => enabled.iter().position(|e| e.core == core).unwrap_or(0),
            None => 0,
        };
        if step >= self.frontier_after
            && enabled.len() >= 2
            && self.branches.len() < MAX_BRANCH_POINTS
        {
            let chosen = enabled[idx];
            let alts: Vec<usize> = enabled
                .iter()
                .enumerate()
                .filter(|&(i, e)| {
                    i != idx && (!self.reduce || e.event.conflicts_with(&chosen.event))
                })
                .map(|(_, e)| e.core)
                .collect();
            if !alts.is_empty() {
                self.branches.push((step, alts));
            }
        }
        idx
    }

    fn observe_commit(
        &mut self,
        vid: Vid,
        mem: &MemorySystem,
        _committed_output: &[u64],
    ) -> Result<(), SimError> {
        let violations = mem.check_invariants();
        if let Some(v) = violations.first() {
            self.violations.push(Failure {
                kind: "invariant",
                detail: format!("after commit of v{}: {v:?}", vid.0),
            });
            return Ok(());
        }
        if let Some(oracle) = self.oracle {
            let Some(snap) = oracle.commits.iter().find(|c| c.vid == vid.0) else {
                self.violations.push(Failure {
                    kind: "oracle",
                    detail: format!("machine committed v{} but the oracle never did", vid.0),
                });
                return Ok(());
            };
            for &addr in self.tracked {
                let got = mem.peek_word(Addr(addr), vid);
                let want = *snap.memory.get(&addr).unwrap_or(&0);
                if got != want {
                    self.violations.push(Failure {
                        kind: "oracle",
                        detail: format!(
                            "after commit of v{}: word {addr:#x} is {got}, oracle says {want}",
                            vid.0
                        ),
                    });
                    return Ok(());
                }
            }
        }
        Ok(())
    }
}

/// Executes one schedule (divergence list) of `spec` on a fresh machine.
/// Returns the outcome plus the branch points recorded past the last
/// divergence (each an extension candidate for iterative context bounding).
pub fn run_one(
    spec: &MachineSpec,
    picks: &[(u64, usize)],
    oracle: Option<&TmRefState>,
    reduce: bool,
) -> (MachineOutcome, BranchPoints) {
    let result = catch_unwind(AssertUnwindSafe(|| run_inner(spec, picks, oracle, reduce)));
    match result {
        Ok(pair) => pair,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            (
                MachineOutcome {
                    picks: picks.to_vec(),
                    committed: 0,
                    misspec: None,
                    failure: Some(Failure {
                        kind: "panic",
                        detail: msg,
                    }),
                },
                Vec::new(),
            )
        }
    }
}

fn run_inner(
    spec: &MachineSpec,
    picks: &[(u64, usize)],
    oracle: Option<&TmRefState>,
    reduce: bool,
) -> (MachineOutcome, BranchPoints) {
    let mut machine = Machine::new(spec.cfg.clone());
    for (addr, value) in &spec.init {
        machine.mem_mut().memory_mut().write_word(Addr(*addr), *value);
    }
    for (i, p) in spec.programs.iter().enumerate() {
        machine.load_thread(i, ThreadContext::new(ThreadId(i), Arc::clone(p)));
    }
    let mut policy = ExplorePolicy::new(picks, reduce, oracle, &spec.tracked);
    let event = machine.run_with_policy(spec.budget, &mut policy);
    let mut outcome = MachineOutcome {
        picks: picks.to_vec(),
        committed: machine.mem().last_committed().0,
        misspec: None,
        failure: None,
    };
    if let Some(v) = policy.violations.first() {
        outcome.failure = Some(v.clone());
        return (outcome, policy.branches);
    }
    match event {
        Err(e) => {
            outcome.failure = Some(Failure {
                kind: "sim-error",
                detail: e.to_string(),
            });
        }
        Ok(RunEvent::BudgetExhausted) => {
            outcome.failure = Some(Failure {
                kind: "budget",
                detail: format!("instruction budget ({}) exhausted", spec.budget),
            });
        }
        Ok(RunEvent::Misspeculation { cause, cycle }) => {
            outcome.misspec = Some(format!("{cause:?} at cycle {cycle}"));
            // The machine already aborted all speculative state; the
            // committed prefix must be sound and must match the oracle's
            // prefix for the last committed VID.
            check_quiescent(&machine, oracle, spec, outcome.committed, &mut outcome);
        }
        Ok(RunEvent::AllHalted) => {
            check_quiescent(&machine, oracle, spec, outcome.committed, &mut outcome);
            if outcome.failure.is_none() {
                if let Some(oracle) = oracle {
                    let mut got = machine.committed_output().to_vec();
                    let mut want = oracle.output.clone();
                    got.sort_unstable();
                    want.sort_unstable();
                    if got != want {
                        outcome.failure = Some(Failure {
                            kind: "oracle",
                            detail: format!("halted with output {got:?}, oracle says {want:?}"),
                        });
                    } else if outcome.committed as usize != oracle.commits.len() {
                        outcome.failure = Some(Failure {
                            kind: "oracle",
                            detail: format!(
                                "halted having committed v{}, oracle committed {}",
                                outcome.committed,
                                oracle.commits.len()
                            ),
                        });
                    }
                }
            }
        }
    }
    (outcome, policy.branches)
}

/// Quiescent-point checks shared by halted and aborted runs: protocol
/// invariants, then the tracked words of the committed prefix against the
/// oracle snapshot for `committed` (or the initial memory when nothing
/// committed).
fn check_quiescent(
    machine: &Machine,
    oracle: Option<&TmRefState>,
    spec: &MachineSpec,
    committed: u16,
    outcome: &mut MachineOutcome,
) {
    let violations = machine.mem().check_invariants();
    if let Some(v) = violations.first() {
        outcome.failure = Some(Failure {
            kind: "invariant",
            detail: format!("at end of run: {v:?}"),
        });
        return;
    }
    let Some(oracle) = oracle else { return };
    // Nothing committed yet: the expectation is the initial memory image
    // (oracle snapshots clone the full interpreter memory, initial words
    // included, so the snapshot arm needs no init fallback).
    let snap = oracle.commits.iter().find(|c| c.vid == committed);
    let init_val = |addr: u64| {
        spec.init
            .iter()
            .find(|(a, _)| *a == addr)
            .map_or(0, |(_, v)| *v)
    };
    for &addr in &spec.tracked {
        let got = machine.mem().peek_word(Addr(addr), Vid(committed));
        let want = match snap {
            Some(s) => s.memory.get(&addr).copied().unwrap_or_else(|| init_val(addr)),
            None => init_val(addr),
        };
        if got != want {
            outcome.failure = Some(Failure {
                kind: "oracle",
                detail: format!(
                    "end of run (v{committed} committed): word {addr:#x} is {got}, \
                     oracle says {want}"
                ),
            });
            return;
        }
    }
}

/// Explores a machine spec to the preemption bound.
pub fn explore_spec(
    spec: &MachineSpec,
    oracle: Option<&TmRefState>,
    preemptions: u32,
    reduce: bool,
    cap: usize,
    jobs: usize,
) -> MachineReport {
    let (outcomes, exhausted) =
        frontier::run_frontier(vec![Vec::new()], jobs, cap, |picks: &Vec<(u64, usize)>| {
            let (outcome, branches) = run_one(spec, picks, oracle, reduce);
            let children = if picks.len() < preemptions as usize && outcome.failure.is_none() {
                branches
                    .iter()
                    .flat_map(|(step, alts)| {
                        alts.iter().map(|&core| {
                            let mut d = picks.clone();
                            d.push((*step, core));
                            d
                        })
                    })
                    .collect()
            } else {
                Vec::new()
            };
            (outcome, children)
        });
    summarize(outcomes, exhausted)
}

fn summarize(outcomes: Vec<MachineOutcome>, exhausted: bool) -> MachineReport {
    let mut report = MachineReport {
        runs: outcomes.len(),
        exhausted,
        misspecs: 0,
        halts: 0,
        failures: Vec::new(),
    };
    for o in outcomes {
        if o.misspec.is_some() {
            report.misspecs += 1;
        } else if o.failure.is_none() {
            report.halts += 1;
        }
        if o.failure.is_some() {
            report.failures.push(o);
        }
    }
    report
}

/// Assembles, oracles, and explores a built-in assembly kernel.
///
/// # Errors
///
/// Returns assembly or oracle errors.
pub fn explore_kernel(
    kernel: &AsmKernel,
    preemptions: u32,
    reduce: bool,
    cap: usize,
    jobs: usize,
    seed_bug: Option<SeedBug>,
    budget: u64,
) -> Result<MachineReport, SimError> {
    let spec = MachineSpec::from_kernel(kernel, budget, seed_bug)?;
    let oracle = spec.oracle()?;
    Ok(explore_spec(&spec, Some(&oracle), preemptions, reduce, cap, jobs))
}

/// Explores a workload's generated parallel code under schedule
/// perturbation: protocol invariants at every commit, termination within
/// the budget, and — for runs that halt — the Sequential-paradigm committed
/// output as the reference. Runs serially (workload bodies are trait
/// objects without a `Sync` bound).
///
/// # Errors
///
/// Returns [`SimError`] when the baseline (zero-divergence) setup fails —
/// code generation bugs, not schedule-dependent outcomes.
pub fn explore_workload(
    body: &dyn LoopBody,
    paradigm: Paradigm,
    preemptions: u32,
    cap: usize,
    budget: u64,
) -> Result<MachineReport, SimError> {
    let cfg = MachineConfig::test_default();
    // Reference output: the sequential paradigm on the untouched scheduler.
    let reference = hmtx_runtime::run_loop(Paradigm::Sequential, body, &cfg, budget)?
        .1
        .outputs;

    let mut queue: std::collections::VecDeque<Vec<(u64, usize)>> = [Vec::new()].into();
    let mut outcomes = Vec::new();
    let mut exhausted = true;
    while let Some(picks) = queue.pop_front() {
        if outcomes.len() >= cap {
            exhausted = false;
            break;
        }
        let (outcome, branches) = run_workload_once(body, paradigm, &cfg, &picks, budget, &reference);
        let extend = picks.len() < preemptions as usize && outcome.failure.is_none();
        if extend {
            for (step, alts) in &branches {
                for &core in alts {
                    let mut d = picks.clone();
                    d.push((*step, core));
                    queue.push_back(d);
                }
            }
        }
        outcomes.push(outcome);
    }
    Ok(summarize(outcomes, exhausted))
}

fn run_workload_once(
    body: &dyn LoopBody,
    paradigm: Paradigm,
    cfg: &MachineConfig,
    picks: &[(u64, usize)],
    budget: u64,
    reference: &[u64],
) -> (MachineOutcome, BranchPoints) {
    let inner = || -> Result<(MachineOutcome, BranchPoints), SimError> {
        let workers = match paradigm {
            Paradigm::Sequential | Paradigm::Dswp => 1,
            Paradigm::Doall | Paradigm::Doacross => cfg.num_cores,
            Paradigm::PsDswp => cfg.num_cores.saturating_sub(1).max(1),
        };
        let env =
            LoopEnv::new(cfg.hmtx.max_vid().0, workers).with_pipeline_window(cfg.pipeline_window);
        let mut machine = Machine::new(cfg.clone());
        body.build_image(&mut machine, &env);
        let generated = build_paradigm(paradigm, body, &env, 1)?;
        for (i, t) in generated.threads.into_iter().enumerate() {
            machine.load_thread(t.core, ThreadContext::new(ThreadId(i), t.program));
        }
        let mut policy = ExplorePolicy::new(picks, true, None, &[]);
        let event = machine.run_with_policy(budget, &mut policy)?;
        let mut outcome = MachineOutcome {
            picks: picks.to_vec(),
            committed: machine.mem().last_committed().0,
            misspec: None,
            failure: None,
        };
        if let Some(v) = policy.violations.first() {
            outcome.failure = Some(v.clone());
            return Ok((outcome, policy.branches));
        }
        match event {
            RunEvent::BudgetExhausted => {
                outcome.failure = Some(Failure {
                    kind: "budget",
                    detail: format!("instruction budget ({budget}) exhausted"),
                });
            }
            RunEvent::Misspeculation { cause, cycle } => {
                // Legal: the runtime's recovery ladder would re-dispatch
                // here; for exploration the post-abort hierarchy just has
                // to be sound.
                outcome.misspec = Some(format!("{cause:?} at cycle {cycle}"));
                if let Some(v) = machine.mem().check_invariants().first() {
                    outcome.failure = Some(Failure {
                        kind: "invariant",
                        detail: format!("after abort: {v:?}"),
                    });
                }
            }
            RunEvent::AllHalted => {
                if let Some(v) = machine.mem().check_invariants().first() {
                    outcome.failure = Some(Failure {
                        kind: "invariant",
                        detail: format!("at end of run: {v:?}"),
                    });
                } else if machine.committed_output() != reference {
                    outcome.failure = Some(Failure {
                        kind: "oracle",
                        detail: format!(
                            "halted with {} outputs, sequential reference has {}",
                            machine.committed_output().len(),
                            reference.len()
                        ),
                    });
                }
            }
        }
        Ok((outcome, policy.branches))
    };
    match catch_unwind(AssertUnwindSafe(inner)) {
        Ok(Ok(pair)) => pair,
        Ok(Err(e)) => (
            MachineOutcome {
                picks: picks.to_vec(),
                committed: 0,
                misspec: None,
                failure: Some(Failure {
                    kind: "sim-error",
                    detail: e.to_string(),
                }),
            },
            Vec::new(),
        ),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            (
                MachineOutcome {
                    picks: picks.to_vec(),
                    committed: 0,
                    misspec: None,
                    failure: Some(Failure {
                        kind: "panic",
                        detail: msg,
                    }),
                },
                Vec::new(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{asm_kernels, ADDR_A, ADDR_B};

    fn kernel(name: &str) -> AsmKernel {
        asm_kernels().into_iter().find(|k| k.name == name).unwrap()
    }

    #[test]
    fn handoff_is_clean_to_preemption_bound_three() {
        let report = explore_kernel(&kernel("handoff"), 3, true, 10_000, 2, None, 20_000).unwrap();
        assert!(report.exhausted, "bounded space must drain");
        assert!(report.runs > 1, "branch points must be found");
        assert!(
            report.failures.is_empty(),
            "first failure: {}",
            report.failures[0].failure.as_ref().unwrap()
        );
        assert!(report.halts >= 1);
    }

    #[test]
    fn race_detect_misspeculates_on_some_schedules_and_stays_sound() {
        let report =
            explore_kernel(&kernel("race_detect"), 3, true, 10_000, 2, None, 20_000).unwrap();
        assert!(report.exhausted);
        assert!(
            report.failures.is_empty(),
            "first failure: {}",
            report.failures[0].failure.as_ref().unwrap()
        );
        assert!(report.halts >= 1, "store-first schedules commit");
    }

    #[test]
    fn oracle_knows_the_handoff_answer() {
        let spec = MachineSpec::from_kernel(&kernel("handoff"), 20_000, None).unwrap();
        let oracle = spec.oracle().unwrap();
        assert_eq!(oracle.output, vec![8]);
        assert_eq!(oracle.commits.len(), 2);
        let last = oracle.commits.last().unwrap();
        assert_eq!(last.memory.get(&ADDR_A), Some(&7));
        assert_eq!(last.memory.get(&ADDR_B), Some(&8));
    }

    #[test]
    fn runs_are_deterministic_per_divergence_list() {
        let spec = MachineSpec::from_kernel(&kernel("race_detect"), 20_000, None).unwrap();
        let oracle = spec.oracle().unwrap();
        let (first, b1) = run_one(&spec, &[], Some(&oracle), true);
        let (second, b2) = run_one(&spec, &[], Some(&oracle), true);
        assert_eq!(first.committed, second.committed);
        assert_eq!(first.misspec, second.misspec);
        assert_eq!(b1, b2);
        assert!(!b1.is_empty(), "the race must present a branch point");
    }

    #[test]
    fn workload_exploration_terminates_under_a_bound() {
        let suite = hmtx_workloads::suite(hmtx_workloads::Scale::Quick);
        let body = suite
            .iter()
            .find(|w| w.meta().name.contains("alvinn"))
            .unwrap();
        let report =
            explore_workload(body.as_ref(), Paradigm::Doacross, 1, 4, 50_000_000).unwrap();
        assert!(report.runs >= 1 && report.runs <= 4);
        assert!(
            report.failures.is_empty(),
            "first failure: {}",
            report.failures[0].failure.as_ref().unwrap()
        );
    }
}
