//! The `hmtx-serve` wire protocol: length-prefixed JSON frames.
//!
//! Every message — request or response — is one frame: a 4-byte big-endian
//! length followed by that many bytes of UTF-8 JSON. Frames over
//! [`MAX_FRAME`] bytes are rejected before allocation, so a hostile client
//! cannot ask the server to buffer gigabytes.
//!
//! Requests (`"type"` selects the operation):
//!
//! ```text
//! {"type":"job","spec":{...JobSpec...},"deadline_ms":2000}   // deadline optional
//! {"type":"stats"}
//! {"type":"cluster"}                                         // router-aggregated stats
//! {"type":"ping"}
//! {"type":"shutdown"}                                        // begin graceful drain
//! ```
//!
//! Responses:
//!
//! ```text
//! {"type":"result","key":"<32 hex>","report":{...}}   // report bytes spliced verbatim
//! {"type":"busy","retry_after_ms":N}                  // admission queue full
//! {"type":"draining"}                                 // server is draining
//! {"type":"timeout","key":"<32 hex>"}                 // deadline expired (job still runs)
//! {"type":"error","message":"...","diagnostics":[..]} // simulation failed
//! {"type":"stats","stats":{...StatsSnapshot...}}
//! {"type":"cluster","backends":[...],"aggregate":{...}}      // from hmtx-router only
//! {"type":"pong"} / {"type":"ok"}
//! ```
//!
//! The `result` envelope is assembled by **splicing the cached report bytes
//! verbatim** into the frame — the report is never re-parsed or
//! re-serialized on the hot path, which is what makes the determinism
//! guarantee ("same request bytes → same response bytes, cached or not")
//! hold at the byte level rather than merely semantically.

use std::io::{self, Read, Write};

use hmtx_types::{diagnostic_to_json, JobSpec, Json, SimError};

/// Frames larger than this are a protocol error (16 MiB).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    // One contiguous write: a separate 4-byte prefix write would hand
    // Nagle + delayed-ACK a ~40ms stall per frame on loopback.
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame boundary;
/// an EOF *inside* the length prefix (a partially-received frame) is an
/// `UnexpectedEof` error, not a clean shutdown.
///
/// # Errors
///
/// Propagates I/O errors; rejects frames over [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame length prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or replay) one job.
    Job {
        /// What to simulate.
        spec: JobSpec,
        /// Per-request deadline override in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Snapshot the serving counters.
    Stats,
    /// Cluster-wide stats: per-backend snapshots plus the aggregate.
    /// Answered by `hmtx-router`; a lone backend answers `error`.
    Cluster,
    /// Liveness probe.
    Ping,
    /// Begin graceful drain: finish in-flight jobs, reject new ones.
    Shutdown,
}

impl Request {
    /// Serializes the request.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let json = match self {
            Request::Job { spec, deadline_ms } => {
                let mut fields = vec![
                    ("type".to_string(), Json::Str("job".into())),
                    ("spec".to_string(), spec.to_json()),
                ];
                if let Some(ms) = deadline_ms {
                    fields.push(("deadline_ms".into(), Json::Uint(*ms)));
                }
                Json::Obj(fields)
            }
            Request::Stats => Json::obj(vec![("type", Json::Str("stats".into()))]),
            Request::Cluster => Json::obj(vec![("type", Json::Str("cluster".into()))]),
            Request::Ping => Json::obj(vec![("type", Json::Str("ping".into()))]),
            Request::Shutdown => Json::obj(vec![("type", Json::Str("shutdown".into()))]),
        };
        json.compact().into_bytes()
    }

    /// Parses a request frame.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed input (the server turns
    /// it into an `error` response rather than dropping the connection).
    pub fn parse(payload: &[u8]) -> Result<Self, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "frame is not UTF-8".to_string())?;
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| "request needs a string `type`".to_string())?;
        match ty {
            "job" => {
                let spec = v
                    .get("spec")
                    .ok_or_else(|| "job request needs a `spec`".to_string())?;
                let spec = JobSpec::from_json(spec).map_err(|e| e.to_string())?;
                let deadline_ms = match v.get("deadline_ms") {
                    None | Some(Json::Null) => None,
                    Some(d) => Some(
                        d.as_u64()
                            .ok_or_else(|| "`deadline_ms` must be a uint".to_string())?,
                    ),
                };
                Ok(Request::Job { spec, deadline_ms })
            }
            "stats" => Ok(Request::Stats),
            "cluster" => Ok(Request::Cluster),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request type `{other}`")),
        }
    }
}

/// Assembles a `result` response, splicing the report bytes verbatim.
#[must_use]
pub fn result_response(key: &str, report_bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(report_bytes.len() + 64);
    out.extend_from_slice(br#"{"type":"result","key":""#);
    out.extend_from_slice(key.as_bytes());
    out.extend_from_slice(br#"","report":"#);
    out.extend_from_slice(report_bytes);
    out.push(b'}');
    out
}

/// A `busy` backpressure response.
#[must_use]
pub fn busy_response(retry_after_ms: u64) -> Vec<u8> {
    format!(r#"{{"type":"busy","retry_after_ms":{retry_after_ms}}}"#).into_bytes()
}

/// A `draining` rejection response.
#[must_use]
pub fn draining_response() -> Vec<u8> {
    br#"{"type":"draining"}"#.to_vec()
}

/// A `timeout` response (the job keeps running and will cache).
#[must_use]
pub fn timeout_response(key: &str) -> Vec<u8> {
    format!(r#"{{"type":"timeout","key":"{key}"}}"#).into_bytes()
}

/// An `error` response from a failed simulation (verification diagnostics
/// are carried structurally).
#[must_use]
pub fn error_response(message: &str, diagnostics: &[Json]) -> Vec<u8> {
    Json::obj(vec![
        ("type", Json::Str("error".into())),
        ("message", Json::Str(message.into())),
        ("diagnostics", Json::Arr(diagnostics.to_vec())),
    ])
    .compact()
    .into_bytes()
}

/// Renders a [`SimError`] as an `error` response.
#[must_use]
pub fn sim_error_response(e: &SimError) -> Vec<u8> {
    match e {
        SimError::Verification(diags) => {
            let rendered: Vec<Json> = diags.iter().map(diagnostic_to_json).collect();
            error_response("verification failed", &rendered)
        }
        other => error_response(&format!("{other:?}"), &[]),
    }
}

/// A `stats` response.
#[must_use]
pub fn stats_response(snapshot: &hmtx_types::StatsSnapshot) -> Vec<u8> {
    Json::obj(vec![
        ("type", Json::Str("stats".into())),
        ("stats", snapshot.to_json()),
    ])
    .compact()
    .into_bytes()
}

/// The `pong` liveness reply.
#[must_use]
pub fn pong_response() -> Vec<u8> {
    br#"{"type":"pong"}"#.to_vec()
}

/// The generic acknowledgment (shutdown accepted).
#[must_use]
pub fn ok_response() -> Vec<u8> {
    br#"{"type":"ok"}"#.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_types::{BenchRef, WireBase, WireParadigm, WireScale};

    fn spec() -> JobSpec {
        JobSpec::new(
            BenchRef::Suite(1),
            WireParadigm::Paper,
            WireScale::Quick,
            WireBase::Test,
        )
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Job {
                spec: spec(),
                deadline_ms: Some(2500),
            },
            Request::Job {
                spec: spec(),
                deadline_ms: None,
            },
            Request::Stats,
            Request::Cluster,
            Request::Ping,
            Request::Shutdown,
        ] {
            let back = Request::parse(&req.to_bytes()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn malformed_requests_error_politely() {
        for bad in [
            &b"not json"[..],
            br#"{"spec":{}}"#,
            br#"{"type":"job"}"#,
            br#"{"type":"warp"}"#,
            br#"{"type":"job","spec":{"benchmark":"suite:0"}}"#,
        ] {
            assert!(Request::parse(bad).is_err());
        }
    }

    #[test]
    fn result_envelope_splices_report_bytes_verbatim() {
        let report = br#"{"cycles":42}"#;
        let resp = result_response("abc123", report);
        let text = String::from_utf8(resp).unwrap();
        assert_eq!(
            text,
            r#"{"type":"result","key":"abc123","report":{"cycles":42}}"#
        );
        // And the spliced envelope is still valid JSON.
        Json::parse(&text).unwrap();
    }

    #[test]
    fn canned_responses_parse() {
        for bytes in [
            busy_response(250),
            draining_response(),
            timeout_response("deadbeef"),
            error_response("boom", &[]),
            pong_response(),
            ok_response(),
        ] {
            Json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        }
    }
}
