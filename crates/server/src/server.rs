//! The `hmtx-serve` server: bounded admission, sharded single-flight
//! execution, two-tier caching, a poll-based connection loop, graceful
//! drain.
//!
//! Request lifecycle for a `job`:
//!
//! 1. **Cache probe** — memory then disk; a hit answers immediately with the
//!    stored bytes spliced into the response envelope.
//! 2. **Admission** — under the key's *shard* lock (the same prefix shard
//!    the memory cache uses): an identical in-flight job coalesces (the
//!    request waits on the same [`JobCell`], no duplicate simulation); a
//!    full queue answers `busy` with a retry hint; otherwise the job
//!    enqueues and the miss is counted. There is no global single-flight
//!    lock — two different keys almost never touch the same shard.
//! 3. **Wait with deadline** — the connection's pending slot in the event
//!    loop waits on the cell up to the request's deadline. A timeout
//!    answers `timeout`, but the job keeps running and its report still
//!    lands in the cache — a retry is a hit.
//! 4. **Execution** — a worker pops the cell, runs
//!    [`hmtx_bench::run_job_report`], and inserts the report bytes into the
//!    cache *before* publishing the cell result and removing it from the
//!    in-flight shard. A requester that misses the in-flight shard
//!    therefore re-probes the cache under the same shard lock and can never
//!    lose the race into a duplicate simulation.
//!
//! Connections are **not** thread-per-connection: a single readiness loop
//! ([`crate::ready`]) owns every accepted socket through a `poll(2)` set,
//! so thousands of idle connections cost a few bytes of buffer each instead
//! of a pinned thread. Workers hand finished results back to the loop
//! through a self-pipe wakeup.
//!
//! **Drain** ([`ServerHandle::drain`], or a `shutdown` request, or SIGTERM
//! in the binary): the listener stops accepting, queued and executing jobs
//! finish and answer normally, and new job requests on existing connections
//! answer `draining`. [`ServerHandle::wait`] returns once the event loop
//! has answered every waiter and the workers have gone idle.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hmtx_types::JobSpec;

use crate::cache::{ReportCache, Tier, DEFAULT_SHARDS};
use crate::metrics::{bump, Metrics};
use crate::proto::{self, Request};
use crate::ready::{self, WakePipe};

/// Server tunables. The defaults suit an interactive session; tests shrink
/// the queue and add an artificial execution delay to exercise backpressure
/// deterministically.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing simulations.
    pub workers: usize,
    /// Admission queue capacity; a full queue answers `busy`.
    pub queue_cap: usize,
    /// In-memory cache capacity, in reports (split across `shards`).
    pub mem_cache_cap: usize,
    /// Memory-cache and single-flight shard count.
    pub shards: usize,
    /// On-disk report store (`None` = memory-only).
    pub cache_dir: Option<PathBuf>,
    /// Deadline applied to job requests that carry none, in milliseconds.
    pub default_deadline_ms: u64,
    /// Retry hint returned with `busy` responses, in milliseconds.
    pub retry_after_ms: u64,
    /// Artificial delay before each execution — a test knob that makes
    /// queue-full and coalescing windows deterministic on any machine.
    pub execute_delay: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            queue_cap: 64,
            mem_cache_cap: 512,
            shards: DEFAULT_SHARDS,
            cache_dir: None,
            default_deadline_ms: 120_000,
            retry_after_ms: 250,
            execute_delay: Duration::ZERO,
        }
    }
}

/// The published outcome of one execution: the report bytes, or a rendered
/// error response (shared by every coalesced waiter).
pub(crate) type CellOutcome = Result<Arc<Vec<u8>>, Arc<Vec<u8>>>;

/// One admitted job: requests for the same key share a cell, and the cell's
/// state is published exactly once by the executing worker. Waiters are
/// event-loop pending slots, woken through the self-pipe rather than a
/// condvar.
pub(crate) struct JobCell {
    pub(crate) key: String,
    spec: JobSpec,
    /// `None` until finished.
    pub(crate) state: Mutex<Option<CellOutcome>>,
}

struct Sched {
    queue: VecDeque<Arc<JobCell>>,
    executing: u64,
}

pub(crate) struct Inner {
    pub(crate) cfg: ServerConfig,
    pub(crate) metrics: Metrics,
    cache: ReportCache,
    sched: Mutex<Sched>,
    /// Per-shard single-flight registries, indexed like the cache shards.
    flights: Vec<Mutex<HashMap<String, Arc<JobCell>>>>,
    work: Condvar,
    pub(crate) draining: AtomicBool,
    pub(crate) wake: Arc<WakePipe>,
}

impl Inner {
    pub(crate) fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.work.notify_all();
        self.wake.wake();
    }

    pub(crate) fn queue_gauges(&self) -> (u64, u64) {
        let sched = self.sched.lock().unwrap();
        (sched.queue.len() as u64, sched.executing)
    }
}

/// A running server: its bound address and the handles to stop it.
pub struct ServerHandle {
    inner: Arc<Inner>,
    addr: SocketAddr,
    event: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins graceful drain: stop accepting, finish in-flight work, answer
    /// `draining` to new job requests.
    pub fn drain(&self) {
        self.inner.begin_drain();
    }

    /// Waits for drain to complete (in-flight waiters answered, workers
    /// exited). Call [`ServerHandle::drain`] first — otherwise this blocks
    /// until something else does.
    pub fn wait(mut self) {
        if let Some(event) = self.event.take() {
            let _ = event.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Starts a server on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port).
    ///
    /// # Errors
    ///
    /// Propagates bind errors and self-pipe creation failures.
    pub fn start(addr: &str, cfg: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let wake = Arc::new(WakePipe::new()?);
        let shards = cfg.shards.max(1);
        let inner = Arc::new(Inner {
            cache: ReportCache::with_shards(cfg.mem_cache_cap, shards, cfg.cache_dir.clone()),
            metrics: Metrics::new(),
            sched: Mutex::new(Sched {
                queue: VecDeque::new(),
                executing: 0,
            }),
            flights: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            work: Condvar::new(),
            draining: AtomicBool::new(false),
            wake: Arc::clone(&wake),
            cfg,
        });

        let workers = (0..inner.cfg.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();

        let event = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || ready::event_loop(&inner, &listener))
        };

        Ok(ServerHandle {
            inner,
            addr,
            event: Some(event),
            workers,
        })
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let cell = {
            let mut sched = inner.sched.lock().unwrap();
            loop {
                if let Some(cell) = sched.queue.pop_front() {
                    sched.executing += 1;
                    break Some(cell);
                }
                if inner.draining.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _timeout) = inner
                    .work
                    .wait_timeout(sched, Duration::from_millis(100))
                    .unwrap();
                sched = guard;
            }
        };
        let Some(cell) = cell else { return };
        execute(inner, &cell);
    }
}

fn execute(inner: &Inner, cell: &JobCell) {
    if !inner.cfg.execute_delay.is_zero() {
        std::thread::sleep(inner.cfg.execute_delay);
    }
    let started = Instant::now();
    let result = match hmtx_bench::run_job_report(&cell.spec) {
        Ok(report) => {
            let bytes = Arc::new(report.compact().into_bytes());
            // Cache BEFORE leaving the in-flight shard: a requester that
            // sees the key absent from its flight shard re-probes the cache
            // under the same shard lock and is guaranteed to find these
            // bytes.
            let _ = inner.cache.put(&cell.key, Arc::clone(&bytes));
            bump(&inner.metrics.executed);
            let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            inner.metrics.record_service_us(us);
            Ok(bytes)
        }
        Err(e) => Err(Arc::new(proto::sim_error_response(&e))),
    };
    {
        let shard = inner.cache.shard_of(&cell.key);
        let mut flight = inner.flights[shard].lock().unwrap();
        flight.remove(&cell.key);
    }
    {
        let mut sched = inner.sched.lock().unwrap();
        sched.executing = sched.executing.saturating_sub(1);
    }
    *cell.state.lock().unwrap() = Some(result);
    // Hand the published result back to the readiness loop.
    inner.wake.wake();
}

/// What one request frame resolved to: an immediate response, or a pending
/// wait on an admitted (possibly coalesced) job cell.
pub(crate) enum Outcome {
    Respond(Vec<u8>),
    Wait {
        cell: Arc<JobCell>,
        key: String,
        deadline: Instant,
    },
}

/// Parses and dispatches one request frame. Called from the event loop;
/// everything here is non-blocking except short shard/scheduler lock holds
/// and (worst case) a disk-tier cache read.
pub(crate) fn handle_frame(inner: &Inner, frame: &[u8]) -> Outcome {
    bump(&inner.metrics.requests);
    match Request::parse(frame) {
        Err(message) => {
            bump(&inner.metrics.errors);
            Outcome::Respond(proto::error_response(&message, &[]))
        }
        Ok(Request::Ping) => Outcome::Respond(proto::pong_response()),
        Ok(Request::Shutdown) => {
            inner.begin_drain();
            Outcome::Respond(proto::ok_response())
        }
        Ok(Request::Stats) => {
            let (queue_depth, executing) = inner.queue_gauges();
            Outcome::Respond(proto::stats_response(
                &inner.metrics.snapshot(queue_depth, executing),
            ))
        }
        Ok(Request::Cluster) => {
            // Only `hmtx-router` aggregates cluster stats; a lone backend
            // says so instead of pretending to be a one-node cluster.
            Outcome::Respond(proto::error_response(
                "cluster stats are served by hmtx-router, not a backend",
                &[],
            ))
        }
        Ok(Request::Job { spec, deadline_ms }) => {
            bump(&inner.metrics.job_requests);
            admit_job(inner, &spec, deadline_ms)
        }
    }
}

fn cache_answer(inner: &Inner, key: &str, bytes: &[u8], tier: Tier) -> Vec<u8> {
    match tier {
        Tier::Mem => bump(&inner.metrics.mem_hits),
        Tier::Disk => bump(&inner.metrics.disk_hits),
    }
    proto::result_response(key, bytes)
}

fn admit_job(inner: &Inner, spec: &JobSpec, deadline_ms: Option<u64>) -> Outcome {
    let key = spec.key();

    // Fast path: cached report, no shard-registry involvement.
    if let Some((bytes, tier)) = inner.cache.get(&key) {
        return Outcome::Respond(cache_answer(inner, &key, &bytes, tier));
    }
    if inner.draining.load(Ordering::SeqCst) {
        bump(&inner.metrics.rejected_draining);
        return Outcome::Respond(proto::draining_response());
    }

    // Admission, under the key's shard lock.
    let shard = inner.cache.shard_of(&key);
    let cell = {
        let mut flight = inner.flights[shard].lock().unwrap();
        if let Some(cell) = flight.get(&key) {
            bump(&inner.metrics.coalesced_hits);
            Arc::clone(cell)
        } else if let Some((bytes, tier)) = inner.cache.get(&key) {
            // The job finished between the unlocked probe and here; the
            // worker caches before leaving the flight shard, so this
            // re-probe closes the race window completely.
            return Outcome::Respond(cache_answer(inner, &key, &bytes, tier));
        } else {
            let mut sched = inner.sched.lock().unwrap();
            if sched.queue.len() >= inner.cfg.queue_cap {
                bump(&inner.metrics.rejected_busy);
                return Outcome::Respond(proto::busy_response(inner.cfg.retry_after_ms));
            }
            bump(&inner.metrics.misses);
            let cell = Arc::new(JobCell {
                key: key.clone(),
                spec: *spec,
                state: Mutex::new(None),
            });
            sched.queue.push_back(Arc::clone(&cell));
            flight.insert(key.clone(), Arc::clone(&cell));
            inner.work.notify_one();
            cell
        }
    };

    let deadline = Instant::now()
        + Duration::from_millis(deadline_ms.unwrap_or(inner.cfg.default_deadline_ms));
    Outcome::Wait {
        cell,
        key,
        deadline,
    }
}

/// Resolves a pending wait if its cell has published or its deadline has
/// passed. Returns the response to send, or `None` to keep waiting.
pub(crate) fn poll_pending(
    inner: &Inner,
    cell: &JobCell,
    key: &str,
    deadline: Instant,
    now: Instant,
) -> Option<Vec<u8>> {
    if let Some(outcome) = cell.state.lock().unwrap().as_ref() {
        return Some(match outcome {
            Ok(bytes) => proto::result_response(key, bytes),
            Err(error_bytes) => {
                bump(&inner.metrics.errors);
                error_bytes.to_vec()
            }
        });
    }
    if now >= deadline {
        bump(&inner.metrics.deadline_timeouts);
        return Some(proto::timeout_response(key));
    }
    None
}
