//! The `hmtx-serve` server: bounded admission, single-flight execution,
//! two-tier caching, graceful drain.
//!
//! Request lifecycle for a `job`:
//!
//! 1. **Cache probe** — memory then disk; a hit answers immediately with the
//!    stored bytes spliced into the response envelope.
//! 2. **Admission** — under the scheduler lock: an identical in-flight job
//!    coalesces (the request waits on the same [`JobCell`], no duplicate
//!    simulation); a full queue answers `busy` with a retry hint; otherwise
//!    the job enqueues and the miss is counted.
//! 3. **Wait with deadline** — the connection thread waits on the cell up to
//!    the request's deadline. A timeout answers `timeout`, but the job keeps
//!    running and its report still lands in the cache — a retry is a hit.
//! 4. **Execution** — a worker pops the cell, runs
//!    [`hmtx_bench::run_job_report`], and inserts the report bytes into the
//!    cache *before* publishing the cell result and removing it from the
//!    in-flight map. A requester that misses the in-flight map therefore
//!    re-probes the cache under the scheduler lock and can never lose the
//!    race into a duplicate simulation.
//!
//! **Drain** ([`ServerHandle::drain`], or a `shutdown` request, or SIGTERM
//! in the binary): the listener stops accepting, queued and executing jobs
//! finish and answer normally, and new job requests on existing connections
//! answer `draining`. [`ServerHandle::wait`] returns once the workers have
//! gone idle.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hmtx_types::JobSpec;

use crate::cache::{ReportCache, Tier};
use crate::metrics::{bump, Metrics};
use crate::proto::{self, Request};

/// Server tunables. The defaults suit an interactive session; tests shrink
/// the queue and add an artificial execution delay to exercise backpressure
/// deterministically.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing simulations.
    pub workers: usize,
    /// Admission queue capacity; a full queue answers `busy`.
    pub queue_cap: usize,
    /// In-memory cache capacity, in reports.
    pub mem_cache_cap: usize,
    /// On-disk report store (`None` = memory-only).
    pub cache_dir: Option<PathBuf>,
    /// Deadline applied to job requests that carry none, in milliseconds.
    pub default_deadline_ms: u64,
    /// Retry hint returned with `busy` responses, in milliseconds.
    pub retry_after_ms: u64,
    /// Artificial delay before each execution — a test knob that makes
    /// queue-full and coalescing windows deterministic on any machine.
    pub execute_delay: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_cap: 64,
            mem_cache_cap: 512,
            cache_dir: None,
            default_deadline_ms: 120_000,
            retry_after_ms: 250,
            execute_delay: Duration::ZERO,
        }
    }
}

/// The published outcome of one execution: the report bytes, or a rendered
/// error response (shared by every coalesced waiter).
type CellOutcome = Result<Arc<Vec<u8>>, Arc<Vec<u8>>>;

/// One admitted job: requests for the same key share a cell, and the cell's
/// state is published exactly once by the executing worker.
struct JobCell {
    key: String,
    spec: JobSpec,
    /// `None` until finished.
    state: Mutex<Option<CellOutcome>>,
    done: Condvar,
}

struct Sched {
    queue: VecDeque<Arc<JobCell>>,
    inflight: HashMap<String, Arc<JobCell>>,
    executing: u64,
}

struct Inner {
    cfg: ServerConfig,
    metrics: Metrics,
    cache: ReportCache,
    sched: Mutex<Sched>,
    work: Condvar,
    draining: AtomicBool,
}

impl Inner {
    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.work.notify_all();
    }
}

/// A running server: its bound address and the handles to stop it.
pub struct ServerHandle {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins graceful drain: stop accepting, finish in-flight work, answer
    /// `draining` to new job requests.
    pub fn drain(&self) {
        self.inner.begin_drain();
    }

    /// Waits for drain to complete (in-flight jobs finished, workers
    /// exited). Call [`ServerHandle::drain`] first — otherwise this blocks
    /// until something else does.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Starts a server on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port).
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn start(addr: &str, cfg: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let inner = Arc::new(Inner {
            cache: ReportCache::new(cfg.mem_cache_cap, cfg.cache_dir.clone()),
            metrics: Metrics::new(),
            sched: Mutex::new(Sched {
                queue: VecDeque::new(),
                inflight: HashMap::new(),
                executing: 0,
            }),
            work: Condvar::new(),
            draining: AtomicBool::new(false),
            cfg,
        });

        let workers = (0..inner.cfg.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();

        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(&listener, &inner))
        };

        Ok(ServerHandle {
            inner,
            addr,
            accept: Some(accept),
            workers,
        })
    }
}

/// Polls the nonblocking listener so the thread can notice drain promptly
/// (no reliance on signal-interrupted `accept`).
fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        if inner.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = Arc::clone(inner);
                std::thread::spawn(move || handle_conn(&inner, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let cell = {
            let mut sched = inner.sched.lock().unwrap();
            loop {
                if let Some(cell) = sched.queue.pop_front() {
                    sched.executing += 1;
                    break Some(cell);
                }
                if inner.draining.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _timeout) = inner
                    .work
                    .wait_timeout(sched, Duration::from_millis(100))
                    .unwrap();
                sched = guard;
            }
        };
        let Some(cell) = cell else { return };
        execute(inner, &cell);
    }
}

fn execute(inner: &Inner, cell: &JobCell) {
    if !inner.cfg.execute_delay.is_zero() {
        std::thread::sleep(inner.cfg.execute_delay);
    }
    let started = Instant::now();
    let result = match hmtx_bench::run_job_report(&cell.spec) {
        Ok(report) => {
            let bytes = Arc::new(report.compact().into_bytes());
            // Cache BEFORE leaving the in-flight map: a requester that sees
            // the key absent from `inflight` re-probes the cache under the
            // scheduler lock and is guaranteed to find these bytes.
            let _ = inner.cache.put(&cell.key, Arc::clone(&bytes));
            bump(&inner.metrics.executed);
            let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            inner.metrics.record_service_us(us);
            Ok(bytes)
        }
        Err(e) => Err(Arc::new(proto::sim_error_response(&e))),
    };
    {
        let mut sched = inner.sched.lock().unwrap();
        sched.inflight.remove(&cell.key);
        sched.executing = sched.executing.saturating_sub(1);
    }
    *cell.state.lock().unwrap() = Some(result);
    cell.done.notify_all();
}

fn handle_conn(inner: &Arc<Inner>, mut stream: TcpStream) {
    // Small request/response frames must not sit in Nagle's buffer.
    let _ = stream.set_nodelay(true);
    loop {
        let frame = match proto::read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return,
        };
        bump(&inner.metrics.requests);
        let response = match Request::parse(&frame) {
            Err(message) => {
                bump(&inner.metrics.errors);
                proto::error_response(&message, &[])
            }
            Ok(Request::Ping) => proto::pong_response(),
            Ok(Request::Shutdown) => {
                inner.begin_drain();
                proto::ok_response()
            }
            Ok(Request::Stats) => {
                let (queue_depth, executing) = {
                    let sched = inner.sched.lock().unwrap();
                    (sched.queue.len() as u64, sched.executing)
                };
                proto::stats_response(&inner.metrics.snapshot(queue_depth, executing))
            }
            Ok(Request::Job { spec, deadline_ms }) => {
                bump(&inner.metrics.job_requests);
                handle_job(inner, &spec, deadline_ms)
            }
        };
        if proto::write_frame(&mut stream, &response).is_err() {
            return;
        }
    }
}

fn cache_answer(inner: &Inner, key: &str, bytes: &[u8], tier: Tier) -> Vec<u8> {
    match tier {
        Tier::Mem => bump(&inner.metrics.mem_hits),
        Tier::Disk => bump(&inner.metrics.disk_hits),
    }
    proto::result_response(key, bytes)
}

fn handle_job(inner: &Inner, spec: &JobSpec, deadline_ms: Option<u64>) -> Vec<u8> {
    let key = spec.key();

    // Fast path: cached report, no scheduler involvement.
    if let Some((bytes, tier)) = inner.cache.get(&key) {
        return cache_answer(inner, &key, &bytes, tier);
    }
    if inner.draining.load(Ordering::SeqCst) {
        bump(&inner.metrics.rejected_draining);
        return proto::draining_response();
    }

    // Admission, under the scheduler lock.
    let cell = {
        let mut sched = inner.sched.lock().unwrap();
        if let Some(cell) = sched.inflight.get(&key) {
            bump(&inner.metrics.coalesced_hits);
            Arc::clone(cell)
        } else if let Some((bytes, tier)) = inner.cache.get(&key) {
            // The job finished between the unlocked probe and here; the
            // worker caches before leaving `inflight`, so this re-probe
            // closes the race window completely.
            return cache_answer(inner, &key, &bytes, tier);
        } else if sched.queue.len() >= inner.cfg.queue_cap {
            bump(&inner.metrics.rejected_busy);
            return proto::busy_response(inner.cfg.retry_after_ms);
        } else {
            bump(&inner.metrics.misses);
            let cell = Arc::new(JobCell {
                key: key.clone(),
                spec: *spec,
                state: Mutex::new(None),
                done: Condvar::new(),
            });
            sched.queue.push_back(Arc::clone(&cell));
            sched.inflight.insert(key.clone(), Arc::clone(&cell));
            inner.work.notify_one();
            cell
        }
    };

    // Wait for the result, bounded by the deadline. On timeout the job
    // still completes and caches — a retry of the same spec is a hit.
    let deadline = Duration::from_millis(deadline_ms.unwrap_or(inner.cfg.default_deadline_ms));
    let guard = cell.state.lock().unwrap();
    let (guard, _timeout) = cell
        .done
        .wait_timeout_while(guard, deadline, |state| state.is_none())
        .unwrap();
    match &*guard {
        Some(Ok(bytes)) => proto::result_response(&key, bytes),
        Some(Err(error_bytes)) => {
            bump(&inner.metrics.errors);
            error_bytes.to_vec()
        }
        None => {
            bump(&inner.metrics.deadline_timeouts);
            proto::timeout_response(&key)
        }
    }
}
