//! Serving counters behind the `stats` endpoint.
//!
//! Counters are relaxed atomics — they are monotone tallies, not
//! synchronization — and service times feed an
//! [`hmtx_core::LatencyHistogram`] (log₂ microsecond buckets, saturating),
//! so a multi-day serve session can neither overflow a counter nor grow
//! unbounded timing state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hmtx_core::LatencyHistogram;
use hmtx_types::StatsSnapshot;

/// The server's counters. All methods are cheap and callable from any
/// thread.
#[derive(Default)]
pub struct Metrics {
    /// Requests received (all types).
    pub requests: AtomicU64,
    /// Job requests received.
    pub job_requests: AtomicU64,
    /// Jobs served from the in-memory cache.
    pub mem_hits: AtomicU64,
    /// Jobs served from the on-disk store.
    pub disk_hits: AtomicU64,
    /// Jobs coalesced onto an identical in-flight execution.
    pub coalesced_hits: AtomicU64,
    /// Jobs that had to simulate.
    pub misses: AtomicU64,
    /// Simulations executed to completion.
    pub executed: AtomicU64,
    /// Jobs rejected with backpressure.
    pub rejected_busy: AtomicU64,
    /// Jobs rejected because the server is draining.
    pub rejected_draining: AtomicU64,
    /// Requests whose deadline expired while waiting.
    pub deadline_timeouts: AtomicU64,
    /// Requests answered with an error.
    pub errors: AtomicU64,
    service: Mutex<LatencyHistogram>,
}

impl Metrics {
    /// Fresh zeroed metrics.
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one executed job's service time.
    pub fn record_service_us(&self, us: u64) {
        self.service.lock().unwrap().record_us(us);
    }

    /// Snapshots every counter; `queue_depth` and `inflight` are sampled by
    /// the caller (they live in the scheduler, not here).
    #[must_use]
    pub fn snapshot(&self, queue_depth: u64, inflight: u64) -> StatsSnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let (p50, p99, p999) = self.service.lock().unwrap().quantile_triple_us();
        StatsSnapshot {
            requests: get(&self.requests),
            job_requests: get(&self.job_requests),
            mem_hits: get(&self.mem_hits),
            disk_hits: get(&self.disk_hits),
            coalesced_hits: get(&self.coalesced_hits),
            misses: get(&self.misses),
            executed: get(&self.executed),
            rejected_busy: get(&self.rejected_busy),
            rejected_draining: get(&self.rejected_draining),
            deadline_timeouts: get(&self.deadline_timeouts),
            errors: get(&self.errors),
            queue_depth,
            inflight,
            p50_service_us: p50,
            p99_service_us: p99,
            p999_service_us: p999,
        }
    }
}

/// Bumps a counter (saturating is unnecessary for `fetch_add` on `u64`
/// tallies, but keep one spelling for every increment site).
pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters_and_quantiles() {
        let m = Metrics::new();
        bump(&m.requests);
        bump(&m.requests);
        bump(&m.job_requests);
        bump(&m.mem_hits);
        m.record_service_us(100);
        m.record_service_us(100);
        m.record_service_us(100_000);
        let s = m.snapshot(3, 1);
        assert_eq!(s.requests, 2);
        assert_eq!(s.job_requests, 1);
        assert_eq!(s.cache_hits(), 1);
        assert_eq!((s.queue_depth, s.inflight), (3, 1));
        assert!(s.p50_service_us >= 100 && s.p50_service_us < 100_000);
        assert!(s.p99_service_us >= 100_000);
    }
}
