//! SIGINT/SIGTERM → graceful drain, shared by the `hmtx-serve` and
//! `hmtx-router` binaries.
//!
//! The handler is async-signal-safe: it only flips a static atomic. The
//! binary's main loop watches [`drain_requested`] and performs the actual
//! drain outside signal context.

use std::sync::atomic::{AtomicBool, Ordering};

static DRAIN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    DRAIN.store(true, Ordering::SeqCst);
}

// Minimal libc FFI (std links libc already).
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

/// Installs the SIGINT/SIGTERM handlers. Call once at binary startup.
pub fn install_drain_handlers() {
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// True once SIGINT or SIGTERM has been received.
#[must_use]
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::SeqCst)
}
