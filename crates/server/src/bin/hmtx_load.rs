//! `hmtx-load` — load generator and cache-benchmark client for
//! `hmtx-serve`.
//!
//! ```text
//! hmtx-load --addr HOST:PORT [--clients N] [--rounds N] [--scale S]
//!           [--limit N] [--deadline-ms N] [--retries N] [--json PATH] [--check]
//! ```
//!
//! Submits the standard 80-job sweep ([`hmtx_bench::standard_sweep`]) over
//! `N` concurrent client connections, `--rounds` times. With the default
//! two rounds, round 0 measures the **cold** cache (every job simulates)
//! and round 1 the **warm** cache (every job replays), so one invocation
//! produces the cold-vs-warm comparison directly. `busy` backpressure is
//! retried with the server's hint.
//!
//! `--check` additionally verifies that every response is a `result` and
//! that responses for the same spec are **byte-identical across rounds**,
//! exiting nonzero otherwise. `--json PATH` writes the measurements
//! (per-round wall/throughput/latency quantiles and server counter deltas).

use std::sync::Mutex;
use std::time::Instant;

use hmtx_core::LatencyHistogram;
use hmtx_server::{response_type, Client};
use hmtx_types::{Json, StatsSnapshot, WireScale};

fn usage() -> ! {
    eprintln!(
        "usage: hmtx-load --addr HOST:PORT [--clients N] [--rounds N] \
         [--scale quick|standard|stress] [--limit N] [--deadline-ms N] \
         [--retries N] [--json PATH] [--check]"
    );
    std::process::exit(2);
}

struct RoundResult {
    wall_seconds: f64,
    ok: usize,
    latencies: LatencyHistogram,
    responses: Vec<Option<Vec<u8>>>,
    stats_delta: Option<(StatsSnapshot, StatsSnapshot)>,
}

fn main() {
    let mut addr: Option<String> = None;
    let mut clients: usize = 4;
    let mut rounds: usize = 2;
    let mut scale = WireScale::Quick;
    let mut limit: Option<usize> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut retries: u32 = 60;
    let mut json_path: Option<String> = None;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--addr" => addr = Some(value()),
            "--clients" => clients = value().parse().unwrap_or_else(|_| usage()),
            "--rounds" => rounds = value().parse().unwrap_or_else(|_| usage()),
            "--scale" => scale = WireScale::from_name(&value()).unwrap_or_else(|_| usage()),
            "--limit" => limit = Some(value().parse().unwrap_or_else(|_| usage())),
            "--deadline-ms" => deadline_ms = Some(value().parse().unwrap_or_else(|_| usage())),
            "--retries" => retries = value().parse().unwrap_or_else(|_| usage()),
            "--json" => json_path = Some(value()),
            "--check" => check = true,
            _ => usage(),
        }
    }
    let addr = addr.unwrap_or_else(|| usage());
    if clients == 0 || rounds == 0 {
        usage();
    }

    let mut specs = hmtx_bench::standard_sweep(scale);
    if let Some(n) = limit {
        specs.truncate(n);
    }
    if specs.is_empty() {
        eprintln!("hmtx-load: nothing to submit");
        std::process::exit(2);
    }

    let mut round_results: Vec<RoundResult> = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let before = Client::connect(&addr).and_then(|mut c| c.stats()).ok();
        let responses: Mutex<Vec<Option<Vec<u8>>>> = Mutex::new(vec![None; specs.len()]);
        let latencies: Mutex<LatencyHistogram> = Mutex::new(LatencyHistogram::new());
        let started = Instant::now();
        std::thread::scope(|s| {
            for worker in 0..clients.min(specs.len()) {
                let specs = &specs;
                let responses = &responses;
                let latencies = &latencies;
                let addr = &addr;
                s.spawn(move || {
                    let Ok(mut client) = Client::connect(addr) else {
                        return;
                    };
                    for (i, spec) in specs.iter().enumerate() {
                        if i % clients != worker {
                            continue;
                        }
                        let req_started = Instant::now();
                        let Ok(response) = client.job_with_retry(spec, deadline_ms, retries)
                        else {
                            return;
                        };
                        let us =
                            u64::try_from(req_started.elapsed().as_micros()).unwrap_or(u64::MAX);
                        latencies.lock().unwrap().record_us(us);
                        responses.lock().unwrap()[i] = Some(response);
                    }
                });
            }
        });
        let wall_seconds = started.elapsed().as_secs_f64();
        let after = Client::connect(&addr).and_then(|mut c| c.stats()).ok();
        let responses = responses.into_inner().unwrap();
        let ok = responses
            .iter()
            .filter(|r| {
                r.as_deref()
                    .is_some_and(|b| response_type(b).as_deref() == Some("result"))
            })
            .count();
        eprintln!(
            "hmtx-load: round {round}: {ok}/{} ok in {wall_seconds:.2}s",
            specs.len()
        );
        round_results.push(RoundResult {
            wall_seconds,
            ok,
            latencies: latencies.into_inner().unwrap(),
            responses,
            stats_delta: before.zip(after),
        });
    }

    let mut failures = 0usize;
    if check {
        for (i, spec) in specs.iter().enumerate() {
            let first = round_results[0].responses[i].as_deref();
            for (round, result) in round_results.iter().enumerate() {
                let got = result.responses[i].as_deref();
                if got.map(|b| response_type(b).as_deref() != Some("result")) != Some(false) {
                    eprintln!(
                        "hmtx-load: check failed: round {round} spec {} did not get a result",
                        spec.key()
                    );
                    failures += 1;
                } else if got != first {
                    eprintln!(
                        "hmtx-load: check failed: spec {} differs between rounds 0 and {round}",
                        spec.key()
                    );
                    failures += 1;
                }
            }
        }
        if failures == 0 {
            eprintln!(
                "hmtx-load: check ok: {} specs byte-identical across {} rounds",
                specs.len(),
                round_results.len()
            );
        }
    }

    if let Some(path) = json_path {
        let report = render_report(&specs.len(), clients, &round_results);
        if let Err(e) = std::fs::write(&path, report.pretty()) {
            eprintln!("hmtx-load: writing {path}: {e}");
            std::process::exit(1);
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

fn render_report(jobs: &usize, clients: usize, rounds: &[RoundResult]) -> Json {
    let round_json: Vec<Json> = rounds
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let throughput = if r.wall_seconds > 0.0 {
                r.ok as f64 / r.wall_seconds
            } else {
                0.0
            };
            let mut fields = vec![
                ("round", Json::Uint(i as u64)),
                ("jobs", Json::Uint(*jobs as u64)),
                ("ok", Json::Uint(r.ok as u64)),
                ("wall_seconds", Json::Num(r.wall_seconds)),
                ("throughput_jobs_per_s", Json::Num(throughput)),
                ("p50_us", Json::Uint(r.latencies.quantile_us(0.50))),
                ("p99_us", Json::Uint(r.latencies.quantile_us(0.99))),
            ];
            if let Some((before, after)) = &r.stats_delta {
                let delta = |get: fn(&StatsSnapshot) -> u64| {
                    Json::Uint(get(after).saturating_sub(get(before)))
                };
                fields.push((
                    "server_delta",
                    Json::obj(vec![
                        ("cache_hits", delta(StatsSnapshot::cache_hits)),
                        ("mem_hits", delta(|s| s.mem_hits)),
                        ("disk_hits", delta(|s| s.disk_hits)),
                        ("coalesced_hits", delta(|s| s.coalesced_hits)),
                        ("misses", delta(|s| s.misses)),
                        ("executed", delta(|s| s.executed)),
                        ("rejected_busy", delta(|s| s.rejected_busy)),
                    ]),
                ));
            }
            Json::obj(fields)
        })
        .collect();

    let mut top = vec![
        ("schema", Json::Str("hmtx-load-report/1".into())),
        ("clients", Json::Uint(clients as u64)),
        ("rounds", Json::Arr(round_json)),
    ];
    if rounds.len() >= 2 {
        let cold = &rounds[0];
        let warm = &rounds[rounds.len() - 1];
        let speedup = if warm.wall_seconds > 0.0 {
            cold.wall_seconds / warm.wall_seconds
        } else {
            0.0
        };
        top.push((
            "summary",
            Json::obj(vec![
                ("cold_wall_seconds", Json::Num(cold.wall_seconds)),
                ("warm_wall_seconds", Json::Num(warm.wall_seconds)),
                ("warm_over_cold_speedup", Json::Num(speedup)),
            ]),
        ));
    }
    Json::obj(top)
}
