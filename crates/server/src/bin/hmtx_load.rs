//! `hmtx-load` — load generator and cache-benchmark client for
//! `hmtx-serve`.
//!
//! ```text
//! hmtx-load --addr HOST:PORT [--clients N] [--rounds N] [--scale S]
//!           [--limit N] [--deadline-ms N] [--retries N] [--json PATH] [--check]
//! ```
//!
//! Submits the standard 80-job sweep ([`hmtx_bench::standard_sweep`]) over
//! `N` concurrent client connections, `--rounds` times. With the default
//! two rounds, round 0 measures the **cold** cache (every job simulates)
//! and round 1 the **warm** cache (every job replays), so one invocation
//! produces the cold-vs-warm comparison directly. `busy` backpressure is
//! retried with the server's hint.
//!
//! `--check` additionally verifies that every response is a `result` and
//! that responses for the same spec are **byte-identical across rounds**,
//! exiting nonzero otherwise. `--json PATH` writes the measurements
//! (per-round wall/throughput/latency quantiles and server counter deltas).
//!
//! `--sustained` switches to **open-loop** load: arrivals are scheduled on
//! a fixed clock at `--rate` per second for `--duration-s` seconds,
//! independent of how fast the server answers. Each arrival's latency is
//! measured from its *scheduled* time, so queueing delay when the server
//! falls behind shows up in the tail instead of silently throttling the
//! offered rate (the closed-loop coordinated-omission trap). The report
//! carries offered vs achieved throughput and p50/p99/p999.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use hmtx_core::LatencyHistogram;
use hmtx_server::{response_type, Client};
use hmtx_types::{Json, JobSpec, StatsSnapshot, WireScale};

fn usage() -> ! {
    eprintln!(
        "usage: hmtx-load --addr HOST:PORT [--clients N] [--rounds N] \
         [--scale quick|standard|stress] [--limit N] [--deadline-ms N] \
         [--retries N] [--json PATH] [--check] \
         [--sustained --rate R --duration-s D]"
    );
    std::process::exit(2);
}

struct RoundResult {
    wall_seconds: f64,
    ok: usize,
    latencies: LatencyHistogram,
    responses: Vec<Option<Vec<u8>>>,
    stats_delta: Option<(StatsSnapshot, StatsSnapshot)>,
}

fn main() {
    let mut addr: Option<String> = None;
    let mut clients: usize = 4;
    let mut rounds: usize = 2;
    let mut scale = WireScale::Quick;
    let mut limit: Option<usize> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut retries: u32 = 60;
    let mut json_path: Option<String> = None;
    let mut check = false;
    let mut sustained = false;
    let mut rate: f64 = 200.0;
    let mut duration_s: f64 = 10.0;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--addr" => addr = Some(value()),
            "--clients" => clients = value().parse().unwrap_or_else(|_| usage()),
            "--rounds" => rounds = value().parse().unwrap_or_else(|_| usage()),
            "--scale" => scale = WireScale::from_name(&value()).unwrap_or_else(|_| usage()),
            "--limit" => limit = Some(value().parse().unwrap_or_else(|_| usage())),
            "--deadline-ms" => deadline_ms = Some(value().parse().unwrap_or_else(|_| usage())),
            "--retries" => retries = value().parse().unwrap_or_else(|_| usage()),
            "--json" => json_path = Some(value()),
            "--check" => check = true,
            "--sustained" => sustained = true,
            "--rate" => rate = value().parse().unwrap_or_else(|_| usage()),
            "--duration-s" => duration_s = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    let addr = addr.unwrap_or_else(|| usage());
    if clients == 0 || rounds == 0 {
        usage();
    }

    let mut specs = hmtx_bench::standard_sweep(scale);
    if let Some(n) = limit {
        specs.truncate(n);
    }
    if specs.is_empty() {
        eprintln!("hmtx-load: nothing to submit");
        std::process::exit(2);
    }

    if sustained {
        if !rate.is_finite() || rate <= 0.0 || !duration_s.is_finite() || duration_s <= 0.0 {
            usage();
        }
        run_sustained(
            &addr,
            &specs,
            clients,
            rate,
            duration_s,
            deadline_ms,
            retries,
            json_path.as_deref(),
            check,
        );
        return;
    }

    let mut round_results: Vec<RoundResult> = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let before = Client::connect(&addr).and_then(|mut c| c.stats()).ok();
        let responses: Mutex<Vec<Option<Vec<u8>>>> = Mutex::new(vec![None; specs.len()]);
        let latencies: Mutex<LatencyHistogram> = Mutex::new(LatencyHistogram::new());
        let started = Instant::now();
        std::thread::scope(|s| {
            for worker in 0..clients.min(specs.len()) {
                let specs = &specs;
                let responses = &responses;
                let latencies = &latencies;
                let addr = &addr;
                s.spawn(move || {
                    let Ok(mut client) = Client::connect(addr) else {
                        return;
                    };
                    for (i, spec) in specs.iter().enumerate() {
                        if i % clients != worker {
                            continue;
                        }
                        let req_started = Instant::now();
                        let Ok(response) = client.job_with_retry(spec, deadline_ms, retries)
                        else {
                            return;
                        };
                        let us =
                            u64::try_from(req_started.elapsed().as_micros()).unwrap_or(u64::MAX);
                        latencies.lock().unwrap().record_us(us);
                        responses.lock().unwrap()[i] = Some(response);
                    }
                });
            }
        });
        let wall_seconds = started.elapsed().as_secs_f64();
        let after = Client::connect(&addr).and_then(|mut c| c.stats()).ok();
        let responses = responses.into_inner().unwrap();
        let ok = responses
            .iter()
            .filter(|r| {
                r.as_deref()
                    .is_some_and(|b| response_type(b).as_deref() == Some("result"))
            })
            .count();
        eprintln!(
            "hmtx-load: round {round}: {ok}/{} ok in {wall_seconds:.2}s",
            specs.len()
        );
        round_results.push(RoundResult {
            wall_seconds,
            ok,
            latencies: latencies.into_inner().unwrap(),
            responses,
            stats_delta: before.zip(after),
        });
    }

    let mut failures = 0usize;
    if check {
        for (i, spec) in specs.iter().enumerate() {
            let first = round_results[0].responses[i].as_deref();
            for (round, result) in round_results.iter().enumerate() {
                let got = result.responses[i].as_deref();
                if got.map(|b| response_type(b).as_deref() != Some("result")) != Some(false) {
                    eprintln!(
                        "hmtx-load: check failed: round {round} spec {} did not get a result",
                        spec.key()
                    );
                    failures += 1;
                } else if got != first {
                    eprintln!(
                        "hmtx-load: check failed: spec {} differs between rounds 0 and {round}",
                        spec.key()
                    );
                    failures += 1;
                }
            }
        }
        if failures == 0 {
            eprintln!(
                "hmtx-load: check ok: {} specs byte-identical across {} rounds",
                specs.len(),
                round_results.len()
            );
        }
    }

    if let Some(path) = json_path {
        let report = render_report(&specs.len(), clients, &round_results);
        if let Err(e) = std::fs::write(&path, report.pretty()) {
            eprintln!("hmtx-load: writing {path}: {e}");
            std::process::exit(1);
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

/// Open-loop sustained load: arrival `i` is *scheduled* at
/// `start + i/rate` regardless of server speed. `clients` threads claim
/// arrival indexes from one shared counter, sleep until their arrival's
/// scheduled time (or not at all once the generator is behind), and cycle
/// round-robin through the sweep's specs. Latency runs from the scheduled
/// time, so a saturated server's queueing shows up as tail latency and a
/// shortfall of `achieved_rps` against `offered_rps` — never as a quietly
/// slower offered rate.
#[allow(clippy::too_many_arguments)]
fn run_sustained(
    addr: &str,
    specs: &[JobSpec],
    clients: usize,
    rate: f64,
    duration_s: f64,
    deadline_ms: Option<u64>,
    retries: u32,
    json_path: Option<&str>,
    check: bool,
) {
    let next_arrival = AtomicUsize::new(0);
    let ok = AtomicUsize::new(0);
    let still_busy = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    let latencies: Mutex<LatencyHistogram> = Mutex::new(LatencyHistogram::new());
    let before = Client::connect(addr).and_then(|mut c| c.stats()).ok();

    let start = Instant::now();
    let deadline = start + Duration::from_secs_f64(duration_s);
    std::thread::scope(|s| {
        for _ in 0..clients {
            let next_arrival = &next_arrival;
            let ok = &ok;
            let still_busy = &still_busy;
            let failed = &failed;
            let latencies = &latencies;
            s.spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(_) => return,
                };
                loop {
                    let i = next_arrival.fetch_add(1, Ordering::Relaxed);
                    let scheduled = start + Duration::from_secs_f64(i as f64 / rate);
                    if scheduled >= deadline {
                        break;
                    }
                    let now = Instant::now();
                    if scheduled > now {
                        std::thread::sleep(scheduled - now);
                    }
                    let spec = &specs[i % specs.len()];
                    match client.job_with_retry(spec, deadline_ms, retries) {
                        Ok(response) => {
                            let us = u64::try_from(scheduled.elapsed().as_micros())
                                .unwrap_or(u64::MAX);
                            latencies.lock().unwrap().record_us(us);
                            match response_type(&response).as_deref() {
                                Some("result") => ok.fetch_add(1, Ordering::Relaxed),
                                Some("busy") => still_busy.fetch_add(1, Ordering::Relaxed),
                                _ => failed.fetch_add(1, Ordering::Relaxed),
                            };
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            // Reconnect; a dropped connection must not
                            // silently retire this generator thread.
                            match Client::connect(addr) {
                                Ok(c) => client = c,
                                Err(_) => return,
                            }
                        }
                    }
                }
            });
        }
    });
    let wall_seconds = start.elapsed().as_secs_f64();
    let after = Client::connect(addr).and_then(|mut c| c.stats()).ok();

    let ok = ok.into_inner();
    let still_busy = still_busy.into_inner();
    let failed = failed.into_inner();
    let latencies = latencies.into_inner().unwrap();
    let scheduled_arrivals = next_arrival.into_inner().min((rate * duration_s).ceil() as usize);
    let achieved_rps = if wall_seconds > 0.0 {
        ok as f64 / wall_seconds
    } else {
        0.0
    };
    let (p50, p99, p999) = latencies.quantile_triple_us();
    eprintln!(
        "hmtx-load: sustained {rate:.0}/s for {duration_s:.1}s: \
         {ok}/{scheduled_arrivals} ok ({still_busy} busy, {failed} failed), \
         achieved {achieved_rps:.1}/s, p50 {p50}us p99 {p99}us p999 {p999}us"
    );

    let mut fields = vec![
        ("schema", Json::Str("hmtx-load-sustained/1".into())),
        ("clients", Json::Uint(clients as u64)),
        ("offered_rps", Json::Num(rate)),
        ("duration_s", Json::Num(duration_s)),
        ("wall_seconds", Json::Num(wall_seconds)),
        ("scheduled_arrivals", Json::Uint(scheduled_arrivals as u64)),
        ("ok", Json::Uint(ok as u64)),
        ("still_busy", Json::Uint(still_busy as u64)),
        ("failed", Json::Uint(failed as u64)),
        ("achieved_rps", Json::Num(achieved_rps)),
        ("p50_us", Json::Uint(p50)),
        ("p99_us", Json::Uint(p99)),
        ("p999_us", Json::Uint(p999)),
    ];
    if let (Some(before), Some(after)) = (before, after) {
        let delta =
            |get: fn(&StatsSnapshot) -> u64| Json::Uint(get(&after).saturating_sub(get(&before)));
        fields.push((
            "server_delta",
            Json::obj(vec![
                ("cache_hits", delta(StatsSnapshot::cache_hits)),
                ("mem_hits", delta(|s| s.mem_hits)),
                ("misses", delta(|s| s.misses)),
                ("executed", delta(|s| s.executed)),
                ("rejected_busy", delta(|s| s.rejected_busy)),
            ]),
        ));
    }
    let report = Json::obj(fields);
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(path, report.pretty()) {
            eprintln!("hmtx-load: writing {path}: {e}");
            std::process::exit(1);
        }
    } else {
        print!("{}", report.pretty());
    }
    if check && (ok == 0 || failed > 0) {
        eprintln!("hmtx-load: sustained check failed: ok={ok} failed={failed}");
        std::process::exit(1);
    }
}

fn render_report(jobs: &usize, clients: usize, rounds: &[RoundResult]) -> Json {
    let round_json: Vec<Json> = rounds
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let throughput = if r.wall_seconds > 0.0 {
                r.ok as f64 / r.wall_seconds
            } else {
                0.0
            };
            let mut fields = vec![
                ("round", Json::Uint(i as u64)),
                ("jobs", Json::Uint(*jobs as u64)),
                ("ok", Json::Uint(r.ok as u64)),
                ("wall_seconds", Json::Num(r.wall_seconds)),
                ("throughput_jobs_per_s", Json::Num(throughput)),
                ("p50_us", Json::Uint(r.latencies.quantile_us(0.50))),
                ("p99_us", Json::Uint(r.latencies.quantile_us(0.99))),
                ("p999_us", Json::Uint(r.latencies.quantile_us(0.999))),
            ];
            if let Some((before, after)) = &r.stats_delta {
                let delta = |get: fn(&StatsSnapshot) -> u64| {
                    Json::Uint(get(after).saturating_sub(get(before)))
                };
                fields.push((
                    "server_delta",
                    Json::obj(vec![
                        ("cache_hits", delta(StatsSnapshot::cache_hits)),
                        ("mem_hits", delta(|s| s.mem_hits)),
                        ("disk_hits", delta(|s| s.disk_hits)),
                        ("coalesced_hits", delta(|s| s.coalesced_hits)),
                        ("misses", delta(|s| s.misses)),
                        ("executed", delta(|s| s.executed)),
                        ("rejected_busy", delta(|s| s.rejected_busy)),
                    ]),
                ));
            }
            Json::obj(fields)
        })
        .collect();

    let mut top = vec![
        ("schema", Json::Str("hmtx-load-report/1".into())),
        ("clients", Json::Uint(clients as u64)),
        ("rounds", Json::Arr(round_json)),
    ];
    if rounds.len() >= 2 {
        let cold = &rounds[0];
        let warm = &rounds[rounds.len() - 1];
        let speedup = if warm.wall_seconds > 0.0 {
            cold.wall_seconds / warm.wall_seconds
        } else {
            0.0
        };
        top.push((
            "summary",
            Json::obj(vec![
                ("cold_wall_seconds", Json::Num(cold.wall_seconds)),
                ("warm_wall_seconds", Json::Num(warm.wall_seconds)),
                ("warm_over_cold_speedup", Json::Num(speedup)),
            ]),
        ));
    }
    Json::obj(top)
}
