//! `hmtx-serve` — the simulation server binary.
//!
//! ```text
//! hmtx-serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!            [--mem-cache N] [--shards N] [--cache-dir DIR] [--mem-only]
//!            [--deadline-ms N] [--retry-after-ms N]
//! ```
//!
//! Prints `listening on ADDR` once bound (scripts parse this to learn an
//! ephemeral port). SIGTERM or SIGINT begins a graceful drain: in-flight
//! jobs finish and answer, new job requests answer `draining`, and the
//! process exits once the workers are idle.
//!
//! `--mem-only` disables the disk tier entirely (otherwise a default cache
//! directory under `target/` is used when `--cache-dir` is not given) —
//! the capacity-bound configuration the cluster benchmark uses to show
//! aggregate-cache scaling.

use std::time::Duration;

use hmtx_server::{ServerConfig, ServerHandle};

fn usage() -> ! {
    eprintln!(
        "usage: hmtx-serve [--addr HOST:PORT] [--workers N] [--queue-cap N] \
         [--mem-cache N] [--shards N] [--cache-dir DIR] [--mem-only] \
         [--deadline-ms N] [--retry-after-ms N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7870".to_string();
    let mut cfg = ServerConfig::default();
    let mut mem_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--addr" => addr = value(),
            "--workers" => cfg.workers = value().parse().unwrap_or_else(|_| usage()),
            "--queue-cap" => cfg.queue_cap = value().parse().unwrap_or_else(|_| usage()),
            "--mem-cache" => cfg.mem_cache_cap = value().parse().unwrap_or_else(|_| usage()),
            "--shards" => cfg.shards = value().parse().unwrap_or_else(|_| usage()),
            "--cache-dir" => cfg.cache_dir = Some(value().into()),
            "--mem-only" => mem_only = true,
            "--deadline-ms" => {
                cfg.default_deadline_ms = value().parse().unwrap_or_else(|_| usage());
            }
            "--retry-after-ms" => cfg.retry_after_ms = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if mem_only {
        cfg.cache_dir = None;
    } else if cfg.cache_dir.is_none() {
        // Default the disk tier under target/ so repeated local sessions
        // warm each other without polluting the tree.
        cfg.cache_dir = Some("target/hmtx-serve-cache".into());
    }

    hmtx_server::install_drain_handlers();

    let handle = match ServerHandle::start(&addr, cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("hmtx-serve: binding {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", handle.addr());

    while !hmtx_server::drain_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("hmtx-serve: draining (finishing in-flight jobs)");
    handle.drain();
    handle.wait();
    eprintln!("hmtx-serve: drained, exiting");
}
