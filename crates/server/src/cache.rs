//! The two-tier report cache: in-memory LRU over an on-disk store.
//!
//! Reports are cached by content-addressed job key ([`hmtx_types::JobSpec::key`])
//! as their exact compact-JSON bytes — the cache stores and returns *bytes*,
//! never re-serialized values, so a cached response is byte-identical to the
//! freshly computed one.
//!
//! The memory tier is a small LRU (logical-clock recency, O(n) eviction —
//! capacities are tens to thousands of entries, not millions). The disk
//! tier persists every insert under `<dir>/<key>.json` via write-to-temp +
//! atomic rename, so a crashed or killed server never leaves a torn report
//! behind, and a restarted server warms itself from its predecessor's work.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which tier satisfied a lookup (drives the `mem_hits`/`disk_hits`
/// counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The in-memory LRU.
    Mem,
    /// The on-disk store.
    Disk,
}

struct MemCache {
    cap: usize,
    tick: u64,
    map: HashMap<String, (u64, Arc<Vec<u8>>)>,
}

impl MemCache {
    fn get(&mut self, key: &str) -> Option<Arc<Vec<u8>>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(at, bytes)| {
            *at = tick;
            Arc::clone(bytes)
        })
    }

    fn put(&mut self, key: &str, bytes: Arc<Vec<u8>>) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        self.map.insert(key.to_string(), (self.tick, bytes));
        while self.map.len() > self.cap {
            // O(n) LRU eviction: fine at these capacities, zero extra state.
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, (at, _))| *at)
                .map(|(k, _)| k.clone());
            match oldest {
                Some(k) => {
                    self.map.remove(&k);
                }
                None => break,
            }
        }
    }
}

/// The report cache: memory LRU in front of an optional disk store.
pub struct ReportCache {
    mem: Mutex<MemCache>,
    disk: Option<PathBuf>,
    tmp_serial: AtomicU64,
}

impl ReportCache {
    /// A cache holding up to `mem_cap` reports in memory, persisting to
    /// `disk_dir` when given (the directory is created on first insert).
    #[must_use]
    pub fn new(mem_cap: usize, disk_dir: Option<PathBuf>) -> Self {
        ReportCache {
            mem: Mutex::new(MemCache {
                cap: mem_cap,
                tick: 0,
                map: HashMap::new(),
            }),
            disk: disk_dir,
            tmp_serial: AtomicU64::new(0),
        }
    }

    fn disk_path(&self, key: &str) -> Option<PathBuf> {
        // Keys are 32 lowercase hex characters; refuse anything else so a
        // forged key can never traverse outside the cache directory.
        if key.len() != 32 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        self.disk.as_ref().map(|d| d.join(format!("{key}.json")))
    }

    /// Looks the key up, promoting disk hits into the memory tier.
    pub fn get(&self, key: &str) -> Option<(Arc<Vec<u8>>, Tier)> {
        if let Some(bytes) = self.mem.lock().unwrap().get(key) {
            return Some((bytes, Tier::Mem));
        }
        let path = self.disk_path(key)?;
        match std::fs::read(&path) {
            Ok(bytes) => {
                let bytes = Arc::new(bytes);
                self.mem.lock().unwrap().put(key, Arc::clone(&bytes));
                Some((bytes, Tier::Disk))
            }
            Err(_) => None,
        }
    }

    /// Inserts into both tiers. Disk write errors are reported (the entry
    /// still serves from memory; a read-only cache dir degrades the server
    /// to memory-only instead of failing requests).
    ///
    /// # Errors
    ///
    /// Returns the disk-tier I/O error, if any.
    pub fn put(&self, key: &str, bytes: Arc<Vec<u8>>) -> io::Result<()> {
        self.mem.lock().unwrap().put(key, Arc::clone(&bytes));
        let Some(path) = self.disk_path(key) else {
            return Ok(());
        };
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        // Unique temp name per writer, then atomic rename: concurrent
        // inserts of the same key race benignly (identical bytes).
        let serial = self.tmp_serial.fetch_add(1, Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp.{serial}"));
        std::fs::write(&tmp, bytes.as_slice())?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8) -> String {
        format!("{:032x}", u128::from(n))
    }

    #[test]
    fn memory_tier_hits_and_evicts_lru() {
        let cache = ReportCache::new(2, None);
        cache.put(&key(1), Arc::new(b"one".to_vec())).unwrap();
        cache.put(&key(2), Arc::new(b"two".to_vec())).unwrap();
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(cache.get(&key(1)).unwrap().1, Tier::Mem);
        cache.put(&key(3), Arc::new(b"three".to_vec())).unwrap();
        assert!(cache.get(&key(2)).is_none(), "LRU entry must be evicted");
        assert_eq!(*cache.get(&key(1)).unwrap().0, b"one".to_vec());
        assert_eq!(*cache.get(&key(3)).unwrap().0, b"three".to_vec());
    }

    #[test]
    fn disk_tier_persists_across_instances_and_promotes() {
        let dir = std::env::temp_dir().join(format!("hmtx-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = ReportCache::new(4, Some(dir.clone()));
            cache.put(&key(7), Arc::new(b"report".to_vec())).unwrap();
        }
        let fresh = ReportCache::new(4, Some(dir.clone()));
        let (bytes, tier) = fresh.get(&key(7)).expect("disk tier must serve");
        assert_eq!((bytes.as_slice(), tier), (&b"report"[..], Tier::Disk));
        // Promoted: the second lookup is a memory hit.
        assert_eq!(fresh.get(&key(7)).unwrap().1, Tier::Mem);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_keys_never_touch_disk() {
        let dir = std::env::temp_dir().join(format!("hmtx-cache-evil-{}", std::process::id()));
        let cache = ReportCache::new(4, Some(dir.clone()));
        for evil in ["../../etc/passwd", "short", &"x".repeat(32)] {
            assert!(cache.disk_path(evil).is_none(), "{evil}");
            // Still serves from memory.
            cache.put(evil, Arc::new(b"v".to_vec())).unwrap();
            assert_eq!(cache.get(evil).unwrap().1, Tier::Mem);
        }
        assert!(!dir.exists(), "no directory may be created for bad keys");
    }

    #[test]
    fn zero_capacity_memory_tier_stays_empty() {
        let cache = ReportCache::new(0, None);
        cache.put(&key(1), Arc::new(b"one".to_vec())).unwrap();
        assert!(cache.get(&key(1)).is_none());
    }
}
