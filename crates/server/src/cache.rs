//! The two-tier report cache: a **sharded** in-memory LRU over an on-disk
//! store.
//!
//! Reports are cached by content-addressed job key ([`hmtx_types::JobSpec::key`])
//! as their exact compact-JSON bytes — the cache stores and returns *bytes*,
//! never re-serialized values, so a cached response is byte-identical to the
//! freshly computed one.
//!
//! The memory tier is split into [`shard_count`](ReportCache::shard_count)
//! independently locked LRU shards, selected by the leading hex characters
//! of the key ([`shard_index`]). Content keys are uniform hashes, so the
//! prefix spreads load evenly and two requests for different keys almost
//! never contend on the same lock. The total capacity is divided across
//! shards ([`shard_caps`]), each shard evicting LRU **within itself**
//! (logical-clock recency, O(n) eviction over a shard's slice of the
//! capacity). The server keys its single-flight registry with the same
//! [`shard_index`], which is what keeps the PR 4 coalescing invariant
//! (cache-insert happens-before in-flight removal, re-probe under the same
//! lock) intact per shard without any global lock.
//!
//! The disk tier persists every insert under `<dir>/<key>.json` via
//! write-to-temp + atomic rename, so a crashed or killed server never
//! leaves a torn report behind, and a restarted server warms itself from
//! its predecessor's work.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which tier satisfied a lookup (drives the `mem_hits`/`disk_hits`
/// counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The in-memory LRU.
    Mem,
    /// The on-disk store.
    Disk,
}

/// Default number of memory-tier shards. Sixteen single-nibble shards keep
/// per-shard mutexes essentially uncontended at worker-pool concurrency
/// while staying trivial to reason about in tests.
pub const DEFAULT_SHARDS: usize = 16;

/// The memory shard a key lives in: its leading hex characters folded into
/// `0..shards`. Content keys are 32 uniform lowercase-hex characters, so
/// the prefix balances; non-hex bytes (hostile keys that the disk tier
/// rejects anyway) still map deterministically.
#[must_use]
pub fn shard_index(key: &str, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let fold = key.bytes().take(2).fold(0usize, |acc, b| {
        let v = match b {
            b'0'..=b'9' => b - b'0',
            b'a'..=b'f' => b - b'a' + 10,
            b'A'..=b'F' => b - b'A' + 10,
            other => other & 0x0f,
        };
        acc * 16 + v as usize
    });
    fold % shards
}

/// Splits a total capacity as evenly as possible across `shards`: the first
/// `cap % shards` shards get one extra slot, and the per-shard counts sum
/// to exactly `cap`.
#[must_use]
pub fn shard_caps(cap: usize, shards: usize) -> Vec<usize> {
    let shards = shards.max(1);
    let base = cap / shards;
    let extra = cap % shards;
    (0..shards)
        .map(|i| base + usize::from(i < extra))
        .collect()
}

struct MemCache {
    cap: usize,
    tick: u64,
    map: HashMap<String, (u64, Arc<Vec<u8>>)>,
}

impl MemCache {
    fn get(&mut self, key: &str) -> Option<Arc<Vec<u8>>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(at, bytes)| {
            *at = tick;
            Arc::clone(bytes)
        })
    }

    fn put(&mut self, key: &str, bytes: Arc<Vec<u8>>) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        self.map.insert(key.to_string(), (self.tick, bytes));
        while self.map.len() > self.cap {
            // O(n) LRU eviction: fine at per-shard capacities, zero extra
            // state.
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, (at, _))| *at)
                .map(|(k, _)| k.clone());
            match oldest {
                Some(k) => {
                    self.map.remove(&k);
                }
                None => break,
            }
        }
    }
}

/// The report cache: sharded memory LRU in front of an optional disk store.
pub struct ReportCache {
    shards: Vec<Mutex<MemCache>>,
    disk: Option<PathBuf>,
    tmp_serial: AtomicU64,
}

impl ReportCache {
    /// A cache holding up to `mem_cap` reports in memory across
    /// [`DEFAULT_SHARDS`] shards, persisting to `disk_dir` when given (the
    /// directory is created on first insert).
    #[must_use]
    pub fn new(mem_cap: usize, disk_dir: Option<PathBuf>) -> Self {
        Self::with_shards(mem_cap, DEFAULT_SHARDS, disk_dir)
    }

    /// A cache with an explicit memory-shard count (tests pin 1 to recover
    /// the PR 4 single-LRU behavior, or a prime to stress the prefix fold).
    /// The effective shard count is clamped to the capacity so a small
    /// cache never ends up with zero-capacity shards that silently drop
    /// their keys.
    #[must_use]
    pub fn with_shards(mem_cap: usize, shards: usize, disk_dir: Option<PathBuf>) -> Self {
        let shards = shards.clamp(1, mem_cap.max(1));
        ReportCache {
            shards: shard_caps(mem_cap, shards)
                .into_iter()
                .map(|cap| {
                    Mutex::new(MemCache {
                        cap,
                        tick: 0,
                        map: HashMap::new(),
                    })
                })
                .collect(),
            disk: disk_dir,
            tmp_serial: AtomicU64::new(0),
        }
    }

    /// Number of memory shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `key` maps to (shared with the server's single-flight
    /// registry so both agree on which lock covers a key).
    #[must_use]
    pub fn shard_of(&self, key: &str) -> usize {
        shard_index(key, self.shards.len())
    }

    /// Total entries resident in the memory tier (sums the shards; for
    /// tests and observability, not a hot path).
    #[must_use]
    pub fn mem_len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().map.len()).sum()
    }

    /// Entries resident in one memory shard.
    #[must_use]
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].lock().unwrap().map.len()
    }

    fn disk_path(&self, key: &str) -> Option<PathBuf> {
        // Keys are 32 lowercase hex characters; refuse anything else so a
        // forged key can never traverse outside the cache directory.
        if key.len() != 32 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        self.disk.as_ref().map(|d| d.join(format!("{key}.json")))
    }

    /// Looks the key up, promoting disk hits into the memory tier.
    pub fn get(&self, key: &str) -> Option<(Arc<Vec<u8>>, Tier)> {
        let shard = &self.shards[self.shard_of(key)];
        if let Some(bytes) = shard.lock().unwrap().get(key) {
            return Some((bytes, Tier::Mem));
        }
        let path = self.disk_path(key)?;
        match std::fs::read(&path) {
            Ok(bytes) => {
                let bytes = Arc::new(bytes);
                shard.lock().unwrap().put(key, Arc::clone(&bytes));
                Some((bytes, Tier::Disk))
            }
            Err(_) => None,
        }
    }

    /// Inserts into both tiers. Disk write errors are reported (the entry
    /// still serves from memory; a read-only cache dir degrades the server
    /// to memory-only instead of failing requests).
    ///
    /// # Errors
    ///
    /// Returns the disk-tier I/O error, if any.
    pub fn put(&self, key: &str, bytes: Arc<Vec<u8>>) -> io::Result<()> {
        self.shards[self.shard_of(key)]
            .lock()
            .unwrap()
            .put(key, Arc::clone(&bytes));
        let Some(path) = self.disk_path(key) else {
            return Ok(());
        };
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        // Unique temp name per writer, then atomic rename: concurrent
        // inserts of the same key race benignly (identical bytes).
        let serial = self.tmp_serial.fetch_add(1, Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp.{serial}"));
        std::fs::write(&tmp, bytes.as_slice())?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8) -> String {
        format!("{:032x}", u128::from(n))
    }

    /// A key that lands in `shard` of `shards` (brute-forced leading byte).
    fn key_in_shard(shard: usize, shards: usize, salt: u32) -> String {
        (0..=255u32)
            .map(|p| format!("{p:02x}{salt:030x}"))
            .find(|k| shard_index(k, shards) == shard)
            .expect("every shard is reachable from some two-hex prefix")
    }

    #[test]
    fn memory_tier_hits_and_evicts_lru() {
        // One shard recovers the PR 4 single-LRU semantics exactly.
        let cache = ReportCache::with_shards(2, 1, None);
        cache.put(&key(1), Arc::new(b"one".to_vec())).unwrap();
        cache.put(&key(2), Arc::new(b"two".to_vec())).unwrap();
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(cache.get(&key(1)).unwrap().1, Tier::Mem);
        cache.put(&key(3), Arc::new(b"three".to_vec())).unwrap();
        assert!(cache.get(&key(2)).is_none(), "LRU entry must be evicted");
        assert_eq!(*cache.get(&key(1)).unwrap().0, b"one".to_vec());
        assert_eq!(*cache.get(&key(3)).unwrap().0, b"three".to_vec());
    }

    #[test]
    fn shard_caps_sum_to_capacity_and_spread_evenly() {
        for (cap, shards) in [(0, 16), (1, 16), (15, 16), (16, 16), (100, 16), (7, 3)] {
            let caps = shard_caps(cap, shards);
            assert_eq!(caps.len(), shards);
            assert_eq!(caps.iter().sum::<usize>(), cap, "cap {cap} shards {shards}");
            let (min, max) = (caps.iter().min().unwrap(), caps.iter().max().unwrap());
            assert!(max - min <= 1, "even split: {caps:?}");
        }
    }

    #[test]
    fn shard_index_is_deterministic_prefix_based_and_in_range() {
        for shards in [1, 2, 3, 16, 17] {
            for n in 0..64u8 {
                let k = key(n);
                let s = shard_index(&k, shards);
                assert!(s < shards);
                assert_eq!(s, shard_index(&k, shards), "deterministic");
            }
        }
        // Prefix-based: keys sharing the first two characters co-locate.
        let a = "ab0000000000000000000000000000aa";
        let b = "ab1111111111111111111111111111bb";
        assert_eq!(shard_index(a, 16), shard_index(b, 16));
        // Hostile non-hex keys still map in range.
        assert!(shard_index("../../etc/passwd", 16) < 16);
        assert_eq!(shard_index("anything", 1), 0);
    }

    #[test]
    fn eviction_is_per_shard_not_global() {
        // 2 shards × 1 slot each. Filling shard 0 twice must evict within
        // shard 0 and leave shard 1's resident entry alone.
        let cache = ReportCache::with_shards(2, 2, None);
        let s0a = key_in_shard(0, 2, 1);
        let s0b = key_in_shard(0, 2, 2);
        let s1 = key_in_shard(1, 2, 3);
        cache.put(&s1, Arc::new(b"one".to_vec())).unwrap();
        cache.put(&s0a, Arc::new(b"a".to_vec())).unwrap();
        cache.put(&s0b, Arc::new(b"b".to_vec())).unwrap();
        assert!(cache.get(&s0a).is_none(), "evicted within its own shard");
        assert!(cache.get(&s0b).is_some());
        assert!(cache.get(&s1).is_some(), "other shard untouched");
        assert_eq!(cache.mem_len(), 2);
    }

    #[test]
    fn disk_tier_persists_across_instances_and_promotes() {
        let dir = std::env::temp_dir().join(format!("hmtx-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = ReportCache::new(4, Some(dir.clone()));
            cache.put(&key(7), Arc::new(b"report".to_vec())).unwrap();
        }
        let fresh = ReportCache::new(4, Some(dir.clone()));
        let (bytes, tier) = fresh.get(&key(7)).expect("disk tier must serve");
        assert_eq!((bytes.as_slice(), tier), (&b"report"[..], Tier::Disk));
        // Promoted: the second lookup is a memory hit.
        assert_eq!(fresh.get(&key(7)).unwrap().1, Tier::Mem);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_keys_never_touch_disk() {
        let dir = std::env::temp_dir().join(format!("hmtx-cache-evil-{}", std::process::id()));
        let cache = ReportCache::new(4, Some(dir.clone()));
        for evil in ["../../etc/passwd", "short", &"x".repeat(32)] {
            assert!(cache.disk_path(evil).is_none(), "{evil}");
            // Still serves from memory.
            cache.put(evil, Arc::new(b"v".to_vec())).unwrap();
            assert_eq!(cache.get(evil).unwrap().1, Tier::Mem);
        }
        assert!(!dir.exists(), "no directory may be created for bad keys");
    }

    #[test]
    fn zero_capacity_memory_tier_stays_empty() {
        let cache = ReportCache::new(0, None);
        cache.put(&key(1), Arc::new(b"one".to_vec())).unwrap();
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.mem_len(), 0);
    }
}
