//! `hmtx-serve`: deterministic simulation-as-a-service.
//!
//! A multi-threaded TCP server that runs HMTX simulation jobs on demand.
//! Requests name a job as an [`hmtx_types::JobSpec`] (workload, paradigm,
//! machine configuration, fault plan, scale); the spec canonicalizes to a
//! content-addressed key, and results flow through a two-tier cache
//! (in-memory LRU over an on-disk store) so identical jobs get
//! **byte-identical** reports whether computed or replayed.
//!
//! The serving layer is production-shaped without leaving the standard
//! library: a poll(2)-based readiness loop (thousands of idle connections
//! cost buffers, not threads), a configurable worker pool over a bounded
//! admission queue with explicit backpressure (`busy` + retry hint),
//! request coalescing (identical concurrent specs simulate once) sharded
//! by key prefix alongside the memory cache, per-request deadlines,
//! graceful drain on SIGTERM/`shutdown`, and a `stats` endpoint with cache
//! and latency counters. `hmtx-router` (crates/cluster) consistent-hashes
//! keys across many such nodes over the same frame protocol.
//!
//! # Example
//!
//! ```no_run
//! use hmtx_server::{Client, ServerConfig, ServerHandle};
//! use hmtx_types::{BenchRef, JobSpec, WireBase, WireParadigm, WireScale};
//!
//! let handle = ServerHandle::start("127.0.0.1:0", ServerConfig::default())?;
//! let mut client = Client::connect(&handle.addr().to_string())?;
//! let spec = JobSpec::new(
//!     BenchRef::Suite(7),
//!     WireParadigm::Paper,
//!     WireScale::Quick,
//!     WireBase::Test,
//! );
//! let response = client.job(&spec, None)?;
//! assert_eq!(hmtx_server::response_type(&response).as_deref(), Some("result"));
//! handle.drain();
//! handle.wait();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod metrics;
pub mod proto;
mod ready;
pub mod server;
pub mod signals;

pub use cache::{shard_index, ReportCache, Tier};
pub use client::{
    backoff_ms, busy_retry_after, parse_response, response_type, spec_jitter_seed, Client,
};
pub use metrics::Metrics;
pub use proto::{read_frame, write_frame, Request, MAX_FRAME};
pub use server::{ServerConfig, ServerHandle};
pub use signals::{drain_requested, install_drain_handlers};
