//! `hmtx-serve`: deterministic simulation-as-a-service.
//!
//! A multi-threaded TCP server that runs HMTX simulation jobs on demand.
//! Requests name a job as an [`hmtx_types::JobSpec`] (workload, paradigm,
//! machine configuration, fault plan, scale); the spec canonicalizes to a
//! content-addressed key, and results flow through a two-tier cache
//! (in-memory LRU over an on-disk store) so identical jobs get
//! **byte-identical** reports whether computed or replayed.
//!
//! The serving layer is production-shaped without leaving the standard
//! library: a bounded admission queue with explicit backpressure
//! (`busy` + retry hint), request coalescing (identical concurrent specs
//! simulate once), per-request deadlines, graceful drain on
//! SIGTERM/`shutdown`, and a `stats` endpoint with cache and latency
//! counters.
//!
//! # Example
//!
//! ```no_run
//! use hmtx_server::{Client, ServerConfig, ServerHandle};
//! use hmtx_types::{BenchRef, JobSpec, WireBase, WireParadigm, WireScale};
//!
//! let handle = ServerHandle::start("127.0.0.1:0", ServerConfig::default())?;
//! let mut client = Client::connect(&handle.addr().to_string())?;
//! let spec = JobSpec::new(
//!     BenchRef::Suite(7),
//!     WireParadigm::Paper,
//!     WireScale::Quick,
//!     WireBase::Test,
//! );
//! let response = client.job(&spec, None)?;
//! assert_eq!(hmtx_server::response_type(&response).as_deref(), Some("result"));
//! handle.drain();
//! handle.wait();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;

pub use cache::{ReportCache, Tier};
pub use client::{busy_retry_after, parse_response, response_type, Client};
pub use metrics::Metrics;
pub use proto::{read_frame, write_frame, Request, MAX_FRAME};
pub use server::{ServerConfig, ServerHandle};
