//! The poll(2)-based readiness loop: every accepted connection lives in one
//! event thread instead of pinning a thread of its own.
//!
//! The loop owns the listener, a self-pipe, and all connections. Each
//! iteration it:
//!
//! 1. builds a `pollfd` set — the wake pipe, the listener (until drain),
//!    every connection that wants to read (no response outstanding) or
//!    write (unflushed output buffer) — and sleeps in `poll` until
//!    something is ready or the earliest pending deadline expires;
//! 2. accepts new sockets, reads what arrived, and processes complete
//!    length-prefixed frames. Immediate requests (ping/stats/cache hits/
//!    busy/draining) answer inline; an admitted job parks the connection in
//!    a *pending* slot. A parked connection is not read further, so
//!    responses stay in request order and a slow job applies natural
//!    per-connection backpressure;
//! 3. resolves pending slots: workers publish results into the shared
//!    [`JobCell`](crate::server::JobCell) and poke the self-pipe, which
//!    wakes `poll`; expired deadlines answer `timeout` (the job keeps
//!    running and will cache);
//! 4. flushes output buffers as sockets accept bytes.
//!
//! Idle connections therefore cost a buffer and one `pollfd` entry — no
//! stack, no thread — which is what lets a node hold thousands of mostly
//! idle clients. The `unsafe` in this module is confined to the five libc
//! calls (`poll`, `pipe`, `fcntl`, `read`, `write`, `close`) in [`sys`];
//! everything above it is safe Rust over raw fds std already exposes.
//!
//! **Drain:** the listener leaves the poll set, job admission answers
//! `draining` (in `server.rs`), and once every pending slot has resolved
//! and every output buffer has flushed, the loop drops all connections
//! (clients see EOF) and exits.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use crate::proto;
use crate::server::{handle_frame, poll_pending, Inner, Outcome};

/// Thin libc layer. `hmtx-server` is one of the two crates the workspace
/// exempts from `unsafe_code = "forbid"`; the exemption is spent here and
/// on the signal handler installer, nowhere else.
mod sys {
    use std::io;
    use std::os::raw::{c_int, c_ulong, c_void};

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    const F_GETFL: c_int = 3;
    const F_SETFL: c_int = 4;
    const O_NONBLOCK: c_int = 0o4000;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    /// `poll(2)`; returns the ready count, retrying on EINTR.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// A nonblocking pipe: `(read_fd, write_fd)`.
    pub fn nonblocking_pipe() -> io::Result<(c_int, c_int)> {
        let mut fds = [0 as c_int; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            let flags = unsafe { fcntl(fd, F_GETFL, 0) };
            if flags < 0 || unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
                let err = io::Error::last_os_error();
                unsafe {
                    close(fds[0]);
                    close(fds[1]);
                }
                return Err(err);
            }
        }
        Ok((fds[0], fds[1]))
    }

    /// Writes one byte, ignoring EAGAIN (a full pipe already wakes poll).
    pub fn write_byte(fd: c_int) {
        let b = [1u8];
        let _ = unsafe { write(fd, b.as_ptr().cast(), 1) };
    }

    /// Drains all readable bytes.
    pub fn drain_fd(fd: c_int) {
        let mut buf = [0u8; 64];
        while unsafe { read(fd, buf.as_mut_ptr().cast(), buf.len()) } > 0 {}
    }

    pub fn close_fd(fd: c_int) {
        let _ = unsafe { close(fd) };
    }
}

/// The self-pipe: workers (and drain) poke the write end; the event loop
/// polls the read end. Both ends are nonblocking, so a wake is never more
/// than one syscall and never blocks a worker.
pub(crate) struct WakePipe {
    read_fd: i32,
    write_fd: i32,
}

impl WakePipe {
    pub(crate) fn new() -> io::Result<WakePipe> {
        let (read_fd, write_fd) = sys::nonblocking_pipe()?;
        Ok(WakePipe { read_fd, write_fd })
    }

    /// Wakes the event loop (cheap, non-blocking, callable anywhere).
    pub(crate) fn wake(&self) {
        sys::write_byte(self.write_fd);
    }

    fn drain(&self) {
        sys::drain_fd(self.read_fd);
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        sys::close_fd(self.read_fd);
        sys::close_fd(self.write_fd);
    }
}

/// A job the connection is parked on: resolved by worker publish (via the
/// wake pipe) or by its deadline.
struct Pending {
    cell: std::sync::Arc<crate::server::JobCell>,
    key: String,
    deadline: Instant,
}

struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet framed.
    rbuf: Vec<u8>,
    /// Bytes queued to write; `wpos` marks how far the socket has taken.
    wbuf: Vec<u8>,
    wpos: usize,
    pending: Option<Pending>,
    /// Peer sent EOF; finish writing, then close.
    peer_closed: bool,
    /// Protocol violation (oversized frame) or I/O error; close as soon as
    /// the output buffer drains.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            pending: None,
            peer_closed: false,
            dead: false,
        }
    }

    fn has_unflushed(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    fn queue_response(&mut self, payload: &[u8]) {
        // Compact the buffer once the socket has consumed everything.
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        // write_frame to a Vec cannot fail below MAX_FRAME, and responses
        // are produced by this server, so the cap holds by construction.
        let _ = proto::write_frame(&mut self.wbuf, payload);
    }

    /// Flushes as much of `wbuf` as the socket accepts right now.
    fn flush(&mut self) {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Reads everything available, marking EOF and errors on the way.
    fn fill(&mut self) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_closed = true;
                    return;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    // A hostile peer cannot grow the buffer unboundedly:
                    // frames over MAX_FRAME kill the connection in
                    // `take_frame`, so at most one frame (+ prefix) is ever
                    // buffered beyond what gets processed this iteration.
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Pops one complete frame off `rbuf`, or `Err(())` on an oversized
    /// length prefix (protocol violation — the connection dies, matching
    /// the old blocking reader's behavior).
    fn take_frame(&mut self) -> Result<Option<Vec<u8>>, ()> {
        if self.rbuf.len() < 4 {
            return Ok(None);
        }
        let len =
            u32::from_be_bytes([self.rbuf[0], self.rbuf[1], self.rbuf[2], self.rbuf[3]]) as usize;
        if len > proto::MAX_FRAME {
            return Err(());
        }
        if self.rbuf.len() < 4 + len {
            return Ok(None);
        }
        let frame = self.rbuf[4..4 + len].to_vec();
        self.rbuf.drain(..4 + len);
        Ok(Some(frame))
    }

    /// Should this connection be dropped now?
    fn finished(&self) -> bool {
        if self.dead {
            return true;
        }
        self.peer_closed && self.pending.is_none() && !self.has_unflushed()
    }
}

/// Processes buffered frames until the connection parks on a job or runs
/// out of complete frames.
fn process_frames(inner: &Inner, conn: &mut Conn) {
    while conn.pending.is_none() && !conn.dead {
        match conn.take_frame() {
            Ok(Some(frame)) => match handle_frame(inner, &frame) {
                Outcome::Respond(bytes) => conn.queue_response(&bytes),
                Outcome::Wait {
                    cell,
                    key,
                    deadline,
                } => {
                    conn.pending = Some(Pending {
                        cell,
                        key,
                        deadline,
                    });
                }
            },
            Ok(None) => return,
            Err(()) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Runs the readiness loop until drain completes. Takes the pre-bound
/// nonblocking listener; the wake pipe lives in `inner`.
pub(crate) fn event_loop(inner: &Inner, listener: &TcpListener) {
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_id: usize = 0;
    // Rebuilt every iteration: the poll set and its fd→connection mapping.
    let mut pollfds: Vec<sys::PollFd> = Vec::new();
    let mut poll_ids: Vec<Option<usize>> = Vec::new();

    loop {
        let draining = inner.draining.load(Ordering::SeqCst);
        if draining {
            let all_quiet = conns
                .values()
                .all(|c| c.pending.is_none() && !c.has_unflushed());
            if all_quiet {
                // Every waiter is answered and flushed: close everything
                // (clients see EOF) and let `wait()` reap the workers.
                return;
            }
        }

        pollfds.clear();
        poll_ids.clear();
        pollfds.push(sys::PollFd {
            fd: inner.wake.read_fd,
            events: sys::POLLIN,
            revents: 0,
        });
        poll_ids.push(None);
        if !draining {
            pollfds.push(sys::PollFd {
                fd: listener.as_raw_fd(),
                events: sys::POLLIN,
                revents: 0,
            });
            poll_ids.push(None);
        }
        let listener_slot = if draining { usize::MAX } else { 1 };

        let now = Instant::now();
        let mut timeout = Duration::from_millis(100);
        for (&id, conn) in &conns {
            let mut events: i16 = 0;
            if conn.pending.is_none() && !conn.peer_closed && !conn.dead {
                events |= sys::POLLIN;
            }
            if conn.has_unflushed() && !conn.dead {
                events |= sys::POLLOUT;
            }
            if let Some(p) = &conn.pending {
                timeout = timeout.min(p.deadline.saturating_duration_since(now));
            }
            if events != 0 {
                pollfds.push(sys::PollFd {
                    fd: conn.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
                poll_ids.push(Some(id));
            }
        }

        let timeout_ms = i32::try_from(timeout.as_millis().min(100)).unwrap_or(100);
        if sys::poll_fds(&mut pollfds, timeout_ms).is_err() {
            // poll itself failing is unrecoverable for the loop; drain so
            // the process can exit instead of spinning.
            inner.begin_drain();
        }

        // Wake pipe: drain it; the actual work is the pending scan below.
        if pollfds[0].revents != 0 {
            inner.wake.drain();
        }

        // Accept everything waiting.
        if listener_slot < pollfds.len() && pollfds[listener_slot].revents != 0 {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        // Small request/response frames must not sit in
                        // Nagle's buffer.
                        let _ = stream.set_nodelay(true);
                        conns.insert(next_id, Conn::new(stream));
                        next_id = next_id.wrapping_add(1);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        // Per-connection readiness.
        for (slot, pfd) in pollfds.iter().enumerate() {
            let Some(id) = poll_ids[slot] else { continue };
            if pfd.revents == 0 {
                continue;
            }
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            if pfd.revents & (sys::POLLERR | sys::POLLNVAL) != 0 {
                conn.dead = true;
                continue;
            }
            if pfd.revents & (sys::POLLIN | sys::POLLHUP) != 0 {
                conn.fill();
                process_frames(inner, conn);
            }
            if pfd.revents & sys::POLLOUT != 0 {
                conn.flush();
            }
        }

        // Resolve pending jobs (worker publishes and deadline expiries).
        let now = Instant::now();
        for conn in conns.values_mut() {
            if let Some(p) = &conn.pending {
                if let Some(response) = poll_pending(inner, &p.cell, &p.key, p.deadline, now) {
                    conn.pending = None;
                    conn.queue_response(&response);
                    // The connection may have pipelined more requests while
                    // parked; serve them now, in order.
                    process_frames(inner, conn);
                }
            }
            if conn.has_unflushed() && !conn.dead {
                // Opportunistic flush: most responses fit the socket buffer
                // and complete here, without waiting for the next poll.
                conn.flush();
            }
        }

        conns.retain(|_, conn| !conn.finished());
    }
}
