//! A small blocking client for the `hmtx-serve` protocol, used by the
//! `hmtx-load` generator, the `hmtx-run --remote` mode, and the
//! integration tests.

use std::io;
use std::net::TcpStream;
use std::time::Duration;

use hmtx_types::{JobSpec, Json, StatsSnapshot};

use crate::proto::{self, Request};

/// One connection to a server. Requests are serial per connection (the
/// protocol has no multiplexing; open more connections for concurrency).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request and reads its response frame.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; an EOF before the response is an error.
    pub fn request(&mut self, req: &Request) -> io::Result<Vec<u8>> {
        self.request_raw(&req.to_bytes())
    }

    /// Sends an already-serialized request payload verbatim and reads the
    /// response frame. `hmtx-router` forwards client frames through this
    /// without re-serializing, so the bytes a backend sees (and hashes into
    /// nothing — responses splice back verbatim too) are exactly the bytes
    /// the client produced.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; an EOF before the response is an error.
    pub fn request_raw(&mut self, payload: &[u8]) -> io::Result<Vec<u8>> {
        proto::write_frame(&mut self.stream, payload)?;
        proto::read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-request")
        })
    }

    /// Submits a job; returns the raw response bytes (result, busy,
    /// draining, timeout, or error — see the protocol docs).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn job(&mut self, spec: &JobSpec, deadline_ms: Option<u64>) -> io::Result<Vec<u8>> {
        self.request(&Request::Job {
            spec: *spec,
            deadline_ms,
        })
    }

    /// Submits a job, sleeping out `busy` responses up to `max_retries`
    /// times. Each wait starts from the server's `retry_after_ms` hint and
    /// backs off exponentially per attempt (capped at
    /// [`RETRY_BACKOFF_CAP_MS`]), plus a deterministic jitter derived from
    /// the job spec so a fleet of loaders retrying the same instant
    /// de-synchronizes instead of re-stampeding the server. Returns the
    /// final raw response bytes — possibly still `busy` if retries ran out.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn job_with_retry(
        &mut self,
        spec: &JobSpec,
        deadline_ms: Option<u64>,
        max_retries: u32,
    ) -> io::Result<Vec<u8>> {
        let jitter_seed = spec_jitter_seed(spec);
        let mut attempt = 0;
        loop {
            let response = self.job(spec, deadline_ms)?;
            match busy_retry_after(&response) {
                Some(retry_after_ms) if attempt < max_retries => {
                    let wait = backoff_ms(retry_after_ms, attempt, jitter_seed);
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(wait));
                }
                _ => return Ok(response),
            }
        }
    }

    /// Bounds how long a single response read may block (`None` removes the
    /// bound). `hmtx-router` uses this on health-probe connections so a hung
    /// backend costs one timeout, not a stuck checker.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Fetches the serving counters.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a malformed response is an
    /// [`io::ErrorKind::InvalidData`] error.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        let response = self.request(&Request::Stats)?;
        parse_response(&response)
            .ok()
            .and_then(|v| v.get("stats").map(StatsSnapshot::from_json))
            .and_then(Result::ok)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed stats response"))
    }

    /// Liveness probe: true iff the server answered `pong`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn ping(&mut self) -> io::Result<bool> {
        let response = self.request(&Request::Ping)?;
        Ok(response_type(&response).as_deref() == Some("pong"))
    }

    /// Asks the server to begin graceful drain.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}

/// Parses a raw response frame as JSON.
///
/// # Errors
///
/// Returns a message when the frame is not valid UTF-8 JSON.
pub fn parse_response(bytes: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "response is not UTF-8".to_string())?;
    Json::parse(text).map_err(|e| e.to_string())
}

/// The response's `type` field, if it parses.
#[must_use]
pub fn response_type(bytes: &[u8]) -> Option<String> {
    parse_response(bytes)
        .ok()?
        .get("type")
        .and_then(Json::as_str)
        .map(String::from)
}

/// If the response is `busy`, its `retry_after_ms` hint.
#[must_use]
pub fn busy_retry_after(bytes: &[u8]) -> Option<u64> {
    let v = parse_response(bytes).ok()?;
    if v.get("type").and_then(Json::as_str) != Some("busy") {
        return None;
    }
    v.get("retry_after_ms").and_then(Json::as_u64)
}

/// Ceiling on one backed-off busy wait. The server's hint still wins when
/// it is larger — the cap bounds the client's exponential growth, not the
/// server's explicit request.
pub const RETRY_BACKOFF_CAP_MS: u64 = 2_000;

/// The wait before retry number `attempt` (0-based): the server's hint,
/// doubled per prior attempt up to the cap, plus a jitter in
/// `[0, hint)` derived from `(seed, attempt)`.
#[must_use]
pub fn backoff_ms(retry_after_ms: u64, attempt: u32, seed: u64) -> u64 {
    let base = retry_after_ms.max(1);
    let grown = base.checked_shl(attempt.min(20)).unwrap_or(u64::MAX);
    let backed = grown.min(RETRY_BACKOFF_CAP_MS.max(base));
    let jitter = hmtx_core::faults::derive(seed, u64::from(attempt), base);
    backed.saturating_add(jitter)
}

/// A deterministic jitter seed for `spec`: FNV-1a over its canonical
/// content key, so distinct jobs land on distinct backoff schedules while
/// replays of the same job stay reproducible.
#[must_use]
pub fn spec_jitter_seed(spec: &JobSpec) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in spec.key().bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_types::{BenchRef, WireBase, WireParadigm, WireScale};

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        // Growth: doubling from the hint until the cap.
        assert!(backoff_ms(10, 0, 7) < backoff_ms(10, 3, 7) + 10);
        for attempt in 0..40 {
            let w = backoff_ms(10, attempt, 7);
            assert!(w >= 10, "never below the hint: {w}");
            assert!(
                w <= RETRY_BACKOFF_CAP_MS + 10,
                "cap plus jitter bounds the wait: {w}"
            );
            // Deterministic: same inputs, same wait.
            assert_eq!(w, backoff_ms(10, attempt, 7));
        }
        // A hint above the cap is honored as-is.
        assert!(backoff_ms(5_000, 0, 7) >= 5_000);
        // Zero hints still make progress.
        assert!(backoff_ms(0, 0, 7) >= 1);
    }

    #[test]
    fn distinct_specs_get_distinct_jitter_seeds() {
        let a = JobSpec::new(
            BenchRef::Suite(0),
            WireParadigm::Paper,
            WireScale::Quick,
            WireBase::Test,
        );
        let b = JobSpec::new(
            BenchRef::Suite(1),
            WireParadigm::Paper,
            WireScale::Quick,
            WireBase::Test,
        );
        assert_ne!(spec_jitter_seed(&a), spec_jitter_seed(&b));
        assert_eq!(spec_jitter_seed(&a), spec_jitter_seed(&a));
    }
}
