//! A small blocking client for the `hmtx-serve` protocol, used by the
//! `hmtx-load` generator, the `hmtx-run --remote` mode, and the
//! integration tests.

use std::io;
use std::net::TcpStream;
use std::time::Duration;

use hmtx_types::{JobSpec, Json, StatsSnapshot};

use crate::proto::{self, Request};

/// One connection to a server. Requests are serial per connection (the
/// protocol has no multiplexing; open more connections for concurrency).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request and reads its response frame.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; an EOF before the response is an error.
    pub fn request(&mut self, req: &Request) -> io::Result<Vec<u8>> {
        proto::write_frame(&mut self.stream, &req.to_bytes())?;
        proto::read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-request")
        })
    }

    /// Submits a job; returns the raw response bytes (result, busy,
    /// draining, timeout, or error — see the protocol docs).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn job(&mut self, spec: &JobSpec, deadline_ms: Option<u64>) -> io::Result<Vec<u8>> {
        self.request(&Request::Job {
            spec: *spec,
            deadline_ms,
        })
    }

    /// Submits a job, sleeping out `busy` responses (honoring the server's
    /// `retry_after_ms` hint) up to `max_retries` times. Returns the final
    /// raw response bytes — possibly still `busy` if retries ran out.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn job_with_retry(
        &mut self,
        spec: &JobSpec,
        deadline_ms: Option<u64>,
        max_retries: u32,
    ) -> io::Result<Vec<u8>> {
        let mut attempt = 0;
        loop {
            let response = self.job(spec, deadline_ms)?;
            match busy_retry_after(&response) {
                Some(retry_after_ms) if attempt < max_retries => {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms.max(1)));
                }
                _ => return Ok(response),
            }
        }
    }

    /// Fetches the serving counters.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a malformed response is an
    /// [`io::ErrorKind::InvalidData`] error.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        let response = self.request(&Request::Stats)?;
        parse_response(&response)
            .ok()
            .and_then(|v| v.get("stats").map(StatsSnapshot::from_json))
            .and_then(Result::ok)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed stats response"))
    }

    /// Liveness probe: true iff the server answered `pong`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn ping(&mut self) -> io::Result<bool> {
        let response = self.request(&Request::Ping)?;
        Ok(response_type(&response).as_deref() == Some("pong"))
    }

    /// Asks the server to begin graceful drain.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}

/// Parses a raw response frame as JSON.
///
/// # Errors
///
/// Returns a message when the frame is not valid UTF-8 JSON.
pub fn parse_response(bytes: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "response is not UTF-8".to_string())?;
    Json::parse(text).map_err(|e| e.to_string())
}

/// The response's `type` field, if it parses.
#[must_use]
pub fn response_type(bytes: &[u8]) -> Option<String> {
    parse_response(bytes)
        .ok()?
        .get("type")
        .and_then(Json::as_str)
        .map(String::from)
}

/// If the response is `busy`, its `retry_after_ms` hint.
#[must_use]
pub fn busy_retry_after(bytes: &[u8]) -> Option<u64> {
    let v = parse_response(bytes).ok()?;
    if v.get("type").and_then(Json::as_str) != Some("busy") {
        return None;
    }
    v.get("retry_after_ms").and_then(Json::as_u64)
}
