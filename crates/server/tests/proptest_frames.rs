//! Property tests for the `hmtx-serve` frame codec: arbitrary payloads
//! round-trip through `write_frame`/`read_frame`, truncated frames are
//! rejected (or reported as clean EOF at a frame boundary) without panics
//! or fabricated payloads, oversized length prefixes are refused before
//! allocation, and `Request::parse` round-trips every request shape while
//! rejecting mangled bytes with an error.

use std::io::{Cursor, ErrorKind};

use hmtx_server::{read_frame, write_frame, Request, MAX_FRAME};
use hmtx_types::{BenchRef, JobSpec, WireBase, WireParadigm, WireScale};
use proptest::prelude::*;

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..2048)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Any payload round-trips, and back-to-back frames on one stream stay
    /// delimited: two writes read back as the same two payloads, then a
    /// clean EOF.
    #[test]
    fn frames_round_trip_and_stay_delimited(a in arb_payload(), b in arb_payload()) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &a).unwrap();
        write_frame(&mut wire, &b).unwrap();
        let mut r = Cursor::new(wire);
        prop_assert_eq!(read_frame(&mut r).unwrap(), Some(a));
        prop_assert_eq!(read_frame(&mut r).unwrap(), Some(b));
        prop_assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    /// A frame cut anywhere — inside the length prefix or inside the
    /// payload — never yields a payload: a cut at offset 0 is a clean EOF
    /// (`Ok(None)`), any other cut is an `UnexpectedEof` error. Never a
    /// panic, never partial bytes.
    #[test]
    fn truncated_frames_never_yield_a_payload(payload in arb_payload(), cut_seed in any::<u64>()) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let cut = (cut_seed % wire.len() as u64) as usize;
        let mut r = Cursor::new(&wire[..cut]);
        match read_frame(&mut r) {
            Ok(None) => prop_assert_eq!(cut, 0, "only an empty stream is a clean EOF"),
            Ok(Some(got)) => prop_assert!(false, "truncated frame yielded {} bytes", got.len()),
            Err(e) => prop_assert_eq!(e.kind(), ErrorKind::UnexpectedEof),
        }
    }

    /// A length prefix over `MAX_FRAME` is refused before any allocation,
    /// whatever bytes follow — a hostile client cannot make the server
    /// buffer gigabytes.
    #[test]
    fn oversized_length_prefixes_are_refused(len in (MAX_FRAME as u64 + 1)..(u32::MAX as u64 + 1), tail in arb_payload()) {
        let mut wire = (len as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&tail);
        let err = read_frame(&mut Cursor::new(wire)).unwrap_err();
        prop_assert_eq!(err.kind(), ErrorKind::InvalidData);
    }

    /// Every request shape survives `to_bytes` → `parse`.
    #[test]
    fn requests_round_trip(kind in 0u8..4, deadline in any::<u64>(), with_deadline in any::<bool>()) {
        let spec = JobSpec::new(
            BenchRef::SlaStress,
            WireParadigm::Paper,
            WireScale::Quick,
            WireBase::Test,
        );
        let req = match kind {
            0 => Request::Job { spec, deadline_ms: with_deadline.then_some(deadline) },
            1 => Request::Stats,
            2 => Request::Ping,
            _ => Request::Shutdown,
        };
        prop_assert_eq!(Request::parse(&req.to_bytes()).unwrap(), req);
    }

    /// Truncating a serialized request anywhere makes it unparseable — an
    /// error, not a panic or a silently defaulted request.
    #[test]
    fn truncated_requests_are_rejected(deadline in any::<u64>(), cut_seed in any::<u64>()) {
        let spec = JobSpec::new(
            BenchRef::Fig1Loop,
            WireParadigm::Doacross,
            WireScale::Standard,
            WireBase::Paper,
        );
        let bytes = Request::Job { spec, deadline_ms: Some(deadline) }.to_bytes();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(Request::parse(&bytes[..cut]).is_err());
    }
}

/// `write_frame` refuses oversized payloads up front (checked without
/// actually allocating 16 MiB per proptest case, hence a plain test).
#[test]
fn write_frame_refuses_oversized_payloads() {
    let too_big = vec![0u8; MAX_FRAME + 1];
    let err = write_frame(&mut Vec::new(), &too_big).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidInput);
    let mut wire = Vec::new();
    write_frame(&mut wire, &[]).unwrap();
    assert_eq!(wire, vec![0, 0, 0, 0], "empty payload is a bare length prefix");
}
