//! End-to-end tests for `hmtx-serve`: an in-process server on an ephemeral
//! port, driven by real TCP clients.
//!
//! Covers the acceptance criteria of the serving layer:
//! (a) byte-identical responses for identical specs — computed, memory-hit,
//!     disk-hit, and coalesced;
//! (b) cache-hit accounting: hit count equals the duplicates submitted;
//! (c) backpressure: `busy` when the admission queue saturates;
//! (d) graceful drain: in-flight jobs complete, new ones are rejected;
//! plus deadline-timeout behavior (the timed-out job still caches).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use hmtx_server::{response_type, Client, ServerConfig, ServerHandle};
use hmtx_types::{BenchRef, JobSpec, WireBase, WireParadigm, WireScale, WireVariant};

static PORT_SALT: AtomicUsize = AtomicUsize::new(0);

fn start(cfg: ServerConfig) -> ServerHandle {
    // Ephemeral port; the handle reports what was bound.
    PORT_SALT.fetch_add(1, Ordering::Relaxed);
    ServerHandle::start("127.0.0.1:0", cfg).expect("bind")
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect(&handle.addr().to_string()).expect("connect")
}

fn spec(index: u32) -> JobSpec {
    JobSpec::new(
        BenchRef::Suite(index),
        WireParadigm::Paper,
        WireScale::Quick,
        WireBase::Test,
    )
}

/// A family of distinct cheap specs (VID-width variants of one workload).
fn variant_spec(bits: u32) -> JobSpec {
    JobSpec {
        variant: WireVariant::VidBits(bits),
        ..spec(7)
    }
}

fn temp_cache_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hmtx-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn identical_specs_get_byte_identical_responses_across_all_tiers() {
    let dir = temp_cache_dir("tiers");
    let handle = start(ServerConfig {
        workers: 1,
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let mut client = connect(&handle);
    let s = spec(7);

    let computed = client.job(&s, None).expect("computed");
    assert_eq!(response_type(&computed).as_deref(), Some("result"));
    let mem_hit = client.job(&s, None).expect("mem hit");
    assert_eq!(computed, mem_hit, "memory hit must be byte-identical");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.executed, 1);
    assert_eq!(stats.mem_hits, 1);
    assert_eq!(stats.misses, 1);

    handle.drain();
    handle.wait();

    // A fresh server over the same disk store: cold memory, warm disk.
    let handle2 = start(ServerConfig {
        workers: 1,
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let mut client2 = connect(&handle2);
    let disk_hit = client2.job(&s, None).expect("disk hit");
    assert_eq!(computed, disk_hit, "disk hit must be byte-identical");
    let stats2 = client2.stats().expect("stats");
    assert_eq!((stats2.disk_hits, stats2.executed), (1, 0));
    handle2.drain();
    handle2.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_hits_equal_duplicates_submitted() {
    let handle = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    // 3 distinct specs, submitted 3× each = 6 duplicates.
    let specs = [variant_spec(4), variant_spec(6), variant_spec(8)];
    let mut client = connect(&handle);
    let mut first: Vec<Vec<u8>> = Vec::new();
    for s in &specs {
        first.push(client.job(s, None).expect("first"));
    }
    for round in 0..2 {
        for (i, s) in specs.iter().enumerate() {
            let bytes = client.job(s, None).expect("dup");
            assert_eq!(bytes, first[i], "round {round} spec {i}");
        }
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.cache_hits(), 6, "one hit per duplicate");
    assert_eq!(stats.executed, 3);
    assert_eq!(stats.misses, 3);
    handle.drain();
    handle.wait();
}

#[test]
fn concurrent_identical_specs_coalesce_to_one_execution() {
    let handle = start(ServerConfig {
        workers: 1,
        execute_delay: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let s = spec(3);
    let n = 4;
    let responses: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let handle = &handle;
                scope.spawn(move || {
                    let mut client = connect(handle);
                    client.job(&s, None).expect("job")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &responses[1..] {
        assert_eq!(r, &responses[0], "coalesced responses must be identical");
    }
    let mut client = connect(&handle);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.executed, 1, "identical concurrent specs run once");
    assert_eq!(
        stats.cache_hits() + stats.misses,
        n,
        "every request is a miss, a coalesce, or a late cache hit"
    );
    assert_eq!(stats.misses, 1);
    handle.drain();
    handle.wait();
}

#[test]
fn saturated_admission_queue_answers_busy_with_retry_hint() {
    let handle = start(ServerConfig {
        workers: 1,
        queue_cap: 1,
        retry_after_ms: 123,
        execute_delay: Duration::from_millis(400),
        ..ServerConfig::default()
    });
    // 4 distinct slow jobs into a queue of 1 over 1 worker: at least one
    // must be rejected while the first executes and the second queues.
    let specs = [variant_spec(4), variant_spec(5), variant_spec(6), variant_spec(7)];
    let responses: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .map(|s| {
                let handle = &handle;
                scope.spawn(move || {
                    let mut client = connect(handle);
                    client.job(s, None).expect("job")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let busy: Vec<&Vec<u8>> = responses
        .iter()
        .filter(|r| response_type(r).as_deref() == Some("busy"))
        .collect();
    assert!(!busy.is_empty(), "queue of 1 must reject some of 4 jobs");
    for b in &busy {
        assert_eq!(hmtx_server::busy_retry_after(b), Some(123));
    }
    let mut client = connect(&handle);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.rejected_busy as usize, busy.len());
    handle.drain();
    handle.wait();
}

#[test]
fn graceful_drain_finishes_inflight_and_rejects_new() {
    let handle = start(ServerConfig {
        workers: 1,
        execute_delay: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let slow = spec(1);
    let inflight = std::thread::scope(|scope| {
        let worker = {
            let handle = &handle;
            scope.spawn(move || {
                let mut client = connect(handle);
                client.job(&slow, None).expect("inflight job")
            })
        };
        // Let the job get admitted, then drain via the protocol.
        std::thread::sleep(Duration::from_millis(100));
        let mut client = connect(&handle);
        client.shutdown().expect("shutdown");
        // New job requests on a live connection now answer `draining`.
        let rejected = client.job(&spec(2), None).expect("rejected job");
        assert_eq!(response_type(&rejected).as_deref(), Some("draining"));
        worker.join().unwrap()
    });
    assert_eq!(
        response_type(&inflight).as_deref(),
        Some("result"),
        "in-flight job must complete through the drain"
    );
    // And the drain completes: wait() returns.
    handle.wait();
}

#[test]
fn deadline_timeout_answers_but_job_still_caches() {
    let handle = start(ServerConfig {
        workers: 1,
        execute_delay: Duration::from_millis(400),
        ..ServerConfig::default()
    });
    let s = spec(5);
    let mut client = connect(&handle);
    let timed_out = client.job(&s, Some(50)).expect("timeout job");
    assert_eq!(response_type(&timed_out).as_deref(), Some("timeout"));
    // Give the worker time to finish and cache.
    std::thread::sleep(Duration::from_millis(600));
    let retry = client.job(&s, Some(5_000)).expect("retry");
    assert_eq!(response_type(&retry).as_deref(), Some("result"));
    let stats = client.stats().expect("stats");
    assert_eq!(stats.deadline_timeouts, 1);
    assert_eq!(stats.executed, 1, "the retry must hit, not re-run");
    assert_eq!(stats.cache_hits(), 1);
    handle.drain();
    handle.wait();
}

/// Readiness-loop pin: hundreds of idle connections must not pin hundreds
/// of threads (thread-per-connection did; the poll loop holds them all on
/// one thread), and the server must keep answering through the crowd.
#[test]
fn idle_connections_do_not_pin_threads() {
    fn thread_count() -> usize {
        std::fs::read_dir("/proc/self/task").map_or(0, |d| d.count())
    }
    let handle = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let before = thread_count();
    let idle: Vec<Client> = (0..300).map(|_| connect(&handle)).collect();
    // Give the event loop a beat to accept everything.
    std::thread::sleep(Duration::from_millis(300));
    let with_idle = thread_count();
    assert!(
        with_idle < before + 50,
        "300 idle connections grew threads {before} -> {with_idle}; \
         thread-per-connection would add ~300"
    );
    // The server still serves real work through the idle crowd.
    let mut client = connect(&handle);
    let response = client.job(&spec(4), None).expect("job through idle crowd");
    assert_eq!(response_type(&response).as_deref(), Some("result"));
    assert!(client.ping().expect("ping"));
    drop(idle);
    handle.drain();
    handle.wait();
}

/// Backpressure + client backoff (the `hmtx-load` path): a 1-worker server
/// with a tiny queue rejects a burst with `busy`, and `job_with_retry`
/// (seeded jittered exponential backoff from the server's hint) must
/// absorb every rejection — all jobs eventually answer `result`.
#[test]
fn busy_responses_are_retried_with_backoff_until_success() {
    let handle = start(ServerConfig {
        workers: 1,
        queue_cap: 1,
        retry_after_ms: 40,
        execute_delay: Duration::from_millis(120),
        ..ServerConfig::default()
    });
    let specs: Vec<JobSpec> = (3..9).map(variant_spec).collect();
    let responses: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .map(|s| {
                let handle = &handle;
                scope.spawn(move || {
                    let mut client = connect(handle);
                    client.job_with_retry(s, None, 60).expect("job with retry")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, r) in responses.iter().enumerate() {
        assert_eq!(
            response_type(r).as_deref(),
            Some("result"),
            "spec {i} must be retried through busy to a result"
        );
    }
    let mut client = connect(&handle);
    let stats = client.stats().expect("stats");
    assert!(
        stats.rejected_busy > 0,
        "6 slow jobs through queue_cap=1 must trip backpressure at least once"
    );
    assert_eq!(stats.executed, specs.len() as u64, "each spec runs exactly once");
    handle.drain();
    handle.wait();
}

/// The PR 4 coalescing guarantee, extended to the sharded cache: many
/// connections hammering the same key concurrently (plus a second key in a
/// different shard) still execute each key exactly once.
#[test]
fn sharded_single_flight_survives_same_key_hammering() {
    let handle = start(ServerConfig {
        workers: 2,
        shards: 16,
        execute_delay: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let hot = spec(3);
    let other = spec(6);
    let n = 12;
    let responses: Vec<(usize, Vec<u8>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let handle = &handle;
                let s = if i % 4 == 0 { &other } else { &hot };
                scope.spawn(move || {
                    let mut client = connect(handle);
                    (i, client.job(s, None).expect("job"))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let hot_first = responses.iter().find(|(i, _)| i % 4 != 0).unwrap();
    let other_first = responses.iter().find(|(i, _)| i % 4 == 0).unwrap();
    for (i, r) in &responses {
        assert_eq!(response_type(r).as_deref(), Some("result"), "conn {i}");
        let expect = if i % 4 == 0 { &other_first.1 } else { &hot_first.1 };
        assert_eq!(r, expect, "conn {i} must see the coalesced bytes");
    }
    let mut client = connect(&handle);
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.executed, 2,
        "two distinct keys, two executions, no duplicates under hammering"
    );
    assert_eq!(stats.misses, 2);
    assert_eq!(
        stats.cache_hits() + stats.misses,
        n as u64,
        "every request is a miss, a coalesce, or a late cache hit"
    );
    handle.drain();
    handle.wait();
}

#[test]
fn malformed_and_failing_jobs_answer_errors() {
    let handle = start(ServerConfig::default());
    let mut client = connect(&handle);
    // A spec naming a suite index that does not exist fails in simulation.
    let bad = spec(99);
    let response = client.job(&bad, None).expect("bad job");
    assert_eq!(response_type(&response).as_deref(), Some("error"));
    // Liveness survives the error.
    assert!(client.ping().expect("ping"));
    let stats = client.stats().expect("stats");
    assert_eq!(stats.errors, 1);
    handle.drain();
    handle.wait();
}
