//! Property tests for the sharded memory LRU (`cache.rs`): under arbitrary
//! put/get sequences and arbitrary (capacity, shard count) geometry, the
//! cache must agree with a straightforward reference model — per-shard LRU
//! lists over `shard_index`/`shard_caps` — on membership, bytes, total
//! occupancy, and per-shard occupancy. This pins capacity accounting and
//! per-shard eviction order far beyond what the handwritten cases cover.

use std::collections::HashMap;
use std::sync::Arc;

use hmtx_server::cache::{shard_caps, shard_index, ReportCache};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(usize, u8),
    Get(usize),
}

/// A pool of realistic keys: 32 lowercase hex chars, spread across prefixes
/// (the high byte varies, so they land in different shards).
fn key(index: usize) -> String {
    format!("{:02x}{:030x}", (index * 37) % 256, index)
}

fn value(index: usize, generation: u8) -> Vec<u8> {
    format!("{}:{generation}", key(index)).into_bytes()
}

/// The reference: one LRU list per shard, oldest first. `put` of an
/// existing key refreshes it (moves to newest, replaces bytes); `get`
/// refreshes recency; eviction removes the oldest while over the shard's
/// capacity.
struct Model {
    caps: Vec<usize>,
    shards: Vec<Vec<(String, Vec<u8>)>>,
}

impl Model {
    fn new(cap: usize, shard_count: usize) -> Model {
        let caps = shard_caps(cap, shard_count);
        Model {
            shards: caps.iter().map(|_| Vec::new()).collect(),
            caps,
        }
    }

    fn shard_of(&self, key: &str) -> usize {
        shard_index(key, self.shards.len())
    }

    fn put(&mut self, key: &str, bytes: Vec<u8>) {
        let s = self.shard_of(key);
        let cap = self.caps[s];
        let shard = &mut self.shards[s];
        if cap == 0 {
            return;
        }
        shard.retain(|(k, _)| k != key);
        shard.push((key.to_string(), bytes));
        while shard.len() > cap {
            shard.remove(0);
        }
    }

    fn get(&mut self, key: &str) -> Option<Vec<u8>> {
        let s = self.shard_of(key);
        let shard = &mut self.shards[s];
        let at = shard.iter().position(|(k, _)| k == key)?;
        let entry = shard.remove(at);
        let bytes = entry.1.clone();
        shard.push(entry);
        Some(bytes)
    }
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (any::<bool>(), 0usize..24, any::<u8>()).prop_map(|(is_put, index, generation)| {
            if is_put {
                Op::Put(index, generation)
            } else {
                Op::Get(index)
            }
        }),
        0..200,
    )
}

proptest! {
    #[test]
    fn sharded_lru_matches_the_reference_model(
        ops in arb_ops(),
        cap in 0usize..12,
        shard_count in 1usize..6,
    ) {
        let cache = ReportCache::with_shards(cap, shard_count, None);
        // `with_shards` clamps the shard count so no shard has capacity
        // zero while total capacity is nonzero; mirror that.
        let effective = shard_count.clamp(1, cap.max(1));
        let mut model = Model::new(cap, effective);
        prop_assert_eq!(cache.shard_count(), effective);

        for op in &ops {
            match *op {
                Op::Put(index, generation) => {
                    let bytes = value(index, generation);
                    cache.put(&key(index), Arc::new(bytes.clone())).unwrap();
                    model.put(&key(index), bytes);
                }
                Op::Get(index) => {
                    let got = cache.get(&key(index)).map(|(b, _)| b.as_ref().clone());
                    let want = model.get(&key(index));
                    prop_assert_eq!(got, want, "get({}) diverged", index);
                }
            }
        }

        // Final state: capacity accounting holds globally and per shard,
        // and the resident set is exactly the model's.
        prop_assert!(cache.mem_len() <= cap, "over capacity: {}", cache.mem_len());
        let mut model_total = 0;
        for (s, shard) in model.shards.iter().enumerate() {
            prop_assert!(shard.len() <= model.caps[s]);
            prop_assert_eq!(cache.shard_len(s), shard.len(), "shard {} occupancy", s);
            model_total += shard.len();
        }
        prop_assert_eq!(cache.mem_len(), model_total);
        let mut resident: HashMap<String, Vec<u8>> = HashMap::new();
        for shard in &model.shards {
            for (k, v) in shard {
                resident.insert(k.clone(), v.clone());
            }
        }
        for index in 0..24 {
            let got = cache.get(&key(index)).map(|(b, _)| b.as_ref().clone());
            prop_assert_eq!(got, resident.get(&key(index)).cloned(), "final get({})", index);
        }
    }
}
