//! Guest-memory image construction: a bump allocator over the workload
//! address region plus helpers for laying out arrays, linked lists, and
//! pseudo-random data in simulated memory.

use hmtx_machine::Machine;
use hmtx_runtime::env::WORKLOAD_REGION_BASE;
use hmtx_types::Addr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A bump allocator over the guest workload region, writing initial data
/// directly into the machine's main memory (the pre-run committed image).
///
/// # Examples
///
/// ```
/// use hmtx_machine::Machine;
/// use hmtx_types::MachineConfig;
/// use hmtx_workloads::heap::GuestHeap;
///
/// let mut m = Machine::new(MachineConfig::test_default());
/// let mut heap = GuestHeap::new(7);
/// let arr = heap.alloc_words(&mut m, &[1, 2, 3]);
/// assert_eq!(m.mem().memory().read_word(arr.offset(8)), 2);
/// ```
#[derive(Debug)]
pub struct GuestHeap {
    next: u64,
    rng: StdRng,
}

impl GuestHeap {
    /// Creates a heap with a deterministic seed for random data.
    pub fn new(seed: u64) -> Self {
        GuestHeap {
            next: WORKLOAD_REGION_BASE,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Reserves `bytes` of guest address space, line-aligned.
    pub fn alloc(&mut self, bytes: u64) -> Addr {
        let base = self.next;
        self.next += bytes.div_ceil(64) * 64;
        Addr(base)
    }

    /// Allocates and initializes an array of words.
    pub fn alloc_words(&mut self, machine: &mut Machine, words: &[u64]) -> Addr {
        let base = self.alloc(words.len() as u64 * 8);
        for (i, w) in words.iter().enumerate() {
            machine
                .mem_mut()
                .memory_mut()
                .write_word(base.offset(i as i64 * 8), *w);
        }
        base
    }

    /// Allocates an array of `count` pseudo-random words below `bound`.
    pub fn alloc_random_words(&mut self, machine: &mut Machine, count: u64, bound: u64) -> Addr {
        let words: Vec<u64> = (0..count).map(|_| self.rng.gen_range(0..bound)).collect();
        self.alloc_words(machine, &words)
    }

    /// Allocates a singly linked list of `count` nodes. Each node is one
    /// cache line: word 0 = next pointer (0 terminates), word 1 = payload.
    /// Nodes are laid out in a shuffled order so traversal is genuine
    /// pointer chasing, not a prefetchable stride.
    ///
    /// Returns the head address.
    pub fn alloc_list(
        &mut self,
        machine: &mut Machine,
        count: u64,
        mut payload: impl FnMut(u64) -> u64,
    ) -> Addr {
        assert!(count > 0);
        let base = self.alloc(count * 64);
        // Shuffled placement: node i lives at slot perm[i].
        let mut perm: Vec<u64> = (0..count).collect();
        for i in (1..count as usize).rev() {
            let j = self.rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let slot_addr = |slot: u64| Addr(base.0 + slot * 64);
        for i in 0..count {
            let here = slot_addr(perm[i as usize]);
            let next = if i + 1 < count {
                slot_addr(perm[(i + 1) as usize]).0
            } else {
                0
            };
            machine.mem_mut().memory_mut().write_word(here, next);
            machine
                .mem_mut()
                .memory_mut()
                .write_word(here.offset(8), payload(i));
        }
        slot_addr(perm[0])
    }

    /// Total bytes reserved so far.
    pub fn used_bytes(&self) -> u64 {
        self.next - WORKLOAD_REGION_BASE
    }

    /// A deterministic pseudo-random word (host-side, for parameters).
    pub fn rand(&mut self, bound: u64) -> u64 {
        self.rng.gen_range(0..bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_types::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::test_default())
    }

    #[test]
    fn allocations_are_line_aligned_and_disjoint() {
        let mut h = GuestHeap::new(1);
        let a = h.alloc(10);
        let b = h.alloc(100);
        let c = h.alloc(64);
        assert_eq!(a.0 % 64, 0);
        assert_eq!(b.0, a.0 + 64);
        assert_eq!(c.0, b.0 + 128);
        assert_eq!(h.used_bytes(), 64 + 128 + 64);
    }

    #[test]
    fn words_round_trip() {
        let mut m = machine();
        let mut h = GuestHeap::new(1);
        let arr = h.alloc_words(&mut m, &[10, 20, 30]);
        assert_eq!(m.mem().memory().read_word(arr), 10);
        assert_eq!(m.mem().memory().read_word(arr.offset(16)), 30);
    }

    #[test]
    fn list_traversal_visits_all_payloads() {
        let mut m = machine();
        let mut h = GuestHeap::new(2);
        let head = h.alloc_list(&mut m, 20, |i| 100 + i);
        let mut seen = Vec::new();
        let mut node = head.0;
        while node != 0 {
            seen.push(m.mem().memory().read_word(Addr(node + 8)));
            node = m.mem().memory().read_word(Addr(node));
        }
        let mut expected: Vec<u64> = (0..20).map(|i| 100 + i).collect();
        assert_eq!(seen, expected.as_mut_slice());
    }

    #[test]
    fn list_is_shuffled_not_sequential() {
        let mut m = machine();
        let mut h = GuestHeap::new(3);
        let head = h.alloc_list(&mut m, 50, |i| i);
        let mut strided = 0;
        let mut node = head.0;
        loop {
            let next = m.mem().memory().read_word(Addr(node));
            if next == 0 {
                break;
            }
            if next == node + 64 {
                strided += 1;
            }
            node = next;
        }
        assert!(strided < 25, "traversal should mostly not be a unit stride");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut m1 = machine();
        let mut m2 = machine();
        let h1 = GuestHeap::new(42).alloc_random_words(&mut m1, 32, 1000);
        let h2 = GuestHeap::new(42).alloc_random_words(&mut m2, 32, 1000);
        for i in 0..32 {
            assert_eq!(
                m1.mem().memory().read_word(h1.offset(i * 8)),
                m2.mem().memory().read_word(h2.offset(i * 8))
            );
        }
    }

    #[test]
    fn random_words_respect_bound() {
        let mut m = machine();
        let mut h = GuestHeap::new(9);
        let arr = h.alloc_random_words(&mut m, 100, 7);
        for i in 0..100 {
            assert!(m.mem().memory().read_word(arr.offset(i * 8)) < 7);
        }
    }
}
