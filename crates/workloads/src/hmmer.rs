//! 456.hmmer analogue: profile-HMM sequence scoring (PS-DSWP).
//!
//! hmmer scores protein sequences against a profile hidden Markov model
//! with a Viterbi dynamic program — regular, barely-branching inner loops
//! (the paper reports only 4.83% branch instructions). Stage 1 fetches the
//! next sequence; stage 2 fills the DP recurrence over a per-iteration
//! two-row workspace, reading shared transition/emission tables.

use hmtx_isa::{Cond, ProgramBuilder, Reg};
use hmtx_machine::Machine;
use hmtx_runtime::env::{regs, LoopEnv, WORKLOAD_REGION_BASE};
use hmtx_runtime::LoopBody;

use crate::emitlib::{counted_loop, iter_region};
use crate::heap::GuestHeap;
use crate::meta::WorkloadMeta;
use crate::suite::{meta_for, Scale, Workload};

/// Alphabet size for emissions.
const ALPHABET: u64 = 16;

/// The hmmer analogue.
#[derive(Debug, Clone)]
pub struct Hmmer {
    iters: u64,
    seq_len: u64,
    states: u64,
    sequences: u64,
    transitions: u64,
    emissions: u64,
    workspaces: u64,
    workspace_stride: u64,
    scores: u64,
}

impl Hmmer {
    /// Builds the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (iters, seq_len, states): (u64, u64, u64) = match scale {
            Scale::Quick => (18, 10, 6),
            Scale::Standard => (48, 24, 12),
            Scale::Stress => (96, 96, 24),
        };
        let sequences = WORKLOAD_REGION_BASE;
        let seq_bytes: u64 = iters * seq_len * 8;
        let transitions = sequences + seq_bytes.div_ceil(64) * 64;
        let emissions = transitions + (states * 2 * 8).div_ceil(64) * 64;
        let workspaces = emissions + (ALPHABET * states * 8).div_ceil(64) * 64;
        let workspace_stride = (2 * states * 8).div_ceil(64) * 64;
        let scores = workspaces + iters * workspace_stride;
        Hmmer {
            iters,
            seq_len,
            states,
            sequences,
            transitions,
            emissions,
            workspaces,
            workspace_stride,
            scores,
        }
    }

    /// Address of the score cell of sequence `n` (1-based).
    pub fn score_cell(&self, n: u64) -> u64 {
        self.scores + (n - 1) * 64
    }
}

impl LoopBody for Hmmer {
    fn iterations(&self) -> u64 {
        self.iters
    }

    fn build_image(&self, machine: &mut Machine, env: &LoopEnv) {
        let mut heap = GuestHeap::new(0x456);
        let seqs = heap.alloc_random_words(machine, self.iters * self.seq_len, ALPHABET);
        debug_assert_eq!(seqs.0, self.sequences);
        heap.alloc_random_words(machine, self.states * 2, 50);
        heap.alloc_random_words(machine, ALPHABET * self.states, 200);
        heap.alloc(self.iters * self.workspace_stride);
        heap.alloc(self.iters * 64);
        machine
            .mem_mut()
            .memory_mut()
            .write_word(env.state_slot(0), self.sequences);
    }

    fn emit_stage1(&self, b: &mut ProgramBuilder, env: &LoopEnv) {
        b.li(Reg::R1, env.state_slot(0).0 as i64);
        b.load(regs::ITEM, Reg::R1, 0);
        b.addi(Reg::R2, regs::ITEM, (self.seq_len * 8) as i64);
        b.store(Reg::R2, Reg::R1, 0);
        b.li(regs::SPEC_LOADS, 1);
        b.li(regs::SPEC_STORES, 1);
    }

    fn emit_stage2(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        let (states, seq_len, transitions, emissions) =
            (self.states, self.seq_len, self.transitions, self.emissions);
        // R1 = sequence ptr, R2 = workspace (row0), R12 = row1.
        b.mov(Reg::R1, regs::ITEM);
        iter_region(b, Reg::R2, self.workspaces, self.workspace_stride);
        b.addi(Reg::R12, Reg::R2, (states * 8) as i64);
        // DP over positions; rows swap each step (R2 = prev, R12 = next).
        counted_loop(b, Reg::R0, seq_len, |b| {
            b.load(Reg::R3, Reg::R1, 0); // symbol
            counted_loop(b, Reg::R4, states, |b| {
                // prev[k] + trans0 vs prev[k-1] + trans1 (k=0 reuses k).
                b.shl(Reg::R5, Reg::R4, 3);
                b.add(Reg::R6, Reg::R5, Reg::R2);
                b.load(Reg::R7, Reg::R6, 0); // prev[k]
                let k0 = b.new_label();
                let join = b.new_label();
                b.branch_imm(Cond::Eq, Reg::R4, 0, k0);
                b.load(Reg::R8, Reg::R6, -8); // prev[k-1]
                b.jump(join);
                b.bind(k0).unwrap();
                b.mov(Reg::R8, Reg::R7);
                b.bind(join).unwrap();
                // trans costs
                b.shl(Reg::R9, Reg::R4, 4); // 2 words per state
                b.addi(Reg::R9, Reg::R9, transitions as i64);
                b.load(Reg::R10, Reg::R9, 0);
                b.add(Reg::R7, Reg::R7, Reg::R10);
                b.load(Reg::R10, Reg::R9, 8);
                b.add(Reg::R8, Reg::R8, Reg::R10);
                // Branchless max (a compiler emits cmov here, and hmmer's
                // low branch fraction in Table 1 reflects that).
                b.alu(hmtx_isa::AluOp::SltU, Reg::R9, Reg::R7, Reg::R8);
                b.mul(Reg::R10, Reg::R8, Reg::R9);
                b.xor(Reg::R9, Reg::R9, 1);
                b.mul(Reg::R9, Reg::R7, Reg::R9);
                b.add(Reg::R7, Reg::R9, Reg::R10);
                // + emission[symbol][k]
                b.mul(Reg::R10, Reg::R3, states as i64 * 8);
                b.add(Reg::R10, Reg::R10, Reg::R5);
                b.addi(Reg::R10, Reg::R10, emissions as i64);
                b.load(Reg::R11, Reg::R10, 0);
                b.add(Reg::R7, Reg::R7, Reg::R11);
                b.add(Reg::R10, Reg::R5, Reg::R12);
                b.store(Reg::R7, Reg::R10, 0);
            })
            .unwrap();
            // Swap rows, advance the sequence.
            b.mov(Reg::R5, Reg::R2);
            b.mov(Reg::R2, Reg::R12);
            b.mov(Reg::R12, Reg::R5);
            b.addi(Reg::R1, Reg::R1, 8);
        })
        .unwrap();
        // Score: last row's final state.
        b.addi(Reg::R6, Reg::R2, ((states - 1) * 8) as i64);
        b.load(Reg::R7, Reg::R6, 0);
        iter_region(b, Reg::R9, self.scores, 64);
        b.store(Reg::R7, Reg::R9, 0);
        b.li(
            regs::SPEC_LOADS,
            (seq_len * states * 5 + seq_len + 1) as i64,
        );
        b.li(regs::SPEC_STORES, (seq_len * states + 1) as i64);
    }

    fn minimal_rw_counts(&self) -> (u64, u64) {
        (2, 1)
    }
}

impl Workload for Hmmer {
    fn meta(&self) -> WorkloadMeta {
        meta_for("456.hmmer").expect("registered benchmark")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_runtime::{run_loop, Paradigm};
    use hmtx_types::{Addr, MachineConfig, Vid};

    #[test]
    fn psdswp_matches_sequential() {
        let w = Hmmer::new(Scale::Quick);
        let (m_seq, _) = run_loop(
            Paradigm::Sequential,
            &w,
            &MachineConfig::test_default(),
            100_000_000,
        )
        .unwrap();
        let w2 = Hmmer::new(Scale::Quick);
        let (m_par, report) = run_loop(
            Paradigm::PsDswp,
            &w2,
            &MachineConfig::test_default(),
            100_000_000,
        )
        .unwrap();
        assert_eq!(report.recoveries, 0);
        for n in 1..=w.iterations() {
            assert_eq!(
                m_seq.mem().peek_word(Addr(w.score_cell(n)), Vid(0)),
                m_par.mem().peek_word(Addr(w2.score_cell(n)), Vid(0)),
                "sequence {n}"
            );
        }
    }

    #[test]
    fn dp_control_flow_is_regular() {
        let w = Hmmer::new(Scale::Quick);
        let (machine, _) = run_loop(
            Paradigm::Sequential,
            &w,
            &MachineConfig::test_default(),
            100_000_000,
        )
        .unwrap();
        assert!(
            machine.stats().branch_fraction() < 0.25,
            "hmmer is the least branchy benchmark"
        );
    }
}
