//! The benchmark suite: the 8 workload analogues and their registry.

use crate::meta::{paper_table1, WorkloadMeta};
use hmtx_runtime::LoopBody;
use hmtx_types::SimError;

/// How large to build a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Small instances for unit/integration tests (seconds).
    Quick,
    /// The benchmark-harness instances used for the paper figures.
    Standard,
    /// Long-transaction stress instances (hundreds of thousands of
    /// speculative accesses per transaction) for resilience tests.
    Stress,
}

/// A benchmark workload: a parallelizable loop plus its paper metadata.
pub trait Workload: LoopBody {
    /// Static description and the paper's reported numbers.
    fn meta(&self) -> WorkloadMeta;
}

/// Looks up the paper metadata row by benchmark name.
///
/// # Errors
///
/// Returns [`SimError::BadProgram`] listing the valid names when `name` is
/// not one of the 8 benchmarks.
pub fn meta_for(name: &str) -> Result<WorkloadMeta, SimError> {
    let table = paper_table1();
    table
        .iter()
        .find(|m| m.name == name)
        .copied()
        .ok_or_else(|| {
            let valid: Vec<&str> = table.iter().map(|m| m.name).collect();
            SimError::BadProgram(format!(
                "unknown benchmark `{name}` (valid benchmarks: {})",
                valid.join(", ")
            ))
        })
}

/// Builds the full 8-benchmark suite at the given scale, in Table 1 order.
pub fn suite(scale: Scale) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(crate::alvinn::Alvinn::new(scale)),
        Box::new(crate::li::Li::new(scale)),
        Box::new(crate::gzip::Gzip::new(scale)),
        Box::new(crate::crafty::Crafty::new(scale)),
        Box::new(crate::parser::Parser::new(scale)),
        Box::new(crate::bzip2::Bzip2::new(scale)),
        Box::new(crate::hmmer::Hmmer::new(scale)),
        Box::new(crate::ispell::Ispell::new(scale)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table1_order_and_metadata() {
        let s = suite(Scale::Quick);
        let t = paper_table1();
        assert_eq!(s.len(), 8);
        for (w, m) in s.iter().zip(t.iter()) {
            assert_eq!(w.meta().name, m.name);
            assert_eq!(w.meta().paradigm, m.paradigm);
        }
    }

    #[test]
    fn standard_scale_is_larger_than_quick() {
        for (q, s) in suite(Scale::Quick)
            .iter()
            .zip(suite(Scale::Standard).iter())
        {
            assert!(
                q.iterations() <= s.iterations(),
                "{}: quick {} > standard {}",
                q.meta().name,
                q.iterations(),
                s.iterations()
            );
        }
    }

    #[test]
    fn meta_for_unknown_name_lists_valid_benchmarks() {
        let err = meta_for("999.nonesuch").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("999.nonesuch"), "{msg}");
        for m in paper_table1() {
            assert!(msg.contains(m.name), "missing {} in: {msg}", m.name);
        }
    }

    #[test]
    fn meta_for_known_names_resolve() {
        for m in paper_table1() {
            assert_eq!(meta_for(m.name).unwrap().name, m.name);
        }
    }
}
