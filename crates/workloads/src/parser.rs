//! 197.parser analogue: dictionary-driven sentence parsing (PS-DSWP).
//!
//! The link-grammar parser tokenizes a sentence (sequential cursor — the
//! loop-carried dependence) and parses it against a large shared dictionary.
//! Stage 2 performs chained hash lookups in the read-only dictionary (each
//! chain step is a data-dependent branch) and records linkages in a
//! per-sentence parse workspace.

use hmtx_isa::{Cond, ProgramBuilder, Reg};
use hmtx_machine::Machine;
use hmtx_runtime::env::{regs, LoopEnv, WORKLOAD_REGION_BASE};
use hmtx_runtime::LoopBody;

use crate::emitlib::{counted_loop, hash_to_offset, iter_region};
use crate::heap::GuestHeap;
use crate::meta::WorkloadMeta;
use crate::suite::{meta_for, Scale, Workload};

/// The parser analogue.
#[derive(Debug, Clone)]
pub struct Parser {
    iters: u64,
    tokens_per_sentence: u64,
    dict_buckets: u64,
    input: u64,
    dict: u64,
    workspaces: u64,
    workspace_stride: u64,
    results: u64,
}

impl Parser {
    /// Builds the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (iters, tokens, dict_buckets) = match scale {
            Scale::Quick => (18, 24, 128),
            Scale::Standard => (48, 80, 512),
            Scale::Stress => (96, 512, 2048),
        };
        let input = WORKLOAD_REGION_BASE;
        let input_bytes: u64 = iters * tokens * 8;
        let dict = input + input_bytes.div_ceil(64) * 64;
        let workspaces = dict + dict_buckets * 8;
        let workspace_stride = (tokens * 8).div_ceil(64) * 64;
        let results = workspaces + iters * workspace_stride;
        Parser {
            iters,
            tokens_per_sentence: tokens,
            dict_buckets,
            input,
            dict,
            workspaces,
            workspace_stride,
            results,
        }
    }

    /// Address of the linkage-count cell of sentence `n` (1-based).
    pub fn result_cell(&self, n: u64) -> u64 {
        self.results + (n - 1) * 64
    }
}

impl LoopBody for Parser {
    fn iterations(&self) -> u64 {
        self.iters
    }

    fn build_image(&self, machine: &mut Machine, env: &LoopEnv) {
        let mut heap = GuestHeap::new(0x197);
        // Input tokens from a vocabulary; dictionary entries hold "senses".
        let input = heap.alloc_random_words(machine, self.iters * self.tokens_per_sentence, 1000);
        debug_assert_eq!(input.0, self.input);
        heap.alloc_random_words(machine, self.dict_buckets, 17);
        heap.alloc(self.iters * self.workspace_stride);
        heap.alloc(self.iters * 64);
        // Stage-1 cursor.
        machine
            .mem_mut()
            .memory_mut()
            .write_word(env.state_slot(0), self.input);
    }

    fn emit_stage1(&self, b: &mut ProgramBuilder, env: &LoopEnv) {
        // Tokenize: cursor -> ITEM (sentence base); cursor += sentence bytes.
        b.li(Reg::R1, env.state_slot(0).0 as i64);
        b.load(regs::ITEM, Reg::R1, 0);
        b.addi(Reg::R2, regs::ITEM, (self.tokens_per_sentence * 8) as i64);
        b.store(Reg::R2, Reg::R1, 0);
        b.load(Reg::R3, regs::ITEM, 0); // peek first token
        b.li(regs::SPEC_LOADS, 2);
        b.li(regs::SPEC_STORES, 1);
    }

    fn emit_stage2(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        // R1 = token ptr, R2 = workspace, R3 = linkages, R11 = probe count.
        b.mov(Reg::R1, regs::ITEM);
        iter_region(b, Reg::R2, self.workspaces, self.workspace_stride);
        b.li(Reg::R3, 0);
        b.li(Reg::R11, 0);
        let (dict, buckets, tokens) = (self.dict, self.dict_buckets, self.tokens_per_sentence);
        counted_loop(b, Reg::R0, tokens, |b| {
            let chain_done = b.new_label();
            b.load(Reg::R4, Reg::R1, 0); // token
                                         // Chained dictionary probes: up to 3, exit data-dependently.
            b.mov(Reg::R5, Reg::R4);
            for _ in 0..3 {
                hash_to_offset(b, Reg::R6, Reg::R5, buckets);
                b.addi(Reg::R6, Reg::R6, dict as i64);
                b.load(Reg::R7, Reg::R6, 0); // sense
                b.add(Reg::R3, Reg::R3, Reg::R7);
                b.addi(Reg::R11, Reg::R11, 1);
                // Chain continues only on rare collisions (biased, mostly
                // predictable — the paper reports just 1.05% for parser).
                b.and(Reg::R8, Reg::R7, 7);
                b.branch_imm(Cond::Ne, Reg::R8, 7, chain_done);
                b.addi(Reg::R5, Reg::R5, 0x51);
            }
            b.bind(chain_done).unwrap();
            // Record the linkage in the parse workspace.
            b.shl(Reg::R9, Reg::R0, 3);
            b.add(Reg::R9, Reg::R9, Reg::R2);
            b.store(Reg::R3, Reg::R9, 0);
            b.addi(Reg::R1, Reg::R1, 8);
        })
        .unwrap();
        iter_region(b, Reg::R9, self.results, 64);
        b.store(Reg::R3, Reg::R9, 0);
        // Loads: token + probes; stores: workspace + result.
        b.addi(regs::SPEC_LOADS, Reg::R11, tokens as i64);
        b.li(regs::SPEC_STORES, (tokens + 1) as i64);
    }

    fn minimal_rw_counts(&self) -> (u64, u64) {
        (3, 1)
    }
}

impl Workload for Parser {
    fn meta(&self) -> WorkloadMeta {
        meta_for("197.parser").expect("registered benchmark")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_runtime::{run_loop, Paradigm};
    use hmtx_types::{Addr, MachineConfig, Vid};

    #[test]
    fn psdswp_and_doacross_match_sequential() {
        let w = Parser::new(Scale::Quick);
        let (m_seq, _) = run_loop(
            Paradigm::Sequential,
            &w,
            &MachineConfig::test_default(),
            100_000_000,
        )
        .unwrap();
        for paradigm in [Paradigm::PsDswp, Paradigm::Doacross] {
            let w2 = Parser::new(Scale::Quick);
            let (m_par, report) =
                run_loop(paradigm, &w2, &MachineConfig::test_default(), 100_000_000).unwrap();
            assert_eq!(report.recoveries, 0, "{}", paradigm.name());
            for n in 1..=w.iterations() {
                assert_eq!(
                    m_seq.mem().peek_word(Addr(w.result_cell(n)), Vid(0)),
                    m_par.mem().peek_word(Addr(w2.result_cell(n)), Vid(0)),
                    "{} sentence {n}",
                    paradigm.name()
                );
            }
        }
    }

    #[test]
    fn results_are_nontrivial() {
        let w = Parser::new(Scale::Quick);
        let (machine, _) = run_loop(
            Paradigm::Sequential,
            &w,
            &MachineConfig::test_default(),
            100_000_000,
        )
        .unwrap();
        let first = machine.mem().peek_word(Addr(w.result_cell(1)), Vid(0));
        let last = machine
            .mem()
            .peek_word(Addr(w.result_cell(w.iterations())), Vid(0));
        assert_ne!(first, 0);
        assert_ne!(first, last);
    }
}
