//! ispell analogue: spell checking (PS-DSWP, MiBench).
//!
//! ispell has the paper's *smallest* transactions (≈44k accesses vs li's
//! 182M): one word lookup per iteration. Stage 1 reads the next word from
//! the input stream; stage 2 probes the shared dictionary hash table a few
//! times and records whether the word is known. Because transactions are
//! tiny, fixed per-transaction overheads (commits, queue latency) matter
//! most here — which is why ispell also has the highest fraction of
//! speculative loads needing SLAs (13%, Table 1): there is little locality
//! for a transaction's VID marks to amortize over.

use hmtx_isa::{Cond, ProgramBuilder, Reg};
use hmtx_machine::Machine;
use hmtx_runtime::env::{regs, LoopEnv, WORKLOAD_REGION_BASE};
use hmtx_runtime::LoopBody;

use crate::emitlib::hash_to_offset;
use crate::heap::GuestHeap;
use crate::meta::WorkloadMeta;
use crate::suite::{meta_for, Scale, Workload};

/// The ispell analogue.
#[derive(Debug, Clone)]
pub struct Ispell {
    iters: u64,
    dict_buckets: u64,
    vocabulary: u64,
    input: u64,
    dict: u64,
    results: u64,
}

impl Ispell {
    /// Builds the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (iters, dict_buckets) = match scale {
            Scale::Quick => (24, 256),
            Scale::Standard => (96, 1024),
            Scale::Stress => (512, 4096),
        };
        let vocabulary = 600;
        let input = WORKLOAD_REGION_BASE;
        let input_bytes: u64 = iters * 8;
        let dict = input + input_bytes.div_ceil(64) * 64;
        let results = dict + dict_buckets * 8;
        Ispell {
            iters,
            dict_buckets,
            vocabulary,
            input,
            dict,
            results,
        }
    }

    /// Address of the result cell of word `n` (1-based).
    pub fn result_cell(&self, n: u64) -> u64 {
        self.results + (n - 1) * 64
    }
}

impl LoopBody for Ispell {
    fn iterations(&self) -> u64 {
        self.iters
    }

    fn build_image(&self, machine: &mut Machine, env: &LoopEnv) {
        let mut heap = GuestHeap::new(0x15E1);
        let input = heap.alloc_random_words(machine, self.iters, self.vocabulary);
        debug_assert_eq!(input.0, self.input);
        // Dictionary: bucket holds word+1 for ~60% of the vocabulary.
        let dict = heap.alloc(self.dict_buckets * 8);
        for w in 0..self.vocabulary {
            if w % 5 < 3 {
                let h = (w.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) % self.dict_buckets;
                machine
                    .mem_mut()
                    .memory_mut()
                    .write_word(dict.offset((h * 8) as i64), w + 1);
            }
        }
        heap.alloc(self.iters * 64);
        machine
            .mem_mut()
            .memory_mut()
            .write_word(env.state_slot(0), self.input);
    }

    fn emit_stage1(&self, b: &mut ProgramBuilder, env: &LoopEnv) {
        b.li(Reg::R1, env.state_slot(0).0 as i64);
        b.load(Reg::R2, Reg::R1, 0); // cursor
        b.load(regs::ITEM, Reg::R2, 0); // word
        b.addi(Reg::R2, Reg::R2, 8);
        b.store(Reg::R2, Reg::R1, 0);
        b.li(regs::SPEC_LOADS, 2);
        b.li(regs::SPEC_STORES, 1);
    }

    fn emit_stage2(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        let buckets = self.dict_buckets;
        let found = b.new_label();
        let done = b.new_label();
        // Probe the home bucket, then one linear-probe step.
        b.li(Reg::R3, 0);
        hash_to_offset(b, Reg::R5, regs::ITEM, buckets);
        b.addi(Reg::R5, Reg::R5, self.dict as i64);
        b.load(Reg::R6, Reg::R5, 0);
        b.addi(Reg::R7, regs::ITEM, 1);
        b.branch(Cond::Eq, Reg::R6, Reg::R7, found);
        b.load(Reg::R6, Reg::R5, 8);
        b.branch(Cond::Eq, Reg::R6, Reg::R7, found);
        b.jump(done);
        b.bind(found).unwrap();
        b.li(Reg::R3, 1);
        b.bind(done).unwrap();
        crate::emitlib::iter_region(b, Reg::R9, self.results, 64);
        b.store(Reg::R3, Reg::R9, 0);
        b.li(regs::SPEC_LOADS, 2);
        b.li(regs::SPEC_STORES, 1);
    }

    fn minimal_rw_counts(&self) -> (u64, u64) {
        (2, 1)
    }
}

impl Workload for Ispell {
    fn meta(&self) -> WorkloadMeta {
        meta_for("ispell").expect("registered benchmark")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_runtime::{run_loop, Paradigm};
    use hmtx_types::{Addr, MachineConfig, Vid};

    #[test]
    fn psdswp_matches_sequential() {
        let w = Ispell::new(Scale::Quick);
        let (m_seq, _) = run_loop(
            Paradigm::Sequential,
            &w,
            &MachineConfig::test_default(),
            50_000_000,
        )
        .unwrap();
        let w2 = Ispell::new(Scale::Quick);
        let (m_par, report) = run_loop(
            Paradigm::PsDswp,
            &w2,
            &MachineConfig::test_default(),
            50_000_000,
        )
        .unwrap();
        assert_eq!(report.recoveries, 0);
        for n in 1..=w.iterations() {
            assert_eq!(
                m_seq.mem().peek_word(Addr(w.result_cell(n)), Vid(0)),
                m_par.mem().peek_word(Addr(w2.result_cell(n)), Vid(0)),
                "word {n}"
            );
        }
    }

    #[test]
    fn some_words_hit_and_some_miss() {
        let w = Ispell::new(Scale::Quick);
        let (machine, _) = run_loop(
            Paradigm::Sequential,
            &w,
            &MachineConfig::test_default(),
            50_000_000,
        )
        .unwrap();
        let hits: u64 = (1..=w.iterations())
            .map(|n| machine.mem().peek_word(Addr(w.result_cell(n)), Vid(0)))
            .sum();
        assert!(hits > 0, "dictionary lookups must sometimes succeed");
        assert!(hits < w.iterations(), "and sometimes fail");
    }

    #[test]
    fn transactions_are_tiny() {
        let w = Ispell::new(Scale::Quick);
        let (machine, _) = run_loop(
            Paradigm::PsDswp,
            &w,
            &MachineConfig::test_default(),
            50_000_000,
        )
        .unwrap();
        let stats = machine.mem().stats();
        let per_tx = (stats.spec_loads + stats.spec_stores) as f64 / stats.commits.max(1) as f64;
        assert!(
            per_tx < 30.0,
            "ispell transactions must be small, got {per_tx}"
        );
    }
}
