//! Small code-generation helpers shared by the workload kernels.

use hmtx_isa::{Cond, ProgramBuilder, Reg};
use hmtx_runtime::env::regs;
use hmtx_types::SimError;

/// Emits `for idx in 0..bound { body }` with `idx` in a register and a
/// compile-time bound. The loop branch is highly predictable, like a real
/// counted loop.
pub fn counted_loop(
    b: &mut ProgramBuilder,
    idx: Reg,
    bound: u64,
    mut body: impl FnMut(&mut ProgramBuilder),
) -> Result<(), SimError> {
    let head = b.new_label();
    let done = b.new_label();
    b.li(idx, 0);
    b.bind(head)?;
    b.branch_imm(Cond::GeU, idx, bound as i64, done);
    body(b);
    b.addi(idx, idx, 1);
    b.jump(head);
    b.bind(done)?;
    Ok(())
}

/// Emits one xorshift64 step on `x` (using `tmp` as scratch): a cheap,
/// high-quality guest-side PRNG for data-dependent control flow.
pub fn xorshift_step(b: &mut ProgramBuilder, x: Reg, tmp: Reg) {
    b.shl(tmp, x, 13);
    b.xor(x, x, tmp);
    b.shr(tmp, x, 7);
    b.xor(x, x, tmp);
    b.shl(tmp, x, 17);
    b.xor(x, x, tmp);
}

/// Emits `dst = base + (N - 1) * stride`: the address of this iteration's
/// private region (disjoint per iteration, so concurrent stage-2 workers
/// never conflict).
pub fn iter_region(b: &mut ProgramBuilder, dst: Reg, base: u64, stride: u64) {
    b.sub(dst, regs::N, 1);
    b.mul(dst, dst, stride as i64);
    b.addi(dst, dst, base as i64);
}

/// Emits a Fibonacci-style hash of `src` into `dst`, masked to
/// `buckets` (a power of two), scaled by 8 (word index -> byte offset).
pub fn hash_to_offset(b: &mut ProgramBuilder, dst: Reg, src: Reg, buckets: u64) {
    debug_assert!(buckets.is_power_of_two());
    b.mul(dst, src, 0x9E37_79B9_7F4A_7C15u64 as i64);
    b.shr(dst, dst, 40);
    b.and(dst, dst, (buckets - 1) as i64);
    b.shl(dst, dst, 3);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_machine::{Machine, RunEvent, ThreadContext};
    use hmtx_types::{MachineConfig, ThreadId};
    use std::sync::Arc;

    fn run(b: ProgramBuilder) -> Machine {
        let mut m = Machine::new(MachineConfig::test_default());
        m.load_thread(
            0,
            ThreadContext::new(ThreadId(0), Arc::new(b.build().unwrap())),
        );
        assert_eq!(m.run(1_000_000).unwrap(), RunEvent::AllHalted);
        m
    }

    #[test]
    fn counted_loop_runs_bound_times() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R2, 0);
        counted_loop(&mut b, Reg::R1, 13, |b| {
            b.addi(Reg::R2, Reg::R2, 2);
        })
        .unwrap();
        b.out(Reg::R2);
        b.halt();
        assert_eq!(run(b).committed_output(), &[26]);
    }

    #[test]
    fn counted_loop_zero_bound_skips_body() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R2, 7);
        counted_loop(&mut b, Reg::R1, 0, |b| {
            b.li(Reg::R2, 0);
        })
        .unwrap();
        b.out(Reg::R2);
        b.halt();
        assert_eq!(run(b).committed_output(), &[7]);
    }

    #[test]
    fn xorshift_matches_host_implementation() {
        let mut x = 0x1234_5678_9abc_def0u64;
        let expect = {
            let mut v = x;
            for _ in 0..3 {
                v ^= v << 13;
                v ^= v >> 7;
                v ^= v << 17;
            }
            v
        };
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, x as i64);
        for _ in 0..3 {
            xorshift_step(&mut b, Reg::R1, Reg::R2);
        }
        b.out(Reg::R1);
        b.halt();
        assert_eq!(run(b).committed_output(), &[expect]);
        x ^= 0; // silence unused_mut lint paranoia
        let _ = x;
    }

    #[test]
    fn hash_offset_is_word_aligned_and_bounded() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 123456789);
        hash_to_offset(&mut b, Reg::R2, Reg::R1, 64);
        b.out(Reg::R2);
        b.halt();
        let m = run(b);
        let v = m.committed_output()[0];
        assert_eq!(v % 8, 0);
        assert!(v < 64 * 8);
    }
}
