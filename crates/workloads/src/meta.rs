//! Workload metadata: which paradigm each benchmark uses and the numbers
//! the paper reports for it (Table 1, Figure 9), for paper-vs-measured
//! comparison in `EXPERIMENTS.md`.

use hmtx_runtime::Paradigm;

/// The paper's reported numbers for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Table 1: hot-loop share of native execution time (fraction).
    pub hot_loop_fraction: f64,
    /// Table 1: average speculative memory accesses per transaction.
    pub spec_accesses_per_tx: f64,
    /// Table 1: transaction aborts avoided via SLA per transaction.
    pub sla_aborts_avoided_per_tx: f64,
    /// Table 1: % of speculative loads needing an SLA (fraction).
    pub loads_needing_sla: f64,
    /// Table 1: % of branch instructions inside the hot loop (fraction).
    pub branch_fraction: f64,
    /// Table 1: branch misprediction rate inside the hot loop (fraction).
    pub mispredict_rate: f64,
    /// Figure 9: average combined read/write set per transaction, in kB.
    pub combined_set_kb: f64,
}

/// Static description of one of the 8 evaluated benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadMeta {
    /// Benchmark name as in the paper.
    pub name: &'static str,
    /// Parallelization paradigm (Table 1).
    pub paradigm: Paradigm,
    /// Whether the paper has an SMTX version to compare against
    /// (6 of the 8; not 186.crafty or ispell).
    pub smtx_comparable: bool,
    /// The paper's reported numbers.
    pub paper: PaperRow,
}

/// Metadata for all 8 benchmarks, in the paper's table order.
pub fn paper_table1() -> Vec<WorkloadMeta> {
    vec![
        WorkloadMeta {
            name: "052.alvinn",
            paradigm: Paradigm::Doall,
            smtx_comparable: true,
            paper: PaperRow {
                hot_loop_fraction: 0.855,
                spec_accesses_per_tx: 2_290_717.0,
                sla_aborts_avoided_per_tx: 0.158,
                loads_needing_sla: 0.0128,
                branch_fraction: 0.115,
                mispredict_rate: 0.00245,
                combined_set_kb: 194.0,
            },
        },
        WorkloadMeta {
            name: "130.li",
            paradigm: Paradigm::PsDswp,
            smtx_comparable: true,
            paper: PaperRow {
                hot_loop_fraction: 1.0,
                spec_accesses_per_tx: 181_844_120.0,
                sla_aborts_avoided_per_tx: 22.5,
                loads_needing_sla: 0.0421,
                branch_fraction: 0.205,
                mispredict_rate: 0.0365,
                combined_set_kb: 5_000.0,
            },
        },
        WorkloadMeta {
            name: "164.gzip",
            paradigm: Paradigm::PsDswp,
            smtx_comparable: true,
            paper: PaperRow {
                hot_loop_fraction: 0.984,
                spec_accesses_per_tx: 6_248_356.0,
                sla_aborts_avoided_per_tx: 3.32,
                loads_needing_sla: 0.0708,
                branch_fraction: 0.146,
                mispredict_rate: 0.0268,
                combined_set_kb: 1_200.0,
            },
        },
        WorkloadMeta {
            name: "186.crafty",
            paradigm: Paradigm::PsDswp,
            smtx_comparable: false,
            paper: PaperRow {
                hot_loop_fraction: 0.995,
                spec_accesses_per_tx: 4_498_903.0,
                sla_aborts_avoided_per_tx: 1.50,
                loads_needing_sla: 0.0492,
                branch_fraction: 0.131,
                mispredict_rate: 0.0559,
                combined_set_kb: 700.0,
            },
        },
        WorkloadMeta {
            name: "197.parser",
            paradigm: Paradigm::PsDswp,
            smtx_comparable: true,
            paper: PaperRow {
                hot_loop_fraction: 1.0,
                spec_accesses_per_tx: 24_733_144.0,
                sla_aborts_avoided_per_tx: 24.6,
                loads_needing_sla: 0.0256,
                branch_fraction: 0.192,
                mispredict_rate: 0.0105,
                combined_set_kb: 2_500.0,
            },
        },
        WorkloadMeta {
            name: "256.bzip2",
            paradigm: Paradigm::PsDswp,
            smtx_comparable: true,
            paper: PaperRow {
                hot_loop_fraction: 0.985,
                spec_accesses_per_tx: 131_271_380.0,
                sla_aborts_avoided_per_tx: 17.3,
                loads_needing_sla: 0.0604,
                branch_fraction: 0.126,
                mispredict_rate: 0.0133,
                combined_set_kb: 16_222.0,
            },
        },
        WorkloadMeta {
            name: "456.hmmer",
            paradigm: Paradigm::PsDswp,
            smtx_comparable: true,
            paper: PaperRow {
                hot_loop_fraction: 1.0,
                spec_accesses_per_tx: 1_709_195.0,
                sla_aborts_avoided_per_tx: 0.187,
                loads_needing_sla: 0.0140,
                branch_fraction: 0.0483,
                mispredict_rate: 0.0103,
                combined_set_kb: 120.0,
            },
        },
        WorkloadMeta {
            name: "ispell",
            paradigm: Paradigm::PsDswp,
            smtx_comparable: false,
            paper: PaperRow {
                hot_loop_fraction: 0.865,
                spec_accesses_per_tx: 43_752.0,
                sla_aborts_avoided_per_tx: 0.0280,
                loads_needing_sla: 0.130,
                branch_fraction: 0.166,
                mispredict_rate: 0.0282,
                combined_set_kb: 10.0,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_benchmarks_in_table_order() {
        let t = paper_table1();
        assert_eq!(t.len(), 8);
        assert_eq!(t[0].name, "052.alvinn");
        assert_eq!(t[7].name, "ispell");
    }

    #[test]
    fn six_benchmarks_have_smtx_comparisons() {
        let t = paper_table1();
        assert_eq!(t.iter().filter(|m| m.smtx_comparable).count(), 6);
        assert!(
            !t.iter()
                .find(|m| m.name == "186.crafty")
                .unwrap()
                .smtx_comparable
        );
        assert!(
            !t.iter()
                .find(|m| m.name == "ispell")
                .unwrap()
                .smtx_comparable
        );
    }

    #[test]
    fn only_alvinn_is_doall() {
        let t = paper_table1();
        for m in &t {
            if m.name == "052.alvinn" {
                assert_eq!(m.paradigm, Paradigm::Doall);
            } else {
                assert_eq!(m.paradigm, Paradigm::PsDswp);
            }
        }
    }

    #[test]
    fn bzip2_has_the_largest_set_and_ispell_the_smallest() {
        let t = paper_table1();
        let max = t.iter().max_by(|a, b| {
            a.paper
                .combined_set_kb
                .partial_cmp(&b.paper.combined_set_kb)
                .unwrap()
        });
        let min = t.iter().min_by(|a, b| {
            a.paper
                .combined_set_kb
                .partial_cmp(&b.paper.combined_set_kb)
                .unwrap()
        });
        assert_eq!(max.unwrap().name, "256.bzip2");
        assert_eq!(min.unwrap().name, "ispell");
    }
}
