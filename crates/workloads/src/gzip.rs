//! 164.gzip analogue: LZ77-style block compression (PS-DSWP).
//!
//! Stage 1 advances a cursor over the shared input stream (the loop-carried
//! dependence) and hands each block offset to stage 2. Stage 2 scans its
//! block position by position: hash the current word, probe this block's
//! hash table for a previous match (a data-dependent hit/miss branch), and
//! update the table — writing the match decisions to a per-block output
//! region. The per-block hash table gives gzip its mid-sized write set.

use hmtx_isa::{Cond, ProgramBuilder, Reg};
use hmtx_machine::Machine;
use hmtx_runtime::env::{regs, LoopEnv, WORKLOAD_REGION_BASE};
use hmtx_runtime::LoopBody;

use crate::emitlib::{counted_loop, hash_to_offset, iter_region};
use crate::heap::GuestHeap;
use crate::meta::WorkloadMeta;
use crate::suite::{meta_for, Scale, Workload};

/// The gzip analogue.
#[derive(Debug, Clone)]
pub struct Gzip {
    iters: u64,
    block_words: u64,
    hash_buckets: u64,
    input: u64,
    tables: u64,
    table_stride: u64,
    outputs: u64,
    output_stride: u64,
}

impl Gzip {
    /// Builds the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (iters, block_words, hash_buckets) = match scale {
            Scale::Quick => (18, 48, 64),
            Scale::Standard => (48, 128, 256),
            Scale::Stress => (96, 1024, 1024),
        };
        let input = WORKLOAD_REGION_BASE;
        let input_bytes: u64 = iters * block_words * 8;
        let tables = input + input_bytes;
        let table_stride = hash_buckets * 8;
        let outputs = tables + iters * table_stride;
        let output_stride = (block_words * 8).div_ceil(64) * 64;
        Gzip {
            iters,
            block_words,
            hash_buckets,
            input,
            tables,
            table_stride,
            outputs,
            output_stride,
        }
    }

    /// Address of the match-count summary word of block `n` (1-based).
    pub fn summary_cell(&self, n: u64) -> u64 {
        self.outputs + (n - 1) * self.output_stride
    }
}

impl LoopBody for Gzip {
    fn iterations(&self) -> u64 {
        self.iters
    }

    fn build_image(&self, machine: &mut Machine, env: &LoopEnv) {
        let mut heap = GuestHeap::new(0x164);
        // "Compressible" input: random words drawn from a small alphabet so
        // hash probes actually hit.
        let input = heap.alloc_random_words(machine, self.iters * self.block_words, 29);
        debug_assert_eq!(input.0, self.input);
        heap.alloc(self.iters * self.table_stride); // per-block hash tables
        heap.alloc(self.iters * self.output_stride); // per-block outputs
                                                     // Stage-1 cursor starts at the input base.
        machine
            .mem_mut()
            .memory_mut()
            .write_word(env.state_slot(0), self.input);
    }

    fn emit_stage1(&self, b: &mut ProgramBuilder, env: &LoopEnv) {
        // cursor -> ITEM; cursor += block bytes (loop-carried dependence).
        b.li(Reg::R1, env.state_slot(0).0 as i64);
        b.load(regs::ITEM, Reg::R1, 0);
        b.addi(Reg::R2, regs::ITEM, (self.block_words * 8) as i64);
        b.store(Reg::R2, Reg::R1, 0);
        // Peek at the block head (models the read that drives gzip's
        // block-type decision).
        b.load(Reg::R3, regs::ITEM, 0);
        b.li(regs::SPEC_LOADS, 2);
        b.li(regs::SPEC_STORES, 1);
    }

    fn emit_stage2(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        // R1 = input ptr, R2 = this block's hash table, R3 = matches,
        // R11 = table stores.
        b.mov(Reg::R1, regs::ITEM);
        iter_region(b, Reg::R2, self.tables, self.table_stride);
        b.li(Reg::R3, 0);
        b.li(Reg::R11, 0);
        let buckets = self.hash_buckets;
        counted_loop(b, Reg::R0, self.block_words, |b| {
            let miss = b.new_label();
            let update = b.new_label();
            b.load(Reg::R4, Reg::R1, 0); // current word
            hash_to_offset(b, Reg::R5, Reg::R4, buckets);
            b.add(Reg::R5, Reg::R5, Reg::R2);
            b.load(Reg::R6, Reg::R5, 0); // previous occupant (word+1)
                                         // Hit if the stored word matches (data-dependent branch).
            b.sub(Reg::R7, Reg::R6, 1);
            b.branch(Cond::Ne, Reg::R7, Reg::R4, miss);
            b.addi(Reg::R3, Reg::R3, 1); // match found
            b.jump(update);
            b.bind(miss).unwrap();
            b.bind(update).unwrap();
            b.addi(Reg::R8, Reg::R4, 1);
            b.store(Reg::R8, Reg::R5, 0); // install word+1
            b.addi(Reg::R11, Reg::R11, 1);
            b.addi(Reg::R1, Reg::R1, 8);
        })
        .unwrap();
        // Summary: match count for the block.
        iter_region(b, Reg::R9, self.outputs, self.output_stride);
        b.store(Reg::R3, Reg::R9, 0);
        b.li(regs::SPEC_LOADS, (self.block_words * 2) as i64);
        b.addi(regs::SPEC_STORES, Reg::R11, 1);
    }

    fn minimal_rw_counts(&self) -> (u64, u64) {
        (2, 2)
    }
}

impl Workload for Gzip {
    fn meta(&self) -> WorkloadMeta {
        meta_for("164.gzip").expect("registered benchmark")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_runtime::{run_loop, Paradigm};
    use hmtx_types::{Addr, MachineConfig, Vid};

    #[test]
    fn psdswp_matches_sequential() {
        let w = Gzip::new(Scale::Quick);
        let (m_seq, _) = run_loop(
            Paradigm::Sequential,
            &w,
            &MachineConfig::test_default(),
            100_000_000,
        )
        .unwrap();
        let w2 = Gzip::new(Scale::Quick);
        let (m_par, report) = run_loop(
            Paradigm::PsDswp,
            &w2,
            &MachineConfig::test_default(),
            100_000_000,
        )
        .unwrap();
        assert_eq!(report.recoveries, 0);
        for n in 1..=w.iterations() {
            assert_eq!(
                m_seq.mem().peek_word(Addr(w.summary_cell(n)), Vid(0)),
                m_par.mem().peek_word(Addr(w2.summary_cell(n)), Vid(0)),
                "block {n}"
            );
        }
    }

    #[test]
    fn small_alphabet_produces_matches() {
        let w = Gzip::new(Scale::Quick);
        let (machine, _) = run_loop(
            Paradigm::Sequential,
            &w,
            &MachineConfig::test_default(),
            100_000_000,
        )
        .unwrap();
        let total: u64 = (1..=w.iterations())
            .map(|n| machine.mem().peek_word(Addr(w.summary_cell(n)), Vid(0)))
            .sum();
        assert!(total > 0, "hash probes must hit sometimes");
    }
}
