//! 052.alvinn analogue: neural-network training (DOALL).
//!
//! ALVINN trains a small feed-forward network on road images. The hot loop
//! is a DOALL over training patterns: each iteration computes the hidden
//! layer activations for one pattern — affine loops over a shared read-only
//! weight matrix, with very regular (highly predictable) control flow, which
//! is why the paper reports a 0.245% misprediction rate and few SLAs.
//!
//! Each iteration reads `hidden x inputs` weights and one input pattern, and
//! writes this pattern's activation vector and error cell (disjoint across
//! iterations, so the DOALL transactions never conflict).

use hmtx_isa::{ProgramBuilder, Reg};
use hmtx_machine::Machine;
use hmtx_runtime::env::{regs, LoopEnv, WORKLOAD_REGION_BASE};
use hmtx_runtime::LoopBody;

use crate::emitlib::counted_loop;
use crate::heap::GuestHeap;
use crate::meta::WorkloadMeta;
use crate::suite::{meta_for, Scale, Workload};

/// The ALVINN analogue.
#[derive(Debug, Clone)]
pub struct Alvinn {
    iters: u64,
    hidden: u64,
    inputs: u64,
    weights: u64,
    patterns: u64,
    activations: u64,
    errors: u64,
}

impl Alvinn {
    /// Builds the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (iters, hidden, inputs) = match scale {
            Scale::Quick => (24, 8, 12),
            Scale::Standard => (48, 16, 24),
            Scale::Stress => (64, 48, 64),
        };
        let weights = WORKLOAD_REGION_BASE;
        let patterns = weights + hidden * inputs * 8;
        let activations = patterns + iters * inputs * 8;
        let errors = activations + iters * hidden * 8;
        Alvinn {
            iters,
            hidden,
            inputs,
            weights,
            patterns,
            activations,
            errors,
        }
    }

    /// Host-side reference result: the error sum for pattern `n` (1-based).
    pub fn expected_error(&self, machine: &Machine, n: u64) -> u64 {
        let mut total = 0u64;
        for h in 0..self.hidden {
            let mut acc = 0u64;
            for i in 0..self.inputs {
                let w = machine
                    .mem()
                    .memory()
                    .read_word(hmtx_types::Addr(self.weights + (h * self.inputs + i) * 8));
                let p = machine.mem().memory().read_word(hmtx_types::Addr(
                    self.patterns + ((n - 1) * self.inputs + i) * 8,
                ));
                acc = acc.wrapping_add(w.wrapping_mul(p));
            }
            total = total.wrapping_add(acc);
        }
        total
    }

    /// Address of the error cell for pattern `n` (1-based).
    pub fn error_cell(&self, n: u64) -> u64 {
        self.errors + (n - 1) * 64
    }
}

impl LoopBody for Alvinn {
    fn iterations(&self) -> u64 {
        self.iters
    }

    fn build_image(&self, machine: &mut Machine, _env: &LoopEnv) {
        let mut heap = GuestHeap::new(0x052);
        let w = heap.alloc_random_words(machine, self.hidden * self.inputs, 97);
        let p = heap.alloc_random_words(machine, self.iters * self.inputs, 255);
        debug_assert_eq!(w.0, self.weights);
        debug_assert_eq!(p.0, self.patterns);
        heap.alloc(self.iters * self.hidden * 8); // activations (zeroed)
        heap.alloc(self.iters * 64); // error cells
    }

    fn emit_stage1(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        b.mov(regs::ITEM, regs::N);
        // Stage 1 performs no speculative memory accesses; say so explicitly
        // so the SMTX log-shipping code reads defined counts.
        b.li(regs::SPEC_LOADS, 0);
        b.li(regs::SPEC_STORES, 0);
    }

    fn emit_stage2(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        // R1 = this pattern's input row, R3 = this pattern's activation row.
        b.sub(Reg::R1, regs::ITEM, 1);
        b.mul(Reg::R1, Reg::R1, self.inputs as i64 * 8);
        b.addi(Reg::R1, Reg::R1, self.patterns as i64);
        b.sub(Reg::R3, regs::ITEM, 1);
        b.mul(Reg::R3, Reg::R3, self.hidden as i64 * 8);
        b.addi(Reg::R3, Reg::R3, self.activations as i64);
        b.li(Reg::R11, 0); // error accumulator
        let (hidden, inputs, weights) = (self.hidden, self.inputs, self.weights);
        counted_loop(b, Reg::R4, hidden, |b| {
            // Weight row pointer and pattern pointer.
            b.mul(Reg::R7, Reg::R4, inputs as i64 * 8);
            b.addi(Reg::R7, Reg::R7, weights as i64);
            b.mov(Reg::R8, Reg::R1);
            b.li(Reg::R5, 0);
            counted_loop(b, Reg::R6, inputs, |b| {
                b.load(Reg::R9, Reg::R7, 0);
                b.load(Reg::R10, Reg::R8, 0);
                b.mul(Reg::R9, Reg::R9, Reg::R10);
                b.add(Reg::R5, Reg::R5, Reg::R9);
                b.addi(Reg::R7, Reg::R7, 8);
                b.addi(Reg::R8, Reg::R8, 8);
            })
            .unwrap();
            b.shl(Reg::R9, Reg::R4, 3);
            b.add(Reg::R9, Reg::R9, Reg::R3);
            b.store(Reg::R5, Reg::R9, 0);
            b.add(Reg::R11, Reg::R11, Reg::R5);
        })
        .unwrap();
        // Error cell for this pattern.
        b.sub(Reg::R9, regs::ITEM, 1);
        b.mul(Reg::R9, Reg::R9, 64);
        b.addi(Reg::R9, Reg::R9, self.errors as i64);
        b.store(Reg::R11, Reg::R9, 0);
        // Validated access counts for the SMTX baseline.
        b.li(regs::SPEC_LOADS, (self.hidden * self.inputs * 2) as i64);
        b.li(regs::SPEC_STORES, (self.hidden + 1) as i64);
    }

    fn minimal_rw_counts(&self) -> (u64, u64) {
        (2, 1)
    }
}

impl Workload for Alvinn {
    fn meta(&self) -> WorkloadMeta {
        meta_for("052.alvinn").expect("registered benchmark")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_runtime::{run_loop, Paradigm};
    use hmtx_types::{Addr, MachineConfig, Vid};

    #[test]
    fn sequential_matches_host_reference() {
        let w = Alvinn::new(Scale::Quick);
        let (machine, report) = run_loop(
            Paradigm::Sequential,
            &w,
            &MachineConfig::test_default(),
            50_000_000,
        )
        .unwrap();
        assert_eq!(report.recoveries, 0);
        for n in 1..=w.iterations() {
            assert_eq!(
                machine.mem().peek_word(Addr(w.error_cell(n)), Vid(0)),
                w.expected_error(&machine, n),
                "pattern {n}"
            );
        }
    }

    #[test]
    fn doall_matches_sequential_and_does_not_abort() {
        let w = Alvinn::new(Scale::Quick);
        let (machine, report) = run_loop(
            Paradigm::Doall,
            &w,
            &MachineConfig::test_default(),
            50_000_000,
        )
        .unwrap();
        assert_eq!(report.recoveries, 0, "DOALL iterations are independent");
        for n in 1..=w.iterations() {
            assert_eq!(
                machine.mem().peek_word(Addr(w.error_cell(n)), Vid(0)),
                w.expected_error(&machine, n)
            );
        }
    }

    #[test]
    fn branch_profile_is_regular() {
        let w = Alvinn::new(Scale::Quick);
        let (machine, _) = run_loop(
            Paradigm::Sequential,
            &w,
            &MachineConfig::test_default(),
            50_000_000,
        )
        .unwrap();
        assert!(
            machine.stats().mispredict_rate() < 0.05,
            "affine loops must predict well, got {:.3}",
            machine.stats().mispredict_rate()
        );
    }
}
