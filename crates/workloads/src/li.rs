//! 130.li analogue: a lisp-interpreter-style workload (PS-DSWP).
//!
//! `130.li` is the paper's largest transaction producer (~182M speculative
//! accesses per TX): evaluating lisp expressions chases cons cells through
//! an irregular heap with tag-dispatched (hard-to-predict) control flow.
//!
//! Stage 1 walks a worklist of expressions exactly like Figure 3's
//! linked-list traversal (`node = node->next` kept in a state slot).
//! Stage 2 "evaluates" the expression: a bounded walk over a shared cons
//! heap, choosing car/cdr by each cell's pseudo-random tag (≈50/50 data-
//! dependent branch), maintaining an explicit stack in a per-iteration
//! workspace, and writing a result cell.

use hmtx_isa::{Cond, ProgramBuilder, Reg};
use hmtx_machine::Machine;
use hmtx_runtime::env::{regs, LoopEnv, WORKLOAD_REGION_BASE};
use hmtx_runtime::LoopBody;

use crate::emitlib::counted_loop;
use crate::heap::GuestHeap;
use crate::meta::WorkloadMeta;
use crate::suite::{meta_for, Scale, Workload};

/// Cons-cell layout: word 0 = car pointer, word 1 = cdr pointer,
/// word 2 = tag, word 3 = value; one cell per cache line.
const CELL_SIZE: u64 = 64;

/// The li analogue.
#[derive(Debug, Clone)]
pub struct Li {
    iters: u64,
    cells: u64,
    steps: u64,
    heap_base: u64,
    results: u64,
    workspace: u64,
    workspace_stride: u64,
}

impl Li {
    /// Builds the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (iters, cells, steps) = match scale {
            Scale::Quick => (18, 64, 40),
            Scale::Standard => (48, 384, 240),
            Scale::Stress => (96, 1024, 2000),
        };
        let heap_base = WORKLOAD_REGION_BASE;
        let worklist = heap_base + cells * CELL_SIZE;
        let results = worklist + iters * CELL_SIZE;
        let workspace_stride = (steps + 8) * 8;
        let workspace = results + iters * CELL_SIZE;
        Li {
            iters,
            cells,
            steps,
            heap_base,
            results,
            workspace,
            workspace_stride: workspace_stride.div_ceil(64) * 64,
        }
    }

    /// Address of the result cell of iteration `n` (1-based).
    pub fn result_cell(&self, n: u64) -> u64 {
        self.results + (n - 1) * CELL_SIZE
    }
}

impl LoopBody for Li {
    fn iterations(&self) -> u64 {
        self.iters
    }

    fn build_image(&self, machine: &mut Machine, env: &LoopEnv) {
        let mut heap = GuestHeap::new(0x130);
        // Cons heap: random car/cdr pointers into the heap, random tags.
        let base = heap.alloc(self.cells * CELL_SIZE);
        debug_assert_eq!(base.0, self.heap_base);
        for i in 0..self.cells {
            let cell = base.offset((i * CELL_SIZE) as i64);
            let car = self.heap_base + heap.rand(self.cells) * CELL_SIZE;
            let cdr = self.heap_base + heap.rand(self.cells) * CELL_SIZE;
            let mem = machine.mem_mut().memory_mut();
            mem.write_word(cell, car);
            mem.write_word(cell.offset(8), cdr);
            mem.write_word(cell.offset(16), heap.rand(u64::MAX - 1));
            mem.write_word(cell.offset(24), heap.rand(1_000_000));
        }
        // Worklist: a shuffled linked list of expressions; each payload is a
        // pointer into the cons heap.
        let cells = self.cells;
        let heap_base = self.heap_base;
        let mut seeds = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            seeds.push(heap_base + heap.rand(cells) * CELL_SIZE);
        }
        let head = heap.alloc_list(machine, self.iters, |i| seeds[i as usize]);
        // Stage-1 state slot 0 holds the current worklist node.
        machine
            .mem_mut()
            .memory_mut()
            .write_word(env.state_slot(0), head.0);
        heap.alloc(self.iters * CELL_SIZE); // results
        heap.alloc(self.iters * self.workspace_stride); // eval stacks
    }

    fn emit_stage1(&self, b: &mut ProgramBuilder, env: &LoopEnv) {
        // Figure 3's stage 1: producedNode = node; node = node->next.
        b.li(Reg::R1, env.state_slot(0).0 as i64);
        b.load(Reg::R2, Reg::R1, 0); // node
        b.load(regs::ITEM, Reg::R2, 8); // payload: expression root
        b.load(Reg::R3, Reg::R2, 0); // node->next
        b.store(Reg::R3, Reg::R1, 0);
        // Early exit when the list ends (control "speculated" in DSWP terms:
        // checked here, before later iterations are squashed).
        let cont = b.new_label();
        b.branch_imm(Cond::Ne, Reg::R3, 0, cont);
        b.li(regs::STOP, 1);
        b.bind(cont).unwrap();
        b.li(regs::SPEC_LOADS, 3);
        b.li(regs::SPEC_STORES, 1);
    }

    fn emit_stage2(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        // R1 = current cell, R2 = checksum, R3 = stack base, R4 = stack
        // depth, R11 = store count.
        b.mov(Reg::R1, regs::ITEM);
        b.li(Reg::R2, 0);
        crate::emitlib::iter_region(b, Reg::R3, self.workspace, self.workspace_stride);
        b.li(Reg::R4, 0);
        b.li(Reg::R11, 0);
        let steps = self.steps;
        counted_loop(b, Reg::R0, steps, |b| {
            let go_cdr = b.new_label();
            let stepped = b.new_label();
            b.load(Reg::R5, Reg::R1, 16); // tag
            b.load(Reg::R6, Reg::R1, 24); // value
            b.add(Reg::R2, Reg::R2, Reg::R6);
            // Data-dependent direction: essentially a coin flip per cell,
            // the source of li's high misprediction rate.
            b.and(Reg::R7, Reg::R5, 1);
            b.branch_imm(Cond::Ne, Reg::R7, 0, go_cdr);
            // car path: push the cdr on the eval stack.
            b.load(Reg::R8, Reg::R1, 8);
            b.shl(Reg::R9, Reg::R4, 3);
            b.add(Reg::R9, Reg::R9, Reg::R3);
            b.store(Reg::R8, Reg::R9, 0);
            b.addi(Reg::R4, Reg::R4, 1);
            b.addi(Reg::R11, Reg::R11, 1);
            b.load(Reg::R1, Reg::R1, 0);
            b.jump(stepped);
            b.bind(go_cdr).unwrap();
            // cdr path: pop from the stack if possible, else follow cdr.
            let follow = b.new_label();
            b.branch_imm(Cond::Eq, Reg::R4, 0, follow);
            b.sub(Reg::R4, Reg::R4, 1);
            b.shl(Reg::R9, Reg::R4, 3);
            b.add(Reg::R9, Reg::R9, Reg::R3);
            b.load(Reg::R1, Reg::R9, 0);
            b.jump(stepped);
            b.bind(follow).unwrap();
            b.load(Reg::R1, Reg::R1, 8);
            b.bind(stepped).unwrap();
        })
        .unwrap();
        // Result cell.
        crate::emitlib::iter_region(b, Reg::R9, self.results, CELL_SIZE);
        b.store(Reg::R2, Reg::R9, 0);
        // Counts: ~3-4 loads per step plus the pushes; approximate with the
        // algorithm's own counters (steps and pushes are known).
        b.li(regs::SPEC_LOADS, (steps * 3) as i64);
        b.addi(regs::SPEC_STORES, Reg::R11, 1);
    }

    fn minimal_rw_counts(&self) -> (u64, u64) {
        (3, 2)
    }
}

impl Workload for Li {
    fn meta(&self) -> WorkloadMeta {
        meta_for("130.li").expect("registered benchmark")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_runtime::{run_loop, Paradigm};
    use hmtx_types::{Addr, MachineConfig, Vid};

    fn results(machine: &Machine, w: &Li) -> Vec<u64> {
        (1..=w.iterations())
            .map(|n| machine.mem().peek_word(Addr(w.result_cell(n)), Vid(0)))
            .collect()
    }

    #[test]
    fn psdswp_matches_sequential() {
        let w = Li::new(Scale::Quick);
        let (m_seq, _) = run_loop(
            Paradigm::Sequential,
            &w,
            &MachineConfig::test_default(),
            100_000_000,
        )
        .unwrap();
        let w2 = Li::new(Scale::Quick);
        let (m_par, report) = run_loop(
            Paradigm::PsDswp,
            &w2,
            &MachineConfig::test_default(),
            100_000_000,
        )
        .unwrap();
        assert_eq!(results(&m_seq, &w), results(&m_par, &w2));
        assert_eq!(report.recoveries, 0, "li evaluations are conflict-free");
    }

    #[test]
    fn pointer_chasing_mispredicts_substantially() {
        let w = Li::new(Scale::Quick);
        let (machine, _) = run_loop(
            Paradigm::Sequential,
            &w,
            &MachineConfig::test_default(),
            100_000_000,
        )
        .unwrap();
        let rate = machine.stats().mispredict_rate();
        assert!(rate > 0.02, "tag dispatch must mispredict, got {rate:.4}");
    }

    #[test]
    fn stage1_is_a_genuine_linked_list_walk() {
        // The worklist must terminate by STOP (its length), not the bound.
        let w = Li::new(Scale::Quick);
        let (machine, _) = run_loop(
            Paradigm::Sequential,
            &w,
            &MachineConfig::test_default(),
            100_000_000,
        )
        .unwrap();
        // All result cells written => all list nodes reached.
        for n in 1..=w.iterations() {
            // Checksums of a random heap are almost surely nonzero.
            assert_ne!(
                machine.mem().peek_word(Addr(w.result_cell(n)), Vid(0)),
                0,
                "iteration {n} never ran"
            );
        }
    }
}
