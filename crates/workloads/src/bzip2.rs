//! 256.bzip2 analogue: block-sorting compression (PS-DSWP).
//!
//! bzip2 has the paper's largest read/write sets (≈16 MB per transaction,
//! Figure 9): each iteration sorts an entire block. Stage 1 advances the
//! block cursor; stage 2 copies the block into a per-iteration workspace and
//! runs odd-even transposition passes over it — bulk reads and writes that
//! dominate the validation traffic under SMTX and stress HMTX's version
//! storage.

use hmtx_isa::{Cond, ProgramBuilder, Reg};
use hmtx_machine::Machine;
use hmtx_runtime::env::{regs, LoopEnv, WORKLOAD_REGION_BASE};
use hmtx_runtime::LoopBody;

use crate::emitlib::{counted_loop, iter_region};
use crate::heap::GuestHeap;
use crate::meta::WorkloadMeta;
use crate::suite::{meta_for, Scale, Workload};

/// The bzip2 analogue.
#[derive(Debug, Clone)]
pub struct Bzip2 {
    iters: u64,
    block_words: u64,
    passes: u64,
    input: u64,
    workspaces: u64,
    workspace_stride: u64,
    checksums: u64,
}

impl Bzip2 {
    /// Builds the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (iters, block_words, passes) = match scale {
            Scale::Quick => (12, 128, 4),
            Scale::Standard => (36, 1024, 6),
            Scale::Stress => (48, 2048, 8),
        };
        let input = WORKLOAD_REGION_BASE;
        let input_bytes: u64 = iters * block_words * 8;
        let workspaces = input + input_bytes.div_ceil(64) * 64;
        let workspace_stride = (block_words * 8).div_ceil(64) * 64;
        let checksums = workspaces + iters * workspace_stride;
        Bzip2 {
            iters,
            block_words,
            passes,
            input,
            workspaces,
            workspace_stride,
            checksums,
        }
    }

    /// Address of the checksum cell of block `n` (1-based).
    pub fn checksum_cell(&self, n: u64) -> u64 {
        self.checksums + (n - 1) * 64
    }

    /// Host-side reference: sorts block `n`'s input and returns the
    /// position-weighted checksum the guest computes.
    pub fn expected_checksum(&self, machine: &Machine, n: u64) -> u64 {
        let base = self.input + (n - 1) * self.block_words * 8;
        let mut words: Vec<u64> = (0..self.block_words)
            .map(|i| {
                machine
                    .mem()
                    .memory()
                    .read_word(hmtx_types::Addr(base + i * 8))
            })
            .collect();
        // Odd-even transposition with a bounded pass count (may leave the
        // block partially sorted, exactly like the guest).
        for pass in 0..self.passes {
            let start = (pass % 2) as usize;
            let mut i = start;
            while i + 1 < words.len() {
                if words[i] > words[i + 1] {
                    words.swap(i, i + 1);
                }
                i += 2;
            }
        }
        words.iter().enumerate().fold(0u64, |acc, (i, w)| {
            acc.wrapping_add(w.wrapping_mul(i as u64 + 1))
        })
    }
}

impl LoopBody for Bzip2 {
    fn iterations(&self) -> u64 {
        self.iters
    }

    fn build_image(&self, machine: &mut Machine, env: &LoopEnv) {
        let mut heap = GuestHeap::new(0x256);
        let input = heap.alloc_random_words(machine, self.iters * self.block_words, 1 << 32);
        debug_assert_eq!(input.0, self.input);
        heap.alloc(self.iters * self.workspace_stride);
        heap.alloc(self.iters * 64);
        machine
            .mem_mut()
            .memory_mut()
            .write_word(env.state_slot(0), self.input);
    }

    fn emit_stage1(&self, b: &mut ProgramBuilder, env: &LoopEnv) {
        b.li(Reg::R1, env.state_slot(0).0 as i64);
        b.load(regs::ITEM, Reg::R1, 0);
        b.addi(Reg::R2, regs::ITEM, (self.block_words * 8) as i64);
        b.store(Reg::R2, Reg::R1, 0);
        b.li(regs::SPEC_LOADS, 1);
        b.li(regs::SPEC_STORES, 1);
    }

    fn emit_stage2(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        let words = self.block_words;
        // R1 = input block, R2 = workspace, R11 = swap count.
        b.mov(Reg::R1, regs::ITEM);
        iter_region(b, Reg::R2, self.workspaces, self.workspace_stride);
        b.li(Reg::R11, 0);
        // Copy the block into the workspace.
        counted_loop(b, Reg::R0, words, |b| {
            b.shl(Reg::R3, Reg::R0, 3);
            b.add(Reg::R4, Reg::R3, Reg::R1);
            b.load(Reg::R5, Reg::R4, 0);
            b.add(Reg::R4, Reg::R3, Reg::R2);
            b.store(Reg::R5, Reg::R4, 0);
        })
        .unwrap();
        // Odd-even transposition passes.
        for pass in 0..self.passes {
            let start = pass % 2;
            let pairs = (words - start - 1).div_ceil(2);
            counted_loop(b, Reg::R0, pairs, |b| {
                let no_swap = b.new_label();
                // i = start + 2*k
                b.shl(Reg::R3, Reg::R0, 4); // 2k words -> bytes
                b.addi(Reg::R3, Reg::R3, (start * 8) as i64);
                b.add(Reg::R3, Reg::R3, Reg::R2);
                b.load(Reg::R5, Reg::R3, 0);
                b.load(Reg::R6, Reg::R3, 8);
                b.branch(Cond::GeU, Reg::R6, Reg::R5, no_swap);
                b.store(Reg::R6, Reg::R3, 0);
                b.store(Reg::R5, Reg::R3, 8);
                b.addi(Reg::R11, Reg::R11, 2);
                b.bind(no_swap).unwrap();
            })
            .unwrap();
        }
        // Position-weighted checksum of the (partially) sorted block.
        b.li(Reg::R7, 0);
        counted_loop(b, Reg::R0, words, |b| {
            b.shl(Reg::R3, Reg::R0, 3);
            b.add(Reg::R3, Reg::R3, Reg::R2);
            b.load(Reg::R5, Reg::R3, 0);
            b.addi(Reg::R6, Reg::R0, 1);
            b.mul(Reg::R5, Reg::R5, Reg::R6);
            b.add(Reg::R7, Reg::R7, Reg::R5);
        })
        .unwrap();
        iter_region(b, Reg::R9, self.checksums, 64);
        b.store(Reg::R7, Reg::R9, 0);
        // Loads: copy + compares + checksum; stores: copy + swaps + result.
        let fixed_loads = words + self.passes * (words - 1) + words;
        b.li(regs::SPEC_LOADS, fixed_loads as i64);
        b.addi(regs::SPEC_STORES, Reg::R11, (words + 1) as i64);
    }

    fn minimal_rw_counts(&self) -> (u64, u64) {
        (2, 1)
    }
}

impl Workload for Bzip2 {
    fn meta(&self) -> WorkloadMeta {
        meta_for("256.bzip2").expect("registered benchmark")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_runtime::{run_loop, Paradigm};
    use hmtx_types::{Addr, MachineConfig, Vid};

    #[test]
    fn guest_sort_matches_host_reference() {
        let w = Bzip2::new(Scale::Quick);
        let (machine, report) = run_loop(
            Paradigm::Sequential,
            &w,
            &MachineConfig::test_default(),
            200_000_000,
        )
        .unwrap();
        assert_eq!(report.recoveries, 0);
        for n in 1..=w.iterations() {
            assert_eq!(
                machine.mem().peek_word(Addr(w.checksum_cell(n)), Vid(0)),
                w.expected_checksum(&machine, n),
                "block {n}"
            );
        }
    }

    #[test]
    fn psdswp_matches_sequential() {
        let w = Bzip2::new(Scale::Quick);
        let (m_seq, _) = run_loop(
            Paradigm::Sequential,
            &w,
            &MachineConfig::test_default(),
            200_000_000,
        )
        .unwrap();
        let w2 = Bzip2::new(Scale::Quick);
        let (m_par, report) = run_loop(
            Paradigm::PsDswp,
            &w2,
            &MachineConfig::test_default(),
            200_000_000,
        )
        .unwrap();
        assert_eq!(report.recoveries, 0);
        for n in 1..=w.iterations() {
            assert_eq!(
                m_seq.mem().peek_word(Addr(w.checksum_cell(n)), Vid(0)),
                m_par.mem().peek_word(Addr(w2.checksum_cell(n)), Vid(0)),
            );
        }
    }

    #[test]
    fn has_the_largest_write_set_of_the_suite() {
        // Relative set sizes drive Figure 9; bzip2's per-TX footprint must
        // dominate e.g. ispell's by orders of magnitude.
        let bz = Bzip2::new(Scale::Standard);
        let bz_spec = bz.block_words * (2 + bz.passes);
        let ispell_spec = 16; // ispell touches a handful of lines per TX
        assert!(bz_spec > 50 * ispell_spec);
    }
}
