//! 186.crafty analogue: game-tree search (PS-DSWP).
//!
//! Crafty is the paper's most misprediction-heavy benchmark (5.59%): move
//! generation and evaluation branch on board contents that the predictor
//! cannot learn. Stage 1 generates position seeds from a PRNG kept in a
//! state slot; stage 2 "searches": a ply loop whose direction, pruning, and
//! table updates all branch on fresh pseudo-random bits, reading a shared
//! evaluation table and updating a per-iteration history table.

use hmtx_isa::{Cond, ProgramBuilder, Reg};
use hmtx_machine::Machine;
use hmtx_runtime::env::{regs, LoopEnv, WORKLOAD_REGION_BASE};
use hmtx_runtime::LoopBody;

use crate::emitlib::{counted_loop, hash_to_offset, xorshift_step};
use crate::heap::GuestHeap;
use crate::meta::WorkloadMeta;
use crate::suite::{meta_for, Scale, Workload};

/// The crafty analogue.
#[derive(Debug, Clone)]
pub struct Crafty {
    iters: u64,
    plies: u64,
    eval_entries: u64,
    history_entries: u64,
    eval_table: u64,
    history: u64,
    history_stride: u64,
    scores: u64,
}

impl Crafty {
    /// Builds the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (iters, plies) = match scale {
            Scale::Quick => (18, 32),
            Scale::Standard => (48, 96),
            Scale::Stress => (96, 1024),
        };
        let eval_entries = 256u64;
        let history_entries = 64u64;
        let eval_table = WORKLOAD_REGION_BASE;
        let history = eval_table + eval_entries * 8;
        let history_stride = history_entries * 8;
        let scores = history + iters * history_stride;
        Crafty {
            iters,
            plies,
            eval_entries,
            history_entries,
            eval_table,
            history,
            history_stride,
            scores,
        }
    }

    /// Address of the final score cell of iteration `n` (1-based).
    pub fn score_cell(&self, n: u64) -> u64 {
        self.scores + (n - 1) * 64
    }
}

impl LoopBody for Crafty {
    fn iterations(&self) -> u64 {
        self.iters
    }

    fn build_image(&self, machine: &mut Machine, env: &LoopEnv) {
        let mut heap = GuestHeap::new(0x186);
        let et = heap.alloc_random_words(machine, self.eval_entries, 10_000);
        debug_assert_eq!(et.0, self.eval_table);
        heap.alloc(self.iters * self.history_stride);
        heap.alloc(self.iters * 64); // scores
                                     // Stage-1 PRNG state.
        machine
            .mem_mut()
            .memory_mut()
            .write_word(env.state_slot(0), 0x9E37_79B9_7F4A_7C15);
    }

    fn emit_stage1(&self, b: &mut ProgramBuilder, env: &LoopEnv) {
        b.li(Reg::R1, env.state_slot(0).0 as i64);
        b.load(Reg::R2, Reg::R1, 0);
        xorshift_step(b, Reg::R2, Reg::R3);
        b.store(Reg::R2, Reg::R1, 0);
        b.mov(regs::ITEM, Reg::R2);
        b.li(regs::SPEC_LOADS, 1);
        b.li(regs::SPEC_STORES, 1);
    }

    fn emit_stage2(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        // R1 = PRNG, R2 = score, R3 = history base, R11 = store count.
        b.mov(Reg::R1, regs::ITEM);
        b.li(Reg::R2, 0);
        crate::emitlib::iter_region(b, Reg::R3, self.history, self.history_stride);
        b.li(Reg::R11, 0);
        let (eval_entries, history_entries, eval_table, plies) = (
            self.eval_entries,
            self.history_entries,
            self.eval_table,
            self.plies,
        );
        counted_loop(b, Reg::R0, plies, |b| {
            let skip_eval = b.new_label();
            let no_prune = b.new_label();
            let after = b.new_label();
            xorshift_step(b, Reg::R1, Reg::R4);
            // Move choice: unpredictable branch.
            b.and(Reg::R5, Reg::R1, 1);
            b.branch_imm(Cond::Ne, Reg::R5, 0, skip_eval);
            // Evaluate: shared read-only table lookup.
            hash_to_offset(b, Reg::R6, Reg::R1, eval_entries);
            b.addi(Reg::R6, Reg::R6, eval_table as i64);
            b.load(Reg::R7, Reg::R6, 0);
            b.add(Reg::R2, Reg::R2, Reg::R7);
            b.jump(no_prune);
            b.bind(skip_eval).unwrap();
            // Pruned: cheap scoring, second unpredictable branch.
            b.shr(Reg::R5, Reg::R1, 5);
            b.and(Reg::R5, Reg::R5, 1);
            b.branch_imm(Cond::Eq, Reg::R5, 0, after);
            b.addi(Reg::R2, Reg::R2, 3);
            b.bind(no_prune).unwrap();
            // History update: per-iteration read-modify-write.
            hash_to_offset(b, Reg::R6, Reg::R2, history_entries);
            b.add(Reg::R6, Reg::R6, Reg::R3);
            b.load(Reg::R7, Reg::R6, 0);
            b.addi(Reg::R7, Reg::R7, 1);
            b.store(Reg::R7, Reg::R6, 0);
            b.addi(Reg::R11, Reg::R11, 1);
            b.bind(after).unwrap();
        })
        .unwrap();
        crate::emitlib::iter_region(b, Reg::R9, self.scores, 64);
        b.store(Reg::R2, Reg::R9, 0);
        b.li(regs::SPEC_LOADS, (plies * 2) as i64);
        b.addi(regs::SPEC_STORES, Reg::R11, 1);
    }

    fn minimal_rw_counts(&self) -> (u64, u64) {
        (2, 1)
    }
}

impl Workload for Crafty {
    fn meta(&self) -> WorkloadMeta {
        meta_for("186.crafty").expect("registered benchmark")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_runtime::{run_loop, Paradigm};
    use hmtx_types::{Addr, MachineConfig, Vid};

    #[test]
    fn psdswp_matches_sequential() {
        let w = Crafty::new(Scale::Quick);
        let (m_seq, _) = run_loop(
            Paradigm::Sequential,
            &w,
            &MachineConfig::test_default(),
            100_000_000,
        )
        .unwrap();
        let w2 = Crafty::new(Scale::Quick);
        let (m_par, report) = run_loop(
            Paradigm::PsDswp,
            &w2,
            &MachineConfig::test_default(),
            100_000_000,
        )
        .unwrap();
        assert_eq!(report.recoveries, 0);
        for n in 1..=w.iterations() {
            assert_eq!(
                m_seq.mem().peek_word(Addr(w.score_cell(n)), Vid(0)),
                m_par.mem().peek_word(Addr(w2.score_cell(n)), Vid(0)),
                "iteration {n}"
            );
        }
    }

    #[test]
    fn search_mispredicts_heavily() {
        let w = Crafty::new(Scale::Quick);
        let (machine, _) = run_loop(
            Paradigm::Sequential,
            &w,
            &MachineConfig::test_default(),
            100_000_000,
        )
        .unwrap();
        let rate = machine.stats().mispredict_rate();
        assert!(
            rate > 0.04,
            "crafty-style branches must mispredict, got {rate:.4}"
        );
    }

    #[test]
    fn wrong_paths_issue_branch_speculative_loads() {
        let w = Crafty::new(Scale::Quick);
        let (machine, _) = run_loop(
            Paradigm::PsDswp,
            &w,
            &MachineConfig::test_default(),
            100_000_000,
        )
        .unwrap();
        assert!(machine.mem().stats().wrong_path_loads > 0);
    }
}
