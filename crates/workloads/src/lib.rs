//! The 8-benchmark workload suite of the HMTX paper, rebuilt as synthetic
//! analogues that run on the simulated machine.
//!
//! The paper evaluates 7 SPEC benchmarks and MiBench's ispell (Table 1).
//! Since the original binaries/inputs cannot run on this simulator, each
//! benchmark is replaced by a kernel with the same *parallelization shape*:
//! the same paradigm (DOALL for 052.alvinn, PS-DSWP for the rest), the same
//! kind of loop-carried dependence in stage 1 (pointer chasing for li,
//! stream cursors for gzip/parser/bzip2/hmmer/ispell, a PRNG for crafty),
//! the same style of stage-2 data structure traffic, and per-transaction
//! footprints scaled down ~100–1000x while preserving the suite's *relative*
//! ordering (bzip2 largest, ispell smallest — Figure 9).
//!
//! # Examples
//!
//! ```
//! use hmtx_runtime::{run_loop, Paradigm};
//! use hmtx_types::MachineConfig;
//! use hmtx_workloads::{suite, Scale};
//!
//! let workloads = suite(Scale::Quick);
//! assert_eq!(workloads.len(), 8);
//! let ispell = &workloads[7];
//! let (machine, report) =
//!     run_loop(Paradigm::PsDswp, ispell.as_ref(), &MachineConfig::test_default(), 50_000_000)?;
//! assert_eq!(report.recoveries, 0);
//! assert!(machine.mem().stats().commits > 0);
//! # Ok::<(), hmtx_types::SimError>(())
//! ```

#![warn(missing_docs)]

pub mod alvinn;
pub mod bzip2;
pub mod crafty;
pub mod emitlib;
pub mod gzip;
pub mod heap;
pub mod hmmer;
pub mod ispell;
pub mod li;
pub mod meta;
pub mod parser;
pub mod suite;

pub use meta::{paper_table1, PaperRow, WorkloadMeta};
pub use suite::{meta_for, suite, Scale, Workload};
