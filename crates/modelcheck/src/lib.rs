//! Explicit-state model checker for the MOESI+HMTX transition relation.
//!
//! The checker exhausts every reachable state of a small, finite protocol
//! model — `cores` private L1s × `lines` cache lines × transactions
//! `1..=2^vid_bits - 1`, with line data abstracted to one VID-stamped word —
//! and evaluates on **every** state:
//!
//! * the six global invariants of [`hmtx_core::MemorySystem::check_invariants`];
//! * the extended rules of `check_model_invariants` (modVID-ordering commit
//!   safety, no-duplicate-Exclusive-after-abort);
//! * uncommitted-value-forwarding serializability against the serial
//!   last-writer-wins oracle of [`hmtx_explore::opexplore::reference`] at
//!   every group commit, and drain/VID-reset cleanliness at end of run.
//!
//! Crucially, the step function is not a re-implementation: each state holds
//! a forked [`hmtx_explore::OpMachine`], which drives the *same*
//! [`hmtx_core::MemorySystem`] (behind the same [`hmtx_core::ProtocolBackend`]
//! seam) that the simulator runs. There is no abstract automaton to drift
//! out of sync with the implementation — the checker explores the
//! implementation itself, with data, timing, and statistics abstracted away
//! only in the *visited-state encoding* ([`canon`]).
//!
//! Counterexamples are action traces; [`lower`] turns them into replayable
//! [`hmtx_machine::ScheduleSeed`]s that `hmtx-run --replay` and the
//! explorer reproduce step-for-step.

#![warn(missing_docs)]

pub mod canon;
pub mod checker;
pub mod lower;

pub use checker::{check, check_kernel, failure_rule};
pub use lower::lower;
