//! Lowering counterexample traces to replayable [`ScheduleSeed`]s.
//!
//! The checker's traces are transaction-major op-id sequences over a named
//! kernel, which is exactly the explorer's `"ops"` seed format. Because the
//! model kernel's name encodes its configuration
//! ([`hmtx_types::ModelCheckConfig::kernel_name`]), a lowered seed is fully
//! self-contained: `hmtx-run --replay seed.json` rebuilds the kernel by
//! name and re-executes the trace under the same strict semantics
//! ([`hmtx_explore::execute_order_checked`]) the checker stepped with.

use hmtx_explore::OpKernel;
use hmtx_machine::ScheduleSeed;
use hmtx_types::{ModelCheckConfig, ModelViolation};

/// Lowers one violation to a replayable seed.
#[must_use]
pub fn lower(kernel: &OpKernel, cfg: &ModelCheckConfig, v: &ModelViolation) -> ScheduleSeed {
    ScheduleSeed {
        kind: "ops".to_string(),
        name: kernel.name.to_string(),
        seed_bug: cfg.seed_bug.map(|b| b.name().to_string()),
        picks: Vec::new(),
        order: v.order.clone(),
        note: format!(
            "lowered from hmtx-model: [{}] at depth {}: {}",
            v.rule, v.depth, v.detail
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_explore::model_kernel;

    #[test]
    fn lowered_seed_round_trips_through_json() {
        let cfg = ModelCheckConfig::default();
        let kernel = model_kernel(&cfg);
        let v = ModelViolation {
            rule: "at most one S-M version per address".into(),
            detail: "synthetic".into(),
            depth: 3,
            trace: vec!["op 0".into(), "op 4".into(), "op 1".into()],
            order: vec![0, 4, 1],
        };
        let seed = lower(&kernel, &cfg, &v);
        assert_eq!(seed.kind, "ops");
        assert_eq!(seed.name, "model-c2-l2-v2");
        let parsed = ScheduleSeed::from_json(&seed.to_json()).unwrap();
        assert_eq!(parsed, seed);
        assert!(
            hmtx_explore::resolve_kernel(&parsed.name).is_some(),
            "lowered seeds must resolve back to a kernel by name"
        );
    }
}
