//! `hmtx-model`: exhaustive explicit-state verification of the MOESI+HMTX
//! transition relation on a bounded model.
//!
//! ```text
//! hmtx-model [--cores N] [--lines K] [--vid-bits V] [--kernel NAME]
//!            [--seed-bug NAME] [--no-symmetry] [--max-states N]
//!            [--seed-out FILE] [--json]
//! ```
//!
//! Exit codes: `0` clean (every reachable state satisfies every property),
//! `1` at least one violation (counterexamples printed, and lowered to a
//! replayable seed with `--seed-out`), `2` usage error.

use std::process::ExitCode;

use hmtx_explore::{model_kernel, resolve_kernel, OpKernel};
use hmtx_modelcheck::{check_kernel, lower};
use hmtx_types::{Diagnostic, Json, ModelCheckConfig, ModelCheckReport, SeedBug, Severity};

struct Options {
    cfg: ModelCheckConfig,
    kernel: Option<String>,
    seed_out: Option<String>,
    json: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        cfg: ModelCheckConfig::default(),
        kernel: None,
        seed_out: None,
        json: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--cores" => {
                opts.cfg.cores = value("--cores")?
                    .parse()
                    .map_err(|_| "bad --cores".to_string())?;
            }
            "--lines" => {
                opts.cfg.lines = value("--lines")?
                    .parse()
                    .map_err(|_| "bad --lines".to_string())?;
            }
            "--vid-bits" => {
                opts.cfg.vid_bits = value("--vid-bits")?
                    .parse()
                    .map_err(|_| "bad --vid-bits".to_string())?;
            }
            "--max-states" => {
                opts.cfg.max_states = value("--max-states")?
                    .parse()
                    .map_err(|_| "bad --max-states".to_string())?;
            }
            "--seed-bug" => {
                let name = value("--seed-bug")?;
                opts.cfg.seed_bug =
                    Some(SeedBug::from_name(&name).ok_or(format!("unknown seed bug `{name}`"))?);
            }
            "--kernel" => opts.kernel = Some(value("--kernel")?),
            "--seed-out" => opts.seed_out = Some(value("--seed-out")?),
            "--no-symmetry" => opts.cfg.symmetry = false,
            "--json" => opts.json = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if opts.cfg.cores == 0 || opts.cfg.lines == 0 || !(1..=12).contains(&opts.cfg.vid_bits) {
        return Err("cores/lines must be nonzero and vid-bits in 1..=12".into());
    }
    Ok(opts)
}

/// The stable `&'static str` form of a rule for `Diagnostic` (whose rule
/// field is a static id by design).
fn static_rule(rule: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        "modVID <= highVID",
        "S-E implies modVID == 0",
        "at most one responding version hits per VID",
        "at most one writable non-speculative copy",
        "at most one S-M version per address",
        "at most one dirty non-speculative owner",
        "committed modVID never stays speculative",
        "no duplicate Exclusive after abort",
        "forwarded values serialize",
        "drain leaves no speculative lines",
        "panic",
        "sim-error",
    ];
    KNOWN
        .iter()
        .find(|&&k| k == rule)
        .copied()
        .unwrap_or("model-violation")
}

fn render_json(kernel: &OpKernel, report: &ModelCheckReport) -> String {
    let diagnostics: Vec<String> = report
        .violations
        .iter()
        .map(|v| {
            let core = v
                .order
                .last()
                .map(|&id| kernel.locate(id).1.core)
                .unwrap_or(0);
            Diagnostic {
                severity: Severity::Error,
                rule: static_rule(&v.rule),
                core,
                pc: v.depth,
                message: format!("{} (trace: {})", v.detail, v.trace.join("; ")),
            }
            .render_json()
        })
        .collect();
    format!(
        "{{\"kernel\":{},\"cores\":{},\"lines\":{},\"vid_bits\":{},\"symmetry\":{},\
         \"reachable\":{},\"transitions\":{},\"frontier_peak\":{},\"exhausted\":{},\
         \"diagnostics\":[{}]}}",
        Json::Str(kernel.name.to_string()).compact(),
        report.config.cores,
        report.config.lines,
        report.config.vid_bits,
        report.config.symmetry,
        report.reachable,
        report.transitions,
        report.frontier_peak,
        report.exhausted,
        diagnostics.join(",")
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("hmtx-model: {e}");
            eprintln!(
                "usage: hmtx-model [--cores N] [--lines K] [--vid-bits V] [--kernel NAME] \
                 [--seed-bug NAME] [--no-symmetry] [--max-states N] [--seed-out FILE] [--json]"
            );
            return ExitCode::from(2);
        }
    };
    let kernel = match &opts.kernel {
        None => model_kernel(&opts.cfg),
        Some(name) => match resolve_kernel(name) {
            Some(k) => k,
            None => {
                eprintln!("hmtx-model: unknown kernel `{name}`");
                return ExitCode::from(2);
            }
        },
    };
    let report = check_kernel(&kernel, &opts.cfg);

    if let (Some(path), Some(v)) = (&opts.seed_out, report.violations.first()) {
        let seed = lower(&kernel, &opts.cfg, v);
        let mut text = seed.to_json().pretty();
        text.push('\n');
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("hmtx-model: cannot write `{path}`: {e}");
            return ExitCode::from(2);
        }
        eprintln!("hmtx-model: counterexample seed written to {path}");
    }

    if opts.json {
        println!("{}", render_json(&kernel, &report));
    } else {
        // The report's own header names the *config*-derived model kernel;
        // with an explicit --kernel the checked kernel differs, so say so.
        if opts.kernel.is_some() {
            println!("kernel: {}", kernel.name);
        }
        println!("{report}");
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
