//! Canonical state encoding with core/line symmetry reduction.
//!
//! The visited set stores one 64-bit hash per canonical state
//! (hash compaction, Stern–Dill style). A state's canonical hash is the
//! minimum, over every core permutation × line permutation, of the hash of
//! its encoding with caches, per-op core bindings, and line addresses
//! relabeled through the permutation.
//!
//! # Why the reduction is sound
//!
//! Two states merged by the reduction have *isomorphic futures*: the
//! encoding covers (a) every cache's protocol-visible content
//! ([`hmtx_mem::Cache::abstract_view`]: states, VID pairs, phantom marks,
//! hints, pending lazy commits, per-set LRU ranks, and the stamped data
//! word), (b) the §8 overflow table, and (c) each transaction's **remaining
//! ops** with their core and line bindings relabeled through the same
//! permutation. The protocol itself never branches on a raw core index or
//! address value — only on the relations the encoding preserves — so a
//! violation reachable from one member of an orbit is reachable (modulo
//! renaming) from every member. Timing (`now`, latencies, statistics) is
//! excluded: it influences reported cycle counts, never a transition
//! outcome. Line renaming does permute physical set indices, which is why
//! model geometries are sized to be conflict-miss-free (DESIGN.md §12).

use std::hash::{DefaultHasher, Hash, Hasher};

use hmtx_explore::{OpKernel, OpMachine};
use hmtx_types::{Addr, LineAddr};

/// All permutations of `0..n` (identity first).
pub fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    fn heap(k: usize, items: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, items, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    heap(n, &mut items, &mut out);
    out
}

/// The permutation-invariant payload of one stored line version: state,
/// VID pair, phantom mark, hints, pending-commit flag, LRU rank, data word.
type LineBody = (u8, u16, u16, u16, bool, bool, u8, u64);

/// One stored line version, pre-extracted for relabeling: `(cache, line)`
/// hold *raw* indices (`cache == cores` means the shared L2, `cache ==
/// cores + 1` the overflow table; `line == usize::MAX` an address outside
/// the model's line set).
#[derive(Debug, Clone, Copy)]
struct RawLine {
    cache: usize,
    line: usize,
    body: LineBody,
}

/// Precomputed encoder for one kernel: the line-address table and the
/// permutation sets to minimize over.
#[derive(Debug)]
pub struct Encoder {
    lines: Vec<u64>,
    cores: usize,
    core_perms: Vec<Vec<usize>>,
    line_perms: Vec<Vec<usize>>,
}

impl Encoder {
    /// Builds the encoder for `kernel` over `cores` model cores. With
    /// `symmetry` off, only the identity permutation is used (the encoding
    /// still abstracts timing, so duplicate interleavings still merge).
    pub fn new(kernel: &OpKernel, cores: usize, symmetry: bool) -> Self {
        let lines = kernel.tracked.clone();
        let (core_perms, line_perms) = if symmetry {
            (permutations(cores), permutations(lines.len()))
        } else {
            (
                vec![(0..cores).collect()],
                vec![(0..lines.len()).collect()],
            )
        };
        Encoder {
            lines,
            cores,
            core_perms,
            line_perms,
        }
    }

    fn line_index(&self, line: LineAddr) -> usize {
        self.lines
            .iter()
            .position(|&a| Addr(a).line() == line)
            .unwrap_or(usize::MAX)
    }

    /// The canonical hash of a model state.
    pub fn state_hash(&self, kernel: &OpKernel, m: &OpMachine) -> u64 {
        // Extract every stored version once, with raw indices.
        let mut raw: Vec<RawLine> = Vec::new();
        for (idx, (_, cache)) in m.mem.caches_for_scan().into_iter().enumerate() {
            for a in cache.abstract_view() {
                raw.push(RawLine {
                    cache: idx, // L1[i] at i, L2 at `cores`
                    line: self.line_index(a.addr),
                    body: (
                        a.state as u8,
                        a.mod_vid.0,
                        a.high_vid.0,
                        a.phantom_high.0,
                        a.shared_hint,
                        a.commit_pending,
                        a.lru_rank,
                        a.word0,
                    ),
                });
            }
        }
        for l in m.mem.overflow_lines() {
            raw.push(RawLine {
                cache: self.cores + 1,
                line: self.line_index(l.meta.addr),
                body: (
                    l.meta.state as u8,
                    l.meta.mod_vid.0,
                    l.meta.high_vid.0,
                    l.meta.phantom_high.0,
                    l.meta.shared_hint,
                    false,
                    0,
                    l.data.read_u64(0),
                ),
            });
        }

        let mut best = u64::MAX;
        for cp in &self.core_perms {
            // Inverse: label of each raw core index.
            let mut core_label = vec![0usize; self.cores];
            for (label, &core) in cp.iter().enumerate() {
                core_label[core] = label;
            }
            for lp in &self.line_perms {
                let mut line_label = vec![0usize; self.lines.len()];
                for (label, &line) in lp.iter().enumerate() {
                    line_label[line] = label;
                }
                let relabel_line = |line: usize| {
                    if line == usize::MAX {
                        usize::MAX
                    } else {
                        line_label[line]
                    }
                };

                let mut h = DefaultHasher::new();
                m.committed.hash(&mut h);
                m.misspec.is_some().hash(&mut h);
                // Per-transaction progress and *remaining* ops, relabeled.
                // Encoding the future workload (not just a progress counter)
                // is what keeps the reduction sound for arbitrary kernels.
                for (t, ops) in kernel.txs.iter().enumerate() {
                    m.next[t].hash(&mut h);
                    for op in &ops[m.next[t].min(ops.len())..] {
                        core_label[op.core].hash(&mut h);
                        relabel_line(self.line_index(Addr(op.addr).line())).hash(&mut h);
                        op.write.hash(&mut h);
                    }
                }
                // Cache contents, caches emitted in label order, line
                // versions sorted within each cache.
                let mut enc: Vec<(usize, usize, LineBody)> = raw
                    .iter()
                    .map(|r| {
                        let cache = if r.cache < self.cores {
                            core_label[r.cache]
                        } else {
                            r.cache
                        };
                        (cache, relabel_line(r.line), r.body)
                    })
                    .collect();
                enc.sort_unstable();
                enc.hash(&mut h);
                best = best.min(h.finish());
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_explore::model_kernel;
    use hmtx_types::ModelCheckConfig;

    #[test]
    fn permutations_enumerate_n_factorial() {
        assert_eq!(permutations(1), vec![vec![0]]);
        assert_eq!(permutations(2).len(), 2);
        assert_eq!(permutations(3).len(), 6);
        let mut unique = permutations(3);
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 6);
    }

    #[test]
    fn identical_states_hash_identically_and_steps_change_the_hash() {
        let cfg = ModelCheckConfig::default();
        let kernel = model_kernel(&cfg);
        let enc = Encoder::new(&kernel, cfg.cores, true);
        let a = OpMachine::new(&kernel, None);
        let b = OpMachine::new(&kernel, None);
        assert_eq!(enc.state_hash(&kernel, &a), enc.state_hash(&kernel, &b));
        let mut c = b.clone();
        c.step(&kernel, 0).unwrap();
        assert_ne!(enc.state_hash(&kernel, &a), enc.state_hash(&kernel, &c));
    }

    #[test]
    fn symmetric_interleavings_merge_under_the_reduction() {
        // Transactions 1 and 3 of the 2-core model both run on core 0 and
        // write VID-stamped values; with symmetry on, reading line 0 first
        // vs line 1 first from the initial state is the same canonical
        // state under the line swap... but the op *values* differ per VID,
        // so the cleanest check is line-order within one transaction:
        // tx0 reading line A then B must collide with a hypothetical
        // mirror. Instead, check the weaker guaranteed property: the
        // identity permutation is always included, so symmetry never
        // merges a state with itself differently.
        let cfg = ModelCheckConfig::default();
        let kernel = model_kernel(&cfg);
        let sym = Encoder::new(&kernel, cfg.cores, true);
        let asym = Encoder::new(&kernel, cfg.cores, false);
        let m = OpMachine::new(&kernel, None);
        // Hash is deterministic under both encoders.
        assert_eq!(sym.state_hash(&kernel, &m), sym.state_hash(&kernel, &m));
        assert_eq!(asym.state_hash(&kernel, &m), asym.state_hash(&kernel, &m));
    }
}
