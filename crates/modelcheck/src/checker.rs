//! Breadth-first exhaustive search over the protocol model.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

use hmtx_explore::opexplore::OpMachine;
use hmtx_explore::{model_kernel, Failure, OpKernel};
use hmtx_types::{
    FxHashSet, ModelCheckConfig, ModelCheckReport, ModelViolation,
};

use crate::canon::Encoder;

/// The stable rule id of a failed check (see [`Failure::rule`]).
pub fn failure_rule(f: &Failure) -> String {
    f.rule()
}

/// Runs the checker on the model kernel described by `cfg`.
pub fn check(cfg: &ModelCheckConfig) -> ModelCheckReport {
    let kernel = model_kernel(cfg);
    check_kernel(&kernel, cfg)
}

fn render_trace(kernel: &OpKernel, order: &[usize]) -> Vec<String> {
    order
        .iter()
        .map(|&id| {
            let (tx, op) = kernel.locate(id);
            format!(
                "op {id}: tx{tx} vid{} core{} {} {:#x}{}",
                tx + 1,
                op.core,
                if op.write.is_some() { "st" } else { "ld" },
                op.addr,
                op.write.map_or(String::new(), |v| format!(" = {v:#x}")),
            )
        })
        .collect()
}

/// Exhausts the reachable states of `kernel` (any op kernel, not just the
/// model family) under the strict [`OpMachine`] transition relation and
/// returns the report. `cfg` supplies the planted defect, the symmetry
/// switch, the state cap, and the core count used for symmetry (the
/// kernel's own core span when checking a non-model kernel).
pub fn check_kernel(kernel: &OpKernel, cfg: &ModelCheckConfig) -> ModelCheckReport {
    let cores = kernel
        .txs
        .iter()
        .flatten()
        .map(|op| op.core + 1)
        .max()
        .unwrap_or(1)
        .max(cfg.cores);
    let encoder = Encoder::new(kernel, cores, cfg.symmetry);

    let mut report = ModelCheckReport {
        config: *cfg,
        reachable: 0,
        transitions: 0,
        frontier_peak: 0,
        exhausted: true,
        violations: Vec::new(),
    };
    let mut seen_rules: FxHashSet<String> = FxHashSet::default();
    let mut record = |report: &mut ModelCheckReport, m: &OpMachine, f: &Failure| {
        let rule = failure_rule(f);
        if seen_rules.insert(rule.clone()) {
            report.violations.push(ModelViolation {
                rule,
                detail: f.detail.clone(),
                depth: m.trace.len(),
                trace: render_trace(kernel, &m.trace),
                order: m.trace.clone(),
            });
        }
    };

    let mut root = OpMachine::new(kernel, cfg.seed_bug);
    if let Err(f) = root.settle(kernel) {
        record(&mut report, &root, &f);
        return report;
    }
    let mut visited: FxHashSet<u64> = FxHashSet::default();
    visited.insert(encoder.state_hash(kernel, &root));
    report.reachable = 1;

    let mut queue: VecDeque<OpMachine> = VecDeque::new();
    queue.push_back(root);
    report.frontier_peak = 1;

    while let Some(state) = queue.pop_front() {
        let enabled = state.enabled(kernel);
        if enabled.is_empty() {
            // Terminal: end-of-run drain, final oracle, VID-reset epilogue.
            let outcome = catch_unwind(AssertUnwindSafe(|| state.finish(kernel)));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(f)) => record(&mut report, &state, &f),
                Err(payload) => record(&mut report, &state, &panic_failure(payload)),
            }
            continue;
        }
        for tx in enabled {
            report.transitions += 1;
            let mut child = state.clone();
            let stepped = catch_unwind(AssertUnwindSafe(|| child.step(kernel, tx)));
            match stepped {
                Ok(Ok(())) => {}
                Ok(Err(f)) => {
                    record(&mut report, &child, &f);
                    continue;
                }
                Err(payload) => {
                    record(&mut report, &child, &panic_failure(payload));
                    continue;
                }
            }
            if visited.insert(encoder.state_hash(kernel, &child)) {
                report.reachable += 1;
                queue.push_back(child);
                report.frontier_peak = report.frontier_peak.max(queue.len());
                if cfg.max_states > 0 && report.reachable >= cfg.max_states {
                    report.exhausted = false;
                    return report;
                }
            }
        }
    }
    report
}

fn panic_failure(payload: Box<dyn std::any::Any + Send>) -> Failure {
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".into());
    Failure {
        kind: "panic",
        detail: msg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_explore::execute_order_checked;
    use hmtx_types::SeedBug;

    #[test]
    fn smoke_config_exhausts_clean() {
        let cfg = ModelCheckConfig::default(); // 2 cores × 2 lines × vid_bits 2
        let report = check(&cfg);
        assert!(report.exhausted, "{report}");
        assert!(report.is_clean(), "{report}");
        assert!(report.reachable > 100, "suspiciously small: {report}");
    }

    #[test]
    fn symmetry_never_changes_the_verdict_or_grows_the_state_count() {
        // The reduction is sound (it can only merge isomorphic-future
        // states), so it must preserve the verdict and never *increase*
        // the canonical state count. On VID-ordered kernels the orbits are
        // provably singletons — the VID total order pins every transaction
        // to its core and line-visit order, so no nontrivial permutation
        // maps a reachable state to another reachable state (DESIGN.md
        // §12.4) — which is why this asserts `<=`, not `<`.
        let sym = check(&ModelCheckConfig::default());
        let asym = check(&ModelCheckConfig {
            symmetry: false,
            ..ModelCheckConfig::default()
        });
        assert!(sym.is_clean() && asym.is_clean());
        assert_eq!(sym.exhausted, asym.exhausted);
        assert!(
            sym.reachable <= asym.reachable,
            "a sound reduction cannot split orbits: {} vs {}",
            sym.reachable,
            asym.reachable
        );
    }

    #[test]
    fn max_states_cuts_the_search_off() {
        let report = check(&ModelCheckConfig {
            max_states: 10,
            ..ModelCheckConfig::default()
        });
        assert!(!report.exhausted);
        assert_eq!(report.reachable, 10);
    }

    #[test]
    fn shared_counterexample_corpus_is_rediscovered_and_replays() {
        // The pinned corpus in `hmtx_analysis::corpus` records traces this
        // checker found; re-running the checker must rediscover each
        // entry's rule, the stored ops must still match the kernel, and
        // the recorded order must replay to the same violation.
        for entry in hmtx_analysis::model_counterexamples() {
            let kernel = hmtx_explore::resolve_kernel(entry.kernel)
                .unwrap_or_else(|| panic!("{}: kernel `{}` resolves", entry.name, entry.kernel));
            let bug = SeedBug::from_name(entry.seed_bug);
            assert!(bug.is_some(), "{}: seed bug resolves", entry.name);

            // Stored ops are the kernel's ops at the recorded ids.
            for (&id, op) in entry.order.iter().zip(&entry.ops) {
                let (tx, spec) = kernel.locate(id);
                assert_eq!(op.core, spec.core, "{} op {id}", entry.name);
                assert_eq!(op.addr, spec.addr, "{} op {id}", entry.name);
                assert_eq!(op.write, spec.write, "{} op {id}", entry.name);
                assert_eq!(usize::from(op.vid), tx + 1, "{} op {id}", entry.name);
            }

            let cfg = ModelCheckConfig {
                seed_bug: bug,
                ..ModelCheckConfig::default()
            };
            let report = check_kernel(&kernel, &cfg);
            assert!(
                report.violations.iter().any(|v| v.rule == entry.model_rule),
                "{}: rule `{}` must be rediscovered, got {report}",
                entry.name,
                entry.model_rule
            );

            let replay = execute_order_checked(&kernel, &entry.order, bug);
            let f = replay
                .failure
                .unwrap_or_else(|| panic!("{}: pinned order must still violate", entry.name));
            assert_eq!(failure_rule(&f), entry.model_rule, "{}: {f}", entry.name);
        }
    }

    #[test]
    fn planted_defect_is_rediscovered_with_a_replayable_trace() {
        let cfg = ModelCheckConfig {
            seed_bug: Some(SeedBug::StaleMigrationReplica),
            ..ModelCheckConfig::default()
        };
        let kernel = model_kernel(&cfg);
        let report = check_kernel(&kernel, &cfg);
        assert!(
            !report.is_clean(),
            "the planted migration defect must be rediscovered: {report}"
        );
        // Every counterexample replays to the same violated rule.
        for v in &report.violations {
            let replay = execute_order_checked(&kernel, &v.order, cfg.seed_bug);
            let f = replay
                .failure
                .unwrap_or_else(|| panic!("trace for `{}` did not replay: {v:?}", v.rule));
            assert_eq!(failure_rule(&f), v.rule, "{f}");
        }
    }
}
