//! Differential test for the parallel harness: the `experiments` binary
//! must print byte-identical output whatever `--jobs` is, and `--json`
//! must capture the same rows plus per-job wall-clock.

use std::path::PathBuf;
use std::process::{Command, Output};

fn experiments(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("spawning experiments binary")
}

fn stdout_of(args: &[&str]) -> String {
    let out = experiments(args);
    assert!(
        out.status.success(),
        "experiments {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    let serial = stdout_of(&["fig2", "--quick", "--jobs", "1"]);
    let parallel = stdout_of(&["fig2", "--quick", "--jobs", "4"]);
    assert!(serial.contains("Figure 2"), "unexpected output:\n{serial}");
    assert_eq!(serial, parallel, "--jobs 4 output differs from --jobs 1");
}

#[test]
fn ablations_are_deterministic_across_job_counts() {
    let serial = stdout_of(&["ablations", "--quick", "--jobs", "1"]);
    let parallel = stdout_of(&["ablations", "--quick", "--jobs", "4"]);
    assert!(
        serial.contains("Ablation A"),
        "unexpected output:\n{serial}"
    );
    assert_eq!(serial, parallel);
}

#[test]
fn full_sweep_is_byte_identical_serial_vs_parallel() {
    // Every section — the whole standard sweep against the data-oriented
    // core — must render identically whatever the host thread count.
    let serial = stdout_of(&["all", "--quick", "--jobs", "1"]);
    let parallel = stdout_of(&["all", "--quick", "--jobs", "4"]);
    assert!(serial.contains("Table 1"), "unexpected output:\n{serial}");
    assert_eq!(serial, parallel, "--jobs 4 output differs from --jobs 1");
}

#[test]
fn hytm_sweep_is_byte_identical_serial_vs_parallel() {
    // The hybrid-mode column of the standard sweep: demotions, backoff
    // stalls, and slow-path slabs are all seeded-deterministic, so each
    // job's rendered report must not depend on host concurrency.
    use hmtx_bench::{run_job_report, standard_sweep};
    use hmtx_types::{WireParadigm, WireScale};
    let specs: Vec<_> = standard_sweep(WireScale::Quick)
        .into_iter()
        .filter(|s| s.paradigm == WireParadigm::Hytm)
        .collect();
    assert_eq!(specs.len(), 8, "one hytm job per suite workload");
    let serial: Vec<String> = specs
        .iter()
        .map(|s| run_job_report(s).unwrap().pretty())
        .collect();
    let parallel: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .map(|s| scope.spawn(move || run_job_report(s).unwrap().pretty()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(serial, parallel, "hytm reports depend on host concurrency");
    for (spec, text) in specs.iter().zip(&serial) {
        assert!(
            text.contains("\"fast_commits\""),
            "{} report missing the path mix: {text}",
            spec.key()
        );
    }
}

#[test]
fn json_report_has_rows_and_wall_clock() {
    let path: PathBuf =
        std::env::temp_dir().join(format!("hmtx_bench_diff_{}.json", std::process::id()));
    let path_str = path.to_str().unwrap();
    let stdout = stdout_of(&["fig2", "--quick", "--jobs", "2", "--json", path_str]);
    assert!(stdout.contains("Figure 2"));
    let json = std::fs::read_to_string(&path).expect("json report written");
    std::fs::remove_file(&path).ok();
    // Every figure row and the per-job wall-clock log are present.
    assert!(json.contains("\"fig2\""), "{json}");
    assert!(json.contains("\"minimal\""), "{json}");
    assert!(json.contains("\"sim_jobs\""), "{json}");
    assert!(json.contains("\"wall_seconds\""), "{json}");
    assert!(json.contains("130.li:smtx-min:base:quick"), "{json}");
    assert!(
        json.contains("\"schema\": \"hmtx-bench-report/1\""),
        "{json}"
    );
}

#[test]
fn progress_lines_go_to_stderr_not_stdout() {
    let out = experiments(&["fig2", "--quick", "--jobs", "2", "--progress"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stdout.contains("[runner]"), "progress leaked to stdout");
    assert!(
        stderr.contains("[runner] start"),
        "no progress lines on stderr:\n{stderr}"
    );
    assert!(stderr.contains("[runner] done"), "{stderr}");
}

#[test]
fn bad_flags_exit_with_usage() {
    let out = experiments(&["--jobs", "0"]);
    assert_eq!(out.status.code(), Some(2));
    let out = experiments(&["no-such-section", "--quick"]);
    assert_eq!(out.status.code(), Some(2));
}
