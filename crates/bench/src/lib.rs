//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§6) from fresh simulations, plus the ablations
//! called out in `DESIGN.md`.
//!
//! Experiments are expressed as pure [`runner::SimJob`]s executed through a
//! memoizing [`runner::SimPool`]: [`plan`] lists the jobs a set of sections
//! needs, [`runner::SimPool::prefetch`] fans them out across host threads,
//! and each `fig*`/`table*` function then *looks up* its results in stable
//! job order and returns structured rows — so the rendered output is
//! byte-identical whatever the thread count, and a simulation shared by
//! several figures runs exactly once. `render_*` helpers format rows as the
//! text tables the `experiments` binary prints (and `EXPERIMENTS.md`
//! records); [`report`] serializes the same rows as JSON.

#![warn(missing_docs)]

use hmtx_machine::Machine;
use hmtx_power::{geomean, PowerModel};
use hmtx_runtime::speedup;
use hmtx_smtx::RwSetMode;
use hmtx_types::{MachineConfig, SimError, VictimPolicy};
use hmtx_workloads::{suite, Scale};

pub mod fig1;
pub mod jobspec;
pub mod report;
pub mod runner;

pub use jobspec::{materialize, render_report, run_job, run_job_report, standard_sweep};

use runner::{Benchmark, ConfigVariant, JobParadigm, SimJob, SimPool};

/// Instruction budget for harness runs (generous; guards livelock only).
pub const BUDGET: u64 = 20_000_000_000;

/// The machine configuration used for all experiments: Table 2 exactly.
pub fn experiment_config() -> MachineConfig {
    MachineConfig::paper_default()
}

// -------------------------------------------------------------- the plan

/// One printable section of the `experiments` output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// Table 2 (the architectural configuration; no simulations).
    Table2,
    /// Figure 1 timing diagrams.
    Fig1,
    /// Figure 2 SMTX speedups.
    Fig2,
    /// Figure 8 hot-loop speedups.
    Fig8,
    /// Figure 9 read/write set sizes.
    Fig9,
    /// Table 1 speculative execution statistics.
    Table1,
    /// Table 3 area/power/energy.
    Table3,
    /// Ablations A–D.
    Ablations,
    /// §8 extensions and the §2.1 latency sweep.
    Extensions,
}

impl Section {
    /// Every section, in the canonical output order of `experiments all`.
    pub const ALL: [Section; 9] = [
        Section::Table2,
        Section::Fig1,
        Section::Fig2,
        Section::Fig8,
        Section::Fig9,
        Section::Table1,
        Section::Table3,
        Section::Ablations,
        Section::Extensions,
    ];

    /// The CLI name (`experiments <name>`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Section::Table2 => "table2",
            Section::Fig1 => "fig1",
            Section::Fig2 => "fig2",
            Section::Fig8 => "fig8",
            Section::Fig9 => "fig9",
            Section::Table1 => "table1",
            Section::Table3 => "table3",
            Section::Ablations => "ablations",
            Section::Extensions => "extensions",
        }
    }

    /// Parses a CLI name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Section> {
        Section::ALL.into_iter().find(|s| s.name() == name)
    }

    /// The simulation jobs this section's rows are computed from.
    #[must_use]
    pub fn jobs(&self, scale: Scale) -> Vec<SimJob> {
        let job = |b, p, c| SimJob::new(b, p, c, scale);
        let seq = |i| {
            job(
                Benchmark::Suite(i),
                JobParadigm::Sequential,
                ConfigVariant::Base,
            )
        };
        let paper = |i| job(Benchmark::Suite(i), JobParadigm::Paper, ConfigVariant::Base);
        let hytm = |i| job(Benchmark::Suite(i), JobParadigm::Hytm, ConfigVariant::Base);
        let smtx = |i, m| {
            job(
                Benchmark::Suite(i),
                JobParadigm::Smtx(m),
                ConfigVariant::Base,
            )
        };
        let ws = suite(scale);
        let all = 0..ws.len();
        let comparable: Vec<usize> = ws
            .iter()
            .enumerate()
            .filter(|(_, w)| w.meta().smtx_comparable)
            .map(|(i, _)| i)
            .collect();
        match self {
            Section::Table2 => Vec::new(),
            Section::Fig1 => fig1::PARADIGMS
                .into_iter()
                .map(|p| {
                    job(
                        Benchmark::Fig1Loop,
                        JobParadigm::Explicit(p),
                        ConfigVariant::Base,
                    )
                })
                .collect(),
            Section::Fig2 => comparable
                .iter()
                .flat_map(|&i| {
                    [
                        seq(i),
                        smtx(i, RwSetMode::Minimal),
                        smtx(i, RwSetMode::Substantial),
                    ]
                })
                .collect(),
            Section::Fig8 => all
                .flat_map(|i| {
                    let mut jobs = vec![seq(i), paper(i), hytm(i)];
                    if comparable.contains(&i) {
                        jobs.push(smtx(i, RwSetMode::Minimal));
                    }
                    jobs
                })
                .collect(),
            Section::Fig9 | Section::Table1 => all.map(paper).collect(),
            Section::Table3 => all
                .flat_map(|i| {
                    let mut jobs = vec![seq(i), paper(i)];
                    if comparable.contains(&i) {
                        jobs.push(smtx(i, RwSetMode::Minimal));
                    }
                    jobs
                })
                .collect(),
            Section::Ablations => {
                let mut jobs = Vec::new();
                for idx in ABLATION_COMMIT_BENCHES {
                    for lazy in [true, false] {
                        jobs.push(job(
                            Benchmark::Suite(idx),
                            JobParadigm::Paper,
                            ConfigVariant::Commit { lazy },
                        ));
                    }
                }
                for idx in ABLATION_SLA_BENCHES {
                    for enabled in [true, false] {
                        jobs.push(job(
                            Benchmark::Suite(idx),
                            JobParadigm::Paper,
                            ConfigVariant::Sla { enabled },
                        ));
                    }
                }
                for enabled in [true, false] {
                    jobs.push(job(
                        Benchmark::SlaStress,
                        JobParadigm::Explicit(hmtx_runtime::Paradigm::PsDswp),
                        ConfigVariant::Sla { enabled },
                    ));
                }
                for bits in VID_WIDTH_SWEEP {
                    jobs.push(job(
                        Benchmark::Suite(VID_WIDTH_BENCH),
                        JobParadigm::Paper,
                        ConfigVariant::VidBits(bits),
                    ));
                }
                for policy in [VictimPolicy::PreferSafeOverflow, VictimPolicy::PlainLru] {
                    jobs.push(job(
                        Benchmark::Suite(VICTIM_BENCH),
                        JobParadigm::Paper,
                        ConfigVariant::Victim(policy),
                    ));
                }
                jobs
            }
            Section::Extensions => {
                let mut jobs = Vec::new();
                for unbounded in [false, true] {
                    jobs.push(job(
                        Benchmark::Suite(VICTIM_BENCH),
                        JobParadigm::Paper,
                        ConfigVariant::Bounded { unbounded },
                    ));
                }
                jobs.push(job(
                    Benchmark::ScalingLoop,
                    JobParadigm::Sequential,
                    ConfigVariant::ScalingBase,
                ));
                for cores in SCALING_CORES {
                    for directory in [false, true] {
                        jobs.push(job(
                            Benchmark::ScalingLoop,
                            JobParadigm::Explicit(hmtx_runtime::Paradigm::PsDswp),
                            ConfigVariant::ScalingFabric { cores, directory },
                        ));
                    }
                }
                jobs.push(seq(LATENCY_BENCH));
                for latency in LATENCY_SWEEP {
                    for p in [
                        hmtx_runtime::Paradigm::Doacross,
                        hmtx_runtime::Paradigm::PsDswp,
                    ] {
                        jobs.push(job(
                            Benchmark::Suite(LATENCY_BENCH),
                            JobParadigm::Explicit(p),
                            ConfigVariant::QueueLatency(latency),
                        ));
                    }
                }
                jobs
            }
        }
    }
}

/// Every simulation job the given sections need, in section order.
/// Feed this to [`runner::SimPool::prefetch`]; sections sharing a job list
/// it more than once, and the pool simulates it once.
#[must_use]
pub fn plan(sections: &[Section], scale: Scale) -> Vec<SimJob> {
    sections.iter().flat_map(|s| s.jobs(scale)).collect()
}

/// Suite indices the ablations run on (130.li and 256.bzip2 for commit
/// processing; 130.li and 186.crafty for SLAs; see `suite()` ordering).
const ABLATION_COMMIT_BENCHES: [usize; 2] = [1, 5];
const ABLATION_SLA_BENCHES: [usize; 2] = [1, 3];
/// 197.parser.
const VID_WIDTH_BENCH: usize = 4;
const VID_WIDTH_SWEEP: [u32; 5] = [3, 4, 5, 6, 8];
/// 256.bzip2: the largest footprint.
const VICTIM_BENCH: usize = 5;
const SCALING_CORES: [usize; 4] = [4, 8, 16, 32];
/// ispell: tiny iterations, so per-iteration communication dominates.
const LATENCY_BENCH: usize = 7;
const LATENCY_SWEEP: [u64; 4] = [10, 30, 100, 300];

// ------------------------------------------------------------------ Figure 2

/// One bar pair of Figure 2: SMTX whole-program speedup with minimal vs
/// substantial read/write sets.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Benchmark name.
    pub name: String,
    /// Whole-program speedup with the expert-minimized R/W set.
    pub minimal: f64,
    /// Whole-program speedup with validation on shared data accesses.
    pub substantial: f64,
}

/// Whole-program speedup via Amdahl's law from the hot-loop speedup and the
/// benchmark's hot-loop fraction (Table 1).
pub fn whole_program_speedup(hot_fraction: f64, hot_speedup: f64) -> f64 {
    1.0 / ((1.0 - hot_fraction) + hot_fraction / hot_speedup)
}

/// Regenerates Figure 2 over the SMTX-comparable benchmarks.
///
/// # Errors
///
/// Propagates [`SimError`] from any simulation run.
pub fn fig2(pool: &SimPool) -> Result<Vec<Fig2Row>, SimError> {
    let mut rows = Vec::new();
    for (i, w) in suite(pool.scale()).iter().enumerate() {
        if !w.meta().smtx_comparable {
            continue;
        }
        let seq = pool.get(&pool.job(
            Benchmark::Suite(i),
            JobParadigm::Sequential,
            ConfigVariant::Base,
        ))?;
        let min = pool.get(&pool.job(
            Benchmark::Suite(i),
            JobParadigm::Smtx(RwSetMode::Minimal),
            ConfigVariant::Base,
        ))?;
        let sub = pool.get(&pool.job(
            Benchmark::Suite(i),
            JobParadigm::Smtx(RwSetMode::Substantial),
            ConfigVariant::Base,
        ))?;
        let f = w.meta().paper.hot_loop_fraction;
        rows.push(Fig2Row {
            name: w.meta().name.to_string(),
            minimal: whole_program_speedup(f, speedup(seq.cycles, min.cycles)),
            substantial: whole_program_speedup(f, speedup(seq.cycles, sub.cycles)),
        });
    }
    Ok(rows)
}

/// Renders Figure 2 as a text table.
pub fn render_fig2(rows: &[Fig2Row]) -> String {
    let mut out = String::from(
        "Figure 2: SMTX whole-program speedup over sequential (4 cores)\n\
         benchmark        minimal R/W set   substantial R/W set\n",
    );
    let full = rows
        .iter()
        .map(|r| r.minimal.max(r.substantial))
        .fold(1.0f64, f64::max);
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>15.2}x {:>19.2}x  |{}\n",
            r.name,
            r.minimal,
            r.substantial,
            bar(r.substantial, full)
        ));
    }
    let g_min = geomean(&rows.iter().map(|r| r.minimal).collect::<Vec<_>>());
    let g_sub = geomean(&rows.iter().map(|r| r.substantial).collect::<Vec<_>>());
    out.push_str(&format!(
        "{:<16} {g_min:>15.2}x {g_sub:>19.2}x\n",
        "geomean"
    ));
    out
}

// ------------------------------------------------------------------ Figure 8

/// One bar pair of Figure 8: hot-loop speedups over sequential.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Benchmark name.
    pub name: String,
    /// SMTX (minimal R/W set) hot-loop speedup, if the benchmark has an
    /// SMTX port.
    pub smtx: Option<f64>,
    /// HMTX (maximal R/W set: every load and store validated) speedup.
    pub hmtx: f64,
    /// HyTM (bounded HMTX fast path with SMTX software fallback) speedup.
    pub hytm: f64,
    /// HyTM fast/slow-path mix for this workload.
    pub hytm_mix: Option<hmtx_runtime::HytmMix>,
}

/// Summary of Figure 8's geomeans.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Summary {
    /// HMTX geomean over all 8 benchmarks (paper: 1.99x).
    pub hmtx_all: f64,
    /// HMTX geomean over the 6 SMTX-comparable benchmarks (paper: 2.02x).
    pub hmtx_comparable: f64,
    /// SMTX geomean over the comparable benchmarks (paper: 1.44x).
    pub smtx_comparable: f64,
    /// HyTM geomean over all 8 benchmarks.
    pub hytm_all: f64,
}

/// Regenerates Figure 8.
///
/// # Errors
///
/// Propagates [`SimError`] from any simulation run.
pub fn fig8(pool: &SimPool) -> Result<(Vec<Fig8Row>, Fig8Summary), SimError> {
    let mut rows = Vec::new();
    for (i, w) in suite(pool.scale()).iter().enumerate() {
        let seq = pool.get(&pool.job(
            Benchmark::Suite(i),
            JobParadigm::Sequential,
            ConfigVariant::Base,
        ))?;
        let hmtx =
            pool.get(&pool.job(Benchmark::Suite(i), JobParadigm::Paper, ConfigVariant::Base))?;
        let hytm =
            pool.get(&pool.job(Benchmark::Suite(i), JobParadigm::Hytm, ConfigVariant::Base))?;
        let smtx = if w.meta().smtx_comparable {
            let r = pool.get(&pool.job(
                Benchmark::Suite(i),
                JobParadigm::Smtx(RwSetMode::Minimal),
                ConfigVariant::Base,
            ))?;
            Some(speedup(seq.cycles, r.cycles))
        } else {
            None
        };
        rows.push(Fig8Row {
            name: w.meta().name.to_string(),
            smtx,
            hmtx: speedup(seq.cycles, hmtx.cycles),
            hytm: speedup(seq.cycles, hytm.cycles),
            hytm_mix: hytm.report.as_ref().and_then(|r| r.hytm),
        });
    }
    let hmtx_all: Vec<f64> = rows.iter().map(|r| r.hmtx).collect();
    let hytm_all: Vec<f64> = rows.iter().map(|r| r.hytm).collect();
    let hmtx_comp: Vec<f64> = rows
        .iter()
        .filter(|r| r.smtx.is_some())
        .map(|r| r.hmtx)
        .collect();
    let smtx_comp: Vec<f64> = rows.iter().filter_map(|r| r.smtx).collect();
    let summary = Fig8Summary {
        hmtx_all: geomean(&hmtx_all),
        hmtx_comparable: geomean(&hmtx_comp),
        smtx_comparable: geomean(&smtx_comp),
        hytm_all: geomean(&hytm_all),
    };
    Ok((rows, summary))
}

/// A proportional ASCII bar (40 columns = `full`).
fn bar(value: f64, full: f64) -> String {
    let cols = ((value / full) * 40.0).round().max(0.0) as usize;
    "#".repeat(cols.min(60))
}

/// Renders Figure 8 as a text table with proportional bars.
pub fn render_fig8(rows: &[Fig8Row], s: &Fig8Summary) -> String {
    let mut out = String::from(
        "Figure 8: hot-loop speedup over sequential (4 cores)\n\
         benchmark        SMTX (min R/W)    HMTX (max R/W)    HyTM (hybrid)\n",
    );
    let full = rows.iter().map(|r| r.hmtx).fold(1.0f64, f64::max);
    for r in rows {
        let smtx = r
            .smtx
            .map_or("     --".to_string(), |v| format!("{v:>6.2}x"));
        out.push_str(&format!(
            "{:<16} {:>14} {:>16.2}x {:>15.2}x  |{}\n",
            r.name,
            smtx,
            r.hmtx,
            r.hytm,
            bar(r.hmtx, full)
        ));
    }
    out.push_str(&format!(
        "{:<16} {:>13.2}x {:>16.2}x {:>15}\n",
        "geomean (comp.)", s.smtx_comparable, s.hmtx_comparable, "--"
    ));
    out.push_str(&format!(
        "{:<16} {:>14} {:>16.2}x {:>15.2}x\n",
        "geomean (all)", "--", s.hmtx_all, s.hytm_all
    ));
    out
}

// ------------------------------------------------------------------ Figure 9

/// One bar triple of Figure 9: average per-transaction set sizes in kB.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Benchmark name.
    pub name: String,
    /// Average read-set size (kB).
    pub read_kb: f64,
    /// Average write-set size (kB).
    pub write_kb: f64,
    /// Average combined-set size (kB).
    pub combined_kb: f64,
}

/// Regenerates Figure 9 from the HMTX runs' per-VID distinct-line tracking.
///
/// # Errors
///
/// Propagates [`SimError`] from any simulation run.
pub fn fig9(pool: &SimPool) -> Result<Vec<Fig9Row>, SimError> {
    let mut rows = Vec::new();
    for (i, w) in suite(pool.scale()).iter().enumerate() {
        let r =
            pool.get(&pool.job(Benchmark::Suite(i), JobParadigm::Paper, ConfigVariant::Base))?;
        let t = r.machine.mem().stats().rw_totals();
        rows.push(Fig9Row {
            name: w.meta().name.to_string(),
            read_kb: t.avg_read_kb(),
            write_kb: t.avg_write_kb(),
            combined_kb: t.avg_combined_kb(),
        });
    }
    Ok(rows)
}

/// Renders Figure 9 as a text table.
pub fn render_fig9(rows: &[Fig9Row]) -> String {
    let mut out = String::from(
        "Figure 9: average read/write set size per transaction (kB)\n\
         benchmark             read     write  combined\n",
    );
    let full = rows.iter().map(|r| r.combined_kb).fold(1.0f64, f64::max);
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>9.2} {:>9.2} {:>9.2}  |{}\n",
            r.name,
            r.read_kb,
            r.write_kb,
            r.combined_kb,
            bar(r.combined_kb, full)
        ));
    }
    let g = geomean(
        &rows
            .iter()
            .map(|r| r.combined_kb.max(1e-3))
            .collect::<Vec<_>>(),
    );
    out.push_str(&format!(
        "{:<16} {:>9} {:>9} {:>9.2}\n",
        "geomean", "", "", g
    ));
    out
}

// ------------------------------------------------------------------ Table 1

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// Paradigm name.
    pub paradigm: &'static str,
    /// Average speculative accesses per transaction.
    pub spec_accesses_per_tx: f64,
    /// Aborts avoided via SLA per transaction.
    pub sla_aborts_avoided_per_tx: f64,
    /// Fraction of speculative loads needing an SLA.
    pub loads_needing_sla: f64,
    /// Fraction of instructions that are branches.
    pub branch_fraction: f64,
    /// Branch misprediction rate.
    pub mispredict_rate: f64,
}

/// Regenerates Table 1's measured columns from the HMTX runs.
///
/// # Errors
///
/// Propagates [`SimError`] from any simulation run.
pub fn table1(pool: &SimPool) -> Result<Vec<Table1Row>, SimError> {
    let mut rows = Vec::new();
    for (i, w) in suite(pool.scale()).iter().enumerate() {
        let r =
            pool.get(&pool.job(Benchmark::Suite(i), JobParadigm::Paper, ConfigVariant::Base))?;
        let mem = r.machine.mem().stats();
        let ms = r.machine.stats();
        let txs = mem.commits.max(1) as f64;
        rows.push(Table1Row {
            name: w.meta().name.to_string(),
            paradigm: w.meta().paradigm.name(),
            spec_accesses_per_tx: (mem.spec_loads + mem.spec_stores) as f64 / txs,
            sla_aborts_avoided_per_tx: mem.sla_aborts_avoided as f64 / txs,
            loads_needing_sla: mem.slas_sent as f64 / (mem.spec_loads.max(1)) as f64,
            branch_fraction: ms.branch_fraction(),
            mispredict_rate: ms.mispredict_rate(),
        });
    }
    Ok(rows)
}

/// Renders Table 1 as text.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::from(
        "Table 1: speculative execution statistics (measured)\n\
         benchmark        paradigm    spec acc/TX  SLA-avoided/TX  %loads SLA  %branch  mispred%\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:<10} {:>12.1} {:>15.3} {:>10.2}% {:>7.1}% {:>8.2}%\n",
            r.name,
            r.paradigm,
            r.spec_accesses_per_tx,
            r.sla_aborts_avoided_per_tx,
            r.loads_needing_sla * 100.0,
            r.branch_fraction * 100.0,
            r.mispredict_rate * 100.0
        ));
    }
    out
}

// ------------------------------------------------------------------ Table 2

/// Renders Table 2 (the architectural configuration).
pub fn render_table2(cfg: &MachineConfig) -> String {
    format!(
        "Table 2: architectural configuration\n\
         Cores                  {} (in-order, min-clock scheduled)\n\
         Clock                  2.0 GHz\n\
         L1 D-cache             {} KB, {}-way, {}-cycle\n\
         Shared L2              {} MB, {}-way, {}-cycle\n\
         Line size              64 B\n\
         Base protocol          MOESI (snoopy)\n\
         Memory latency         {} cycles\n\
         VID width              {} bits (max VID {})\n\
         Branch predictor       gshare(14) + loop predictor\n",
        cfg.num_cores,
        cfg.l1.size_bytes / 1024,
        cfg.l1.ways,
        cfg.l1.latency,
        cfg.l2.size_bytes / 1024 / 1024,
        cfg.l2.ways,
        cfg.l2.latency,
        cfg.mem_latency,
        cfg.hmtx.vid_bits,
        cfg.hmtx.max_vid().0,
    )
}

// ------------------------------------------------------------------ Table 3

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Hardware platform description.
    pub hardware: &'static str,
    /// Execution model description.
    pub exec_model: String,
    /// Die area (mm²).
    pub area_mm2: f64,
    /// Leakage (W).
    pub leakage_w: f64,
    /// Geomean runtime dynamic power (W).
    pub dynamic_w: f64,
    /// Geomean energy (J).
    pub energy_j: f64,
}

/// Regenerates Table 3: area/leakage and geomean dynamic power/energy for
/// sequential, SMTX (minimal), and HMTX (maximal) execution on commodity
/// and HMTX-extended hardware.
///
/// # Errors
///
/// Propagates [`SimError`] from any simulation run.
pub fn table3(pool: &SimPool) -> Result<Vec<Table3Row>, SimError> {
    let cfg = pool.base_cfg();
    let commodity = PowerModel::commodity(cfg);
    let hmtx_hw = PowerModel::with_hmtx(cfg);

    let mut seq_runs = Vec::new();
    let mut smtx_runs = Vec::new();
    let mut hmtx_runs = Vec::new();
    let mut comparable = Vec::new();
    for (i, w) in suite(pool.scale()).iter().enumerate() {
        seq_runs.push(pool.get(&pool.job(
            Benchmark::Suite(i),
            JobParadigm::Sequential,
            ConfigVariant::Base,
        ))?);
        if w.meta().smtx_comparable {
            smtx_runs.push(pool.get(&pool.job(
                Benchmark::Suite(i),
                JobParadigm::Smtx(RwSetMode::Minimal),
                ConfigVariant::Base,
            ))?);
        }
        hmtx_runs.push(pool.get(&pool.job(
            Benchmark::Suite(i),
            JobParadigm::Paper,
            ConfigVariant::Base,
        ))?);
        comparable.push(w.meta().smtx_comparable);
    }

    let eval =
        |model: &PowerModel, runs: &[std::sync::Arc<runner::JobResult>], mask: Option<&[bool]>| {
            let reports: Vec<_> = runs
                .iter()
                .enumerate()
                .filter(|(i, _)| mask.is_none_or(|m| m[*i]))
                .map(|(_, r)| model.evaluate(&r.machine))
                .collect();
            let dyn_w = geomean(&reports.iter().map(|r| r.dynamic_w).collect::<Vec<_>>());
            let energy = geomean(&reports.iter().map(|r| r.energy_j).collect::<Vec<_>>());
            (dyn_w, energy)
        };

    let mut rows = Vec::new();
    for (model, hw) in [(&commodity, "Commodity"), (&hmtx_hw, "Commodity+HMTX")] {
        let mut push = |exec_model: String, d: f64, e: f64| {
            rows.push(Table3Row {
                hardware: hw,
                exec_model,
                area_mm2: model.area_mm2(),
                leakage_w: model.leakage_w(),
                dynamic_w: d,
                energy_j: e,
            });
        };
        let (d, e) = eval(model, &seq_runs, None);
        push("Sequential (All)".into(), d, e);
        let (d, e) = eval(model, &seq_runs, Some(&comparable));
        push("Sequential (Comp.)".into(), d, e);
        let (d, e) = eval(model, &smtx_runs, None);
        push("SMTX, Min R/W".into(), d, e);
        if model.is_hmtx() {
            let (d, e) = eval(model, &hmtx_runs, None);
            push("HMTX, Max R/W (All)".into(), d, e);
            let (d, e) = eval(model, &hmtx_runs, Some(&comparable));
            push("HMTX, Max R/W (Comp.)".into(), d, e);
        }
    }
    Ok(rows)
}

/// Renders Table 3 as text.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::from(
        "Table 3: area, power, and energy (geomeans over benchmark runs)\n\
         hardware         exec model              area(mm^2)  leak(W)  dyn(W)  energy(J)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:<22} {:>10.1} {:>8.3} {:>7.2} {:>10.4}\n",
            r.hardware, r.exec_model, r.area_mm2, r.leakage_w, r.dynamic_w, r.energy_j
        ));
    }
    out
}

// ------------------------------------------------------------------ Ablations

/// Result of one ablation comparison.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// Hot-loop cycles.
    pub cycles: u64,
    /// Extra detail (aborts, resets, lines walked...).
    pub detail: String,
}

/// Ablation A (§5.3): lazy vs eager commit processing on the two
/// largest-set benchmarks.
///
/// # Errors
///
/// Propagates [`SimError`] from any simulation run.
pub fn ablation_commit(pool: &SimPool) -> Result<Vec<AblationRow>, SimError> {
    let ws = suite(pool.scale());
    let mut rows = Vec::new();
    for idx in ABLATION_COMMIT_BENCHES {
        for lazy in [true, false] {
            let r = pool.get(&pool.job(
                Benchmark::Suite(idx),
                JobParadigm::Paper,
                ConfigVariant::Commit { lazy },
            ))?;
            rows.push(AblationRow {
                label: format!(
                    "{} / {} commit",
                    ws[idx].meta().name,
                    if lazy { "lazy" } else { "eager" }
                ),
                cycles: r.cycles,
                detail: format!(
                    "lines walked at commit: {}",
                    r.machine.mem().stats().eager_commit_lines_walked
                ),
            });
        }
    }
    Ok(rows)
}

/// A loop engineered so that wrong paths stray into *neighboring, still
/// in-flight* transactions' write regions — the §5.1 hazard in distilled
/// form. Each iteration's workspace is one cache line, laid out
/// **descending** (like stack frames), and the stage-2 inner loop has a
/// data-dependent trip count the predictor cannot learn; a mispredicted
/// loop-cap exit makes the wrong path load one line past the workspace —
/// the line the *previous* (lower-VID, concurrently running) transaction is
/// still writing. With SLAs those squashed loads never mark the line; with
/// SLAs disabled they do, and the earlier transaction's store becomes a
/// false RAW violation.
pub(crate) struct SlaStress {
    pub(crate) iters: u64,
}

/// Top of the descending workspace stack.
const SLA_STRESS_TOP: u64 = hmtx_runtime::env::WORKLOAD_REGION_BASE + 0x4_0000;

impl hmtx_runtime::LoopBody for SlaStress {
    fn iterations(&self) -> u64 {
        self.iters
    }
    fn build_image(&self, _m: &mut Machine, _env: &hmtx_runtime::LoopEnv) {}
    fn emit_stage1(&self, b: &mut hmtx_isa::ProgramBuilder, _env: &hmtx_runtime::LoopEnv) {
        use hmtx_runtime::env::regs;
        b.mov(regs::ITEM, regs::N);
        b.li(regs::SPEC_LOADS, 1);
        b.li(regs::SPEC_STORES, 1);
    }
    fn emit_stage2(&self, b: &mut hmtx_isa::ProgramBuilder, _env: &hmtx_runtime::LoopEnv) {
        use hmtx_isa::{Cond, Reg};
        use hmtx_runtime::env::regs;
        // R1 = this iteration's one-line workspace (descending layout).
        b.mul(Reg::R1, regs::N, 64);
        b.li(Reg::R2, SLA_STRESS_TOP as i64);
        b.sub(Reg::R1, Reg::R2, Reg::R1);
        b.mul(Reg::R2, regs::ITEM, 0x9E37_79B9);
        // 16 bursts of a data-dependent-length read-modify-write loop over
        // the workspace words.
        for _ in 0..16 {
            let head = b.new_label();
            let done = b.new_label();
            b.li(Reg::R3, 0);
            b.bind(head).unwrap();
            b.shl(Reg::R4, Reg::R3, 3);
            b.add(Reg::R4, Reg::R4, Reg::R1);
            b.load(Reg::R5, Reg::R4, 0);
            b.add(Reg::R5, Reg::R5, Reg::R2);
            b.store(Reg::R5, Reg::R4, 0);
            hmtx_workloads::emitlib::xorshift_step(b, Reg::R2, Reg::R6);
            b.addi(Reg::R3, Reg::R3, 1);
            // Cap: a data-dependent exit the predictor cannot learn; its
            // wrong path re-enters the body with R3 == 8 and loads one line
            // past the workspace — the previous iteration's line.
            b.branch_imm(Cond::GeU, Reg::R3, 8, done);
            b.and(Reg::R6, Reg::R2, 7);
            b.branch_imm(Cond::Ne, Reg::R6, 0, head);
            b.bind(done).unwrap();
        }
        b.li(regs::SPEC_LOADS, 40);
        b.li(regs::SPEC_STORES, 40);
    }
}

/// Ablation B (§5.1): SLAs on vs off. Run on the two most
/// misprediction-heavy benchmarks plus the distilled `sla-stress` hazard
/// loop (whose wrong paths actually alias concurrent transactions' lines).
///
/// # Errors
///
/// Propagates [`SimError`] from any simulation run.
pub fn ablation_sla(pool: &SimPool) -> Result<Vec<AblationRow>, SimError> {
    let ws = suite(pool.scale());
    let mut rows = Vec::new();
    for idx in ABLATION_SLA_BENCHES {
        for sla in [true, false] {
            let r = pool.get(&pool.job(
                Benchmark::Suite(idx),
                JobParadigm::Paper,
                ConfigVariant::Sla { enabled: sla },
            ))?;
            rows.push(AblationRow {
                label: format!(
                    "{} / SLA {}",
                    ws[idx].meta().name,
                    if sla { "on" } else { "off" }
                ),
                cycles: r.cycles,
                detail: format!(
                    "recoveries: {}, aborts avoided: {}",
                    r.recoveries,
                    r.machine.mem().stats().sla_aborts_avoided
                ),
            });
        }
    }
    for sla in [true, false] {
        let r = pool.get(&pool.job(
            Benchmark::SlaStress,
            JobParadigm::Explicit(hmtx_runtime::Paradigm::PsDswp),
            ConfigVariant::Sla { enabled: sla },
        ))?;
        rows.push(AblationRow {
            label: format!("sla-stress / SLA {}", if sla { "on" } else { "off" }),
            cycles: r.cycles,
            detail: format!(
                "recoveries: {}, aborts avoided: {}",
                r.recoveries,
                r.machine.mem().stats().sla_aborts_avoided
            ),
        });
    }
    Ok(rows)
}

/// Ablation C (§4.6): VID width sweep — narrower VIDs mean more reset
/// stalls.
///
/// # Errors
///
/// Propagates [`SimError`] from any simulation run.
pub fn ablation_vid_width(pool: &SimPool) -> Result<Vec<AblationRow>, SimError> {
    let ws = suite(pool.scale());
    let mut rows = Vec::new();
    for bits in VID_WIDTH_SWEEP {
        let r = pool.get(&pool.job(
            Benchmark::Suite(VID_WIDTH_BENCH),
            JobParadigm::Paper,
            ConfigVariant::VidBits(bits),
        ))?;
        rows.push(AblationRow {
            label: format!("{} / {bits}-bit VIDs", ws[VID_WIDTH_BENCH].meta().name),
            cycles: r.cycles,
            detail: format!("VID resets: {}", r.machine.mem().stats().vid_resets),
        });
    }
    Ok(rows)
}

/// Ablation D (§5.4): LLC victim policy — preferring overflow-safe
/// `S-O(0,·)` lines vs plain LRU, on constrained caches.
///
/// # Errors
///
/// Propagates [`SimError`] from any simulation run.
pub fn ablation_victim(pool: &SimPool) -> Result<Vec<AblationRow>, SimError> {
    let ws = suite(pool.scale());
    let mut rows = Vec::new();
    for policy in [VictimPolicy::PreferSafeOverflow, VictimPolicy::PlainLru] {
        let r = pool.get(&pool.job(
            Benchmark::Suite(VICTIM_BENCH),
            JobParadigm::Paper,
            ConfigVariant::Victim(policy),
        ))?;
        rows.push(AblationRow {
            label: format!("{} / {policy:?}", ws[VICTIM_BENCH].meta().name),
            cycles: r.cycles,
            detail: format!(
                "recoveries: {}, safe overflows: {}, refills: {}",
                r.recoveries,
                r.machine.mem().stats().safe_overflow_writebacks,
                r.machine.mem().stats().overflow_refills
            ),
        });
    }
    Ok(rows)
}

// ----------------------------------------- §8 extensions (future work)

/// One point of the core-count scaling experiment.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Interconnect label.
    pub interconnect: &'static str,
    /// Core count.
    pub cores: usize,
    /// Hot-loop speedup over 1-core sequential.
    pub speedup: f64,
}

/// A memory-streaming loop sized for many-core scaling studies: enough
/// iterations to keep 31 workers busy for many waves, and a per-iteration
/// footprint that misses the L1 (fabric traffic grows with core count).
pub(crate) struct ScalingLoop {
    pub(crate) iters: u64,
}

const SCALING_REGION: u64 = hmtx_runtime::env::WORKLOAD_REGION_BASE + 0x10_0000;
const SCALING_LINES: u64 = 32;

impl hmtx_runtime::LoopBody for ScalingLoop {
    fn iterations(&self) -> u64 {
        self.iters
    }
    fn build_image(&self, _m: &mut Machine, _env: &hmtx_runtime::LoopEnv) {}
    fn emit_stage1(&self, b: &mut hmtx_isa::ProgramBuilder, _env: &hmtx_runtime::LoopEnv) {
        use hmtx_runtime::env::regs;
        b.mov(regs::ITEM, regs::N);
        b.li(regs::SPEC_LOADS, 1);
        b.li(regs::SPEC_STORES, 1);
    }
    fn emit_stage2(&self, b: &mut hmtx_isa::ProgramBuilder, _env: &hmtx_runtime::LoopEnv) {
        use hmtx_isa::Reg;
        use hmtx_runtime::env::regs;
        // Stream this iteration's private block (SCALING_LINES lines).
        b.mul(Reg::R1, regs::N, (SCALING_LINES * 64) as i64);
        b.addi(Reg::R1, Reg::R1, SCALING_REGION as i64);
        hmtx_workloads::emitlib::counted_loop(b, Reg::R0, SCALING_LINES, |b| {
            b.shl(Reg::R2, Reg::R0, 6);
            b.add(Reg::R2, Reg::R2, Reg::R1);
            b.load(Reg::R3, Reg::R2, 0);
            b.add(Reg::R3, Reg::R3, regs::N);
            b.store(Reg::R3, Reg::R2, 0);
        })
        .unwrap();
        b.compute(120);
        b.li(regs::SPEC_LOADS, SCALING_LINES as i64);
        b.li(regs::SPEC_STORES, SCALING_LINES as i64);
    }
}

/// §8 extension: PS-DSWP scaling with core count under the snoopy bus vs
/// the banked directory. The bus serializes every line transfer globally
/// and saturates as cores grow; the banked directory keeps scaling.
///
/// # Errors
///
/// Propagates [`SimError`] from any simulation run.
pub fn extension_scaling(pool: &SimPool) -> Result<Vec<ScalingRow>, SimError> {
    let seq = pool.get(&pool.job(
        Benchmark::ScalingLoop,
        JobParadigm::Sequential,
        ConfigVariant::ScalingBase,
    ))?;
    let mut rows = Vec::new();
    for cores in SCALING_CORES {
        for (label, directory) in [("snoopy bus", false), ("directory", true)] {
            let r = pool.get(&pool.job(
                Benchmark::ScalingLoop,
                JobParadigm::Explicit(hmtx_runtime::Paradigm::PsDswp),
                ConfigVariant::ScalingFabric { cores, directory },
            ))?;
            rows.push(ScalingRow {
                interconnect: label,
                cores,
                speedup: speedup(seq.cycles, r.cycles),
            });
        }
    }
    Ok(rows)
}

/// Renders the scaling experiment.
pub fn render_scaling(rows: &[ScalingRow]) -> String {
    let mut out = String::from(
        "Extension (8): PS-DSWP scaling, snoopy bus vs banked directory\n         cores      snoopy bus       directory\n",
    );
    for cores in SCALING_CORES {
        let get = |label: &str| {
            rows.iter()
                .find(|r| r.cores == cores && r.interconnect == label)
                .map(|r| r.speedup)
                .unwrap_or(f64::NAN)
        };
        out.push_str(&format!(
            "{cores:>5} {:>14.2}x {:>14.2}x\n",
            get("snoopy bus"),
            get("directory")
        ));
    }
    out
}

/// §8 extension: unbounded read/write sets. The same run that aborts on
/// speculative cache overflow completes (more slowly) when versions spill
/// into the memory-side overflow table.
///
/// # Errors
///
/// Propagates [`SimError`] from any simulation run.
pub fn ablation_unbounded(pool: &SimPool) -> Result<Vec<AblationRow>, SimError> {
    let ws = suite(pool.scale());
    let mut rows = Vec::new();
    for unbounded in [false, true] {
        let r = pool.get(&pool.job(
            Benchmark::Suite(VICTIM_BENCH),
            JobParadigm::Paper,
            ConfigVariant::Bounded { unbounded },
        ))?;
        rows.push(AblationRow {
            label: format!(
                "{} / {} sets",
                ws[VICTIM_BENCH].meta().name,
                if unbounded { "unbounded" } else { "bounded" }
            ),
            cycles: r.cycles,
            detail: format!(
                "recoveries: {}, spills: {}, refills: {}",
                r.recoveries,
                r.machine.mem().stats().unbounded_spills,
                r.machine.mem().stats().unbounded_fills
            ),
        });
    }
    Ok(rows)
}

/// One point of the inter-core latency sensitivity experiment (§2.1).
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Hardware queue / cross-core latency in cycles.
    pub latency: u64,
    /// DOACROSS hot-loop speedup.
    pub doacross: f64,
    /// PS-DSWP hot-loop speedup.
    pub psdswp: f64,
}

/// §2.1's motivating claim, measured: DOACROSS pays the inter-core latency
/// on every iteration (its loop-carried value crosses cores each time),
/// while pipeline parallelism pays it only at pipeline fill. Sweeping the
/// cross-core communication latency should crush DOACROSS and barely touch
/// PS-DSWP.
///
/// # Errors
///
/// Propagates [`SimError`] from any simulation run.
pub fn latency_sensitivity(pool: &SimPool) -> Result<Vec<LatencyRow>, SimError> {
    let seq = pool.get(&pool.job(
        Benchmark::Suite(LATENCY_BENCH),
        JobParadigm::Sequential,
        ConfigVariant::Base,
    ))?;
    let mut rows = Vec::new();
    for latency in LATENCY_SWEEP {
        let da = pool.get(&pool.job(
            Benchmark::Suite(LATENCY_BENCH),
            JobParadigm::Explicit(hmtx_runtime::Paradigm::Doacross),
            ConfigVariant::QueueLatency(latency),
        ))?;
        let ps = pool.get(&pool.job(
            Benchmark::Suite(LATENCY_BENCH),
            JobParadigm::Explicit(hmtx_runtime::Paradigm::PsDswp),
            ConfigVariant::QueueLatency(latency),
        ))?;
        rows.push(LatencyRow {
            latency,
            doacross: speedup(seq.cycles, da.cycles),
            psdswp: speedup(seq.cycles, ps.cycles),
        });
    }
    Ok(rows)
}

/// Renders the latency sensitivity sweep.
pub fn render_latency(rows: &[LatencyRow]) -> String {
    let mut out = String::from(
        "Latency sensitivity (2.1): DOACROSS vs PS-DSWP under rising\n         cross-core communication latency\n         latency(cycles)    DOACROSS     PS-DSWP\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>15} {:>10.2}x {:>10.2}x\n",
            r.latency, r.doacross, r.psdswp
        ));
    }
    out
}

/// Renders ablation rows.
pub fn render_ablation(title: &str, rows: &[AblationRow]) -> String {
    let mut out = format!("{title}\n");
    for r in rows {
        out.push_str(&format!(
            "{:<36} {:>12} cycles   {}\n",
            r.label, r.cycles, r.detail
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_pool() -> SimPool {
        SimPool::new(Scale::Quick, MachineConfig::test_default())
    }

    #[test]
    fn whole_program_speedup_amdahl() {
        assert!((whole_program_speedup(1.0, 2.0) - 2.0).abs() < 1e-12);
        assert!((whole_program_speedup(0.5, 2.0) - 4.0 / 3.0).abs() < 1e-12);
        assert!(whole_program_speedup(0.855, 2.0) < 2.0);
    }

    #[test]
    fn fig2_minimal_beats_substantial() {
        let rows = fig2(&quick_pool()).unwrap();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.minimal > r.substantial,
                "{}: {} <= {}",
                r.name,
                r.minimal,
                r.substantial
            );
        }
        let text = render_fig2(&rows);
        assert!(text.contains("geomean"));
    }

    #[test]
    fn fig9_bzip2_dominates_ispell() {
        let rows = fig9(&quick_pool()).unwrap();
        let bzip2 = rows.iter().find(|r| r.name == "256.bzip2").unwrap();
        let ispell = rows.iter().find(|r| r.name == "ispell").unwrap();
        assert!(bzip2.combined_kb > 5.0 * ispell.combined_kb);
        assert!(!render_fig9(&rows).is_empty());
    }

    #[test]
    fn table1_measures_plausible_shapes() {
        let rows = table1(&quick_pool()).unwrap();
        assert_eq!(rows.len(), 8);
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        // crafty must mispredict more than alvinn, like Table 1.
        assert!(by_name("186.crafty").mispredict_rate > by_name("052.alvinn").mispredict_rate);
        // li transactions must be much bigger than ispell's.
        assert!(
            by_name("130.li").spec_accesses_per_tx > 5.0 * by_name("ispell").spec_accesses_per_tx
        );
        assert!(!render_table1(&rows).is_empty());
    }

    #[test]
    fn sla_ablation_shows_false_misspeculation_without_slas() {
        let rows = ablation_sla(&quick_pool()).unwrap();
        let on = rows
            .iter()
            .find(|r| r.label == "sla-stress / SLA on")
            .unwrap();
        let off = rows
            .iter()
            .find(|r| r.label == "sla-stress / SLA off")
            .unwrap();
        assert!(
            on.detail.contains("recoveries: 0"),
            "SLAs must filter the squashed loads: {}",
            on.detail
        );
        assert!(
            !on.detail.contains("aborts avoided: 0"),
            "the stress loop must generate avoided aborts: {}",
            on.detail
        );
        assert!(
            !off.detail.contains("recoveries: 0"),
            "without SLAs the squashed loads must cause false misspeculation: {}",
            off.detail
        );
        assert!(
            off.cycles > on.cycles,
            "false misspeculation must cost time"
        );
    }

    #[test]
    fn victim_ablation_shows_overflow_policy_matters() {
        let rows = ablation_victim(&quick_pool()).unwrap();
        assert_eq!(rows.len(), 2);
        let safe = &rows[0];
        let lru = &rows[1];
        assert!(
            safe.cycles <= lru.cycles,
            "preferring S-O(0) victims must not be slower: {} vs {}",
            safe.cycles,
            lru.cycles
        );
    }

    #[test]
    fn vid_width_ablation_narrower_vids_reset_more() {
        let rows = ablation_vid_width(&quick_pool()).unwrap();
        let resets = |label_bits: &str| {
            rows.iter()
                .find(|r| r.label.contains(label_bits))
                .unwrap()
                .detail
                .rsplit(' ')
                .next()
                .unwrap()
                .parse::<u64>()
                .unwrap()
        };
        assert!(resets("3-bit") > resets("6-bit"));
        assert_eq!(resets("8-bit"), 0);
    }

    #[test]
    fn unbounded_sets_eliminate_overflow_recoveries() {
        // Standard-scale bzip2: its footprint genuinely exceeds the
        // ablation's constrained caches (the quick instance fits them).
        let pool = SimPool::new(Scale::Standard, MachineConfig::test_default());
        let rows = ablation_unbounded(&pool).unwrap();
        let bounded = &rows[0];
        let unbounded = &rows[1];
        assert!(
            unbounded.detail.contains("recoveries: 0"),
            "{}",
            unbounded.detail
        );
        assert!(
            !unbounded.detail.contains("spills: 0"),
            "{}",
            unbounded.detail
        );
        // With any overflow recoveries at all, bounded must be slower.
        if !bounded.detail.contains("recoveries: 0") {
            assert!(bounded.cycles > unbounded.cycles);
        }
    }

    #[test]
    fn directory_scales_past_the_snoopy_bus() {
        let rows = extension_scaling(&quick_pool()).unwrap();
        let get = |label: &str, cores: usize| {
            rows.iter()
                .find(|r| r.interconnect == label && r.cores == cores)
                .unwrap()
                .speedup
        };
        // Both fabrics must actually parallelize...
        assert!(get("snoopy bus", 8) > 2.0);
        assert!(get("directory", 8) > 2.0);
        // ...and at 32 cores the directory must be ahead.
        assert!(
            get("directory", 32) > get("snoopy bus", 32),
            "directory {} vs bus {}",
            get("directory", 32),
            get("snoopy bus", 32)
        );
        assert!(!render_scaling(&rows).is_empty());
    }

    #[test]
    fn doacross_is_latency_sensitive_and_psdswp_is_not() {
        let rows = latency_sensitivity(&quick_pool()).unwrap();
        let first = &rows[0];
        let last = rows.last().unwrap();
        // DOACROSS degrades substantially across the sweep...
        assert!(
            last.doacross < first.doacross * 0.8,
            "DOACROSS {} -> {}",
            first.doacross,
            last.doacross
        );
        // ...while PS-DSWP barely moves.
        assert!(
            last.psdswp > first.psdswp * 0.8,
            "PS-DSWP {} -> {}",
            first.psdswp,
            last.psdswp
        );
        assert!(!render_latency(&rows).is_empty());
    }

    #[test]
    fn table2_renders_configuration() {
        let text = render_table2(&MachineConfig::paper_default());
        assert!(text.contains("32 MB"));
        assert!(text.contains("64 KB"));
        assert!(text.contains("6 bits"));
    }

    /// The determinism guard for the planner: after prefetching `plan()`,
    /// every section must find all its simulations in the cache — zero
    /// on-demand misses — or parallel runs would silently degrade to
    /// serial-with-extra-steps.
    #[test]
    fn plan_covers_every_section_lookup() {
        let pool = quick_pool();
        pool.prefetch(&plan(&Section::ALL, Scale::Quick), 4)
            .unwrap();
        fig1::fig1(&pool).unwrap();
        fig2(&pool).unwrap();
        fig8(&pool).unwrap();
        fig9(&pool).unwrap();
        table1(&pool).unwrap();
        table3(&pool).unwrap();
        ablation_commit(&pool).unwrap();
        ablation_sla(&pool).unwrap();
        ablation_vid_width(&pool).unwrap();
        ablation_victim(&pool).unwrap();
        ablation_unbounded(&pool).unwrap();
        extension_scaling(&pool).unwrap();
        latency_sensitivity(&pool).unwrap();
        assert_eq!(
            pool.demand_misses(),
            0,
            "plan() drifted from the sections' lookups"
        );
    }
}
