//! The wire-spec → simulation bridge: one public entry point shared by the
//! `experiments` CLI and the `hmtx-serve` server.
//!
//! A [`JobSpec`] (from `hmtx-types`) names a simulation as plain data;
//! [`run_job`] materializes it into a [`SimJob`] plus base
//! [`MachineConfig`], executes it, and [`render_report`] turns the result
//! into a **deterministic** JSON report: no wall-clock, no host state —
//! running the same spec twice yields byte-identical report text. That
//! determinism is what lets the server cache reports content-addressed by
//! [`JobSpec::key`] and still guarantee byte-identical responses whether a
//! job was computed or replayed from the cache.

use hmtx_core::MisspecCause;
use hmtx_runtime::{DemotionCause, Paradigm};
use hmtx_smtx::RwSetMode;
use hmtx_types::{
    BenchRef, FaultConfig, JobSpec, Json, MachineConfig, SimError, WireBase, WireParadigm,
    WireScale, WireVariant,
};
use hmtx_workloads::{suite, Scale};

use crate::runner::{Benchmark, ConfigVariant, JobParadigm, JobResult, SimJob};

/// Schema tag of the reports produced by [`render_report`].
pub const REPORT_SCHEMA: &str = "hmtx-serve-report/1";

/// Maps a wire spec onto the executable job and the base configuration it
/// runs against (faults applied to the base; the variant applies at run
/// time, exactly as the experiment harness does it).
#[must_use]
pub fn materialize(spec: &JobSpec) -> (SimJob, MachineConfig) {
    let benchmark = match spec.benchmark {
        BenchRef::Suite(i) => Benchmark::Suite(i as usize),
        BenchRef::SlaStress => Benchmark::SlaStress,
        BenchRef::ScalingLoop => Benchmark::ScalingLoop,
        BenchRef::Fig1Loop => Benchmark::Fig1Loop,
    };
    let paradigm = match spec.paradigm {
        WireParadigm::Sequential => JobParadigm::Sequential,
        WireParadigm::Paper => JobParadigm::Paper,
        WireParadigm::SmtxMin => JobParadigm::Smtx(RwSetMode::Minimal),
        WireParadigm::SmtxSub => JobParadigm::Smtx(RwSetMode::Substantial),
        WireParadigm::SmtxMax => JobParadigm::Smtx(RwSetMode::Maximal),
        WireParadigm::Doall => JobParadigm::Explicit(Paradigm::Doall),
        WireParadigm::Doacross => JobParadigm::Explicit(Paradigm::Doacross),
        WireParadigm::Dswp => JobParadigm::Explicit(Paradigm::Dswp),
        WireParadigm::PsDswp => JobParadigm::Explicit(Paradigm::PsDswp),
        WireParadigm::Hytm => JobParadigm::Hytm,
    };
    let config = match spec.variant {
        WireVariant::Base => ConfigVariant::Base,
        WireVariant::Commit { lazy } => ConfigVariant::Commit { lazy },
        WireVariant::Sla { enabled } => ConfigVariant::Sla { enabled },
        WireVariant::VidBits(bits) => ConfigVariant::VidBits(bits),
        WireVariant::Victim(policy) => ConfigVariant::Victim(policy),
        WireVariant::Bounded { unbounded } => ConfigVariant::Bounded { unbounded },
        WireVariant::ScalingBase => ConfigVariant::ScalingBase,
        WireVariant::ScalingFabric { cores, directory } => ConfigVariant::ScalingFabric {
            cores: cores as usize,
            directory,
        },
        WireVariant::QueueLatency(latency) => ConfigVariant::QueueLatency(latency),
    };
    let scale = match spec.scale {
        WireScale::Quick => Scale::Quick,
        WireScale::Standard => Scale::Standard,
        WireScale::Stress => Scale::Stress,
    };
    let mut base = match spec.base {
        WireBase::Paper => MachineConfig::paper_default(),
        WireBase::Test => MachineConfig::test_default(),
    };
    if let Some(f) = spec.fault {
        base.faults = Some(FaultConfig::chaos(f.seed, f.rate_ppm));
    }
    (SimJob::new(benchmark, paradigm, config, scale), base)
}

/// Runs the spec's simulation: the single job-spec → simulate path, used by
/// both the `experiments job` subcommand and the `hmtx-serve` worker pool.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulation (bad suite index, paradigm
/// mismatch, verification diagnostics, …).
pub fn run_job(spec: &JobSpec) -> Result<JobResult, SimError> {
    let (job, base) = materialize(spec);
    job.run(&base)
}

/// Runs the spec and renders its deterministic report in one step.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulation.
pub fn run_job_report(spec: &JobSpec) -> Result<Json, SimError> {
    let result = run_job(spec)?;
    Ok(render_report(spec, &result))
}

/// A short stable tag per misspeculation cause class, for aggregation.
fn cause_kind(cause: &MisspecCause) -> &'static str {
    match cause {
        MisspecCause::StoreBelowHighVid { .. } => "store-below-high-vid",
        MisspecCause::StoreToSupersededVersion { .. } => "store-to-superseded",
        MisspecCause::NonSpecWriteConflict { .. } => "non-spec-write-conflict",
        MisspecCause::SpecOverflow { .. } => "spec-overflow",
        MisspecCause::SlaValueMismatch { .. } => "sla-value-mismatch",
        MisspecCause::ExplicitAbort { .. } => "explicit-abort",
        MisspecCause::InjectedConflict { .. } => "injected-conflict",
    }
}

/// Renders the deterministic report for a finished job. Everything in the
/// output is a function of the spec and the simulated machine; host
/// wall-clock (`JobResult::wall_seconds`) is deliberately excluded so the
/// bytes are reproducible and cacheable.
#[must_use]
pub fn render_report(spec: &JobSpec, result: &JobResult) -> Json {
    let (job, _) = materialize(spec);
    let stats = result.machine.stats();
    let mem = result.machine.mem().stats();
    let rw = mem.rw_totals();

    // Aggregate recovery causes into stable (kind, count) pairs.
    let mut causes: Vec<(&'static str, u64)> = Vec::new();
    if let Some(report) = &result.report {
        for cause in &report.recovery_causes {
            let kind = cause_kind(cause);
            match causes.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, n)) => *n = n.saturating_add(1),
                None => causes.push((kind, 1)),
            }
        }
    }
    causes.sort_by_key(|(k, _)| *k);

    let outputs = match &result.report {
        Some(report) => report.outputs.clone(),
        None => result.machine.committed_output().to_vec(),
    };
    let instructions = match &result.report {
        Some(report) => report.instructions,
        None => stats.instructions,
    };

    Json::obj(vec![
        ("schema", Json::Str(REPORT_SCHEMA.into())),
        ("key", Json::Str(spec.key())),
        ("spec", spec.to_json()),
        ("label", Json::Str(job.label())),
        ("cycles", Json::Uint(result.cycles)),
        ("instructions", Json::Uint(instructions)),
        ("recoveries", Json::Uint(result.recoveries)),
        (
            "recovery_causes",
            Json::Arr(
                causes
                    .into_iter()
                    .map(|(kind, count)| {
                        Json::obj(vec![
                            ("kind", Json::Str(kind.into())),
                            ("count", Json::Uint(count)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "outputs",
            Json::Arr(outputs.into_iter().map(Json::Uint).collect()),
        ),
        (
            "machine",
            Json::obj(vec![
                ("instructions", Json::Uint(stats.instructions)),
                ("branches", Json::Uint(stats.branches)),
                ("mispredictions", Json::Uint(stats.mispredictions)),
                (
                    "wrong_path_instructions",
                    Json::Uint(stats.wrong_path_instructions),
                ),
                ("interrupts", Json::Uint(stats.interrupts)),
                ("explicit_aborts", Json::Uint(stats.explicit_aborts)),
            ]),
        ),
        (
            "mem",
            Json::obj(vec![
                ("loads", Json::Uint(mem.loads)),
                ("stores", Json::Uint(mem.stores)),
                ("spec_loads", Json::Uint(mem.spec_loads)),
                ("spec_stores", Json::Uint(mem.spec_stores)),
                ("l1_hits", Json::Uint(mem.l1_hits)),
                ("l1_misses", Json::Uint(mem.l1_misses)),
                ("l2_hits", Json::Uint(mem.l2_hits)),
                ("mem_fills", Json::Uint(mem.mem_fills)),
                ("peer_transfers", Json::Uint(mem.peer_transfers)),
                ("slas_sent", Json::Uint(mem.slas_sent)),
                ("sla_aborts_avoided", Json::Uint(mem.sla_aborts_avoided)),
                ("commits", Json::Uint(mem.commits)),
                ("aborts", Json::Uint(mem.aborts)),
                ("vid_resets", Json::Uint(mem.vid_resets)),
            ]),
        ),
        (
            "rw_set",
            Json::obj(vec![
                ("transactions", Json::Uint(rw.transactions)),
                ("avg_read_kb", Json::Num(rw.avg_read_kb())),
                ("avg_write_kb", Json::Num(rw.avg_write_kb())),
                ("avg_combined_kb", Json::Num(rw.avg_combined_kb())),
            ]),
        ),
        (
            "hytm",
            match result.report.as_ref().and_then(|r| r.hytm.as_ref()) {
                None => Json::Null,
                Some(mix) => Json::obj(vec![
                    ("fast_commits", Json::Uint(mix.fast_commits)),
                    ("slow_commits", Json::Uint(mix.slow_commits)),
                    ("demotions", Json::Uint(mix.demotions())),
                    (
                        "demotions_by_cause",
                        Json::obj(
                            DemotionCause::ALL
                                .iter()
                                .zip(mix.demotions_by_cause.iter())
                                .map(|(c, n)| (c.name(), Json::Uint(*n)))
                                .collect(),
                        ),
                    ),
                    ("fast_retries", Json::Uint(mix.fast_retries)),
                    ("backoff_cycles", Json::Uint(mix.backoff_cycles)),
                    (
                        "storm_serializations",
                        Json::Uint(mix.storm_serializations),
                    ),
                ]),
            },
        ),
    ])
}

/// The standard benchmark sweep `hmtx-load` submits: every suite workload
/// under ten paradigm/variant mixes (sequential baseline, HMTX base, the
/// hybrid `hytm` mode, lazy vs eager commit, SLAs on/off, and three VID
/// widths) — 8 × 10 = 80 jobs, every combination guaranteed runnable at
/// any scale.
#[must_use]
pub fn standard_sweep(scale: WireScale) -> Vec<JobSpec> {
    let mixes: [(WireParadigm, WireVariant); 10] = [
        (WireParadigm::Sequential, WireVariant::Base),
        (WireParadigm::Paper, WireVariant::Base),
        (WireParadigm::Hytm, WireVariant::Base),
        (WireParadigm::Paper, WireVariant::Commit { lazy: true }),
        (WireParadigm::Paper, WireVariant::Commit { lazy: false }),
        (WireParadigm::Paper, WireVariant::Sla { enabled: true }),
        (WireParadigm::Paper, WireVariant::Sla { enabled: false }),
        (WireParadigm::Paper, WireVariant::VidBits(4)),
        (WireParadigm::Paper, WireVariant::VidBits(6)),
        (WireParadigm::Paper, WireVariant::VidBits(8)),
    ];
    let workloads = suite(Scale::Quick).len() as u32;
    let mut specs = Vec::with_capacity(workloads as usize * mixes.len());
    for w in 0..workloads {
        for (paradigm, variant) in mixes {
            specs.push(JobSpec {
                benchmark: BenchRef::Suite(w),
                paradigm,
                scale,
                base: WireBase::Test,
                variant,
                fault: None,
            });
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_types::FaultSpec;

    fn quick_spec(index: u32, paradigm: WireParadigm) -> JobSpec {
        JobSpec::new(
            BenchRef::Suite(index),
            paradigm,
            WireScale::Quick,
            WireBase::Test,
        )
    }

    #[test]
    fn reports_are_deterministic_and_wall_clock_free() {
        let spec = quick_spec(7, WireParadigm::Paper);
        let a = run_job_report(&spec).unwrap().compact();
        let b = run_job_report(&spec).unwrap().compact();
        assert_eq!(a, b, "same spec must render byte-identical reports");
        assert!(!a.contains("wall_seconds"), "{a}");
        assert!(a.contains(&format!("\"key\":\"{}\"", spec.key())), "{a}");
    }

    #[test]
    fn run_job_matches_the_harness_pipeline() {
        let spec = quick_spec(7, WireParadigm::Paper);
        let via_spec = run_job(&spec).unwrap();
        let (job, base) = materialize(&spec);
        let direct = job.run(&base).unwrap();
        assert_eq!(via_spec.cycles, direct.cycles);
        assert_eq!(via_spec.recoveries, direct.recoveries);
    }

    #[test]
    fn faults_and_variants_reach_the_config() {
        let mut spec = quick_spec(0, WireParadigm::Paper);
        spec.variant = WireVariant::Sla { enabled: false };
        spec.fault = Some(FaultSpec {
            seed: 11,
            rate_ppm: 400,
        });
        let (job, base) = materialize(&spec);
        let f = base.faults.expect("fault spec must map to chaos config");
        assert_eq!((f.seed, f.rate_ppm), (11, 400));
        let cfg = job.config.apply(&base);
        assert!(!cfg.hmtx.sla_enabled);
        assert!(cfg.faults.is_some(), "faults survive the variant");
    }

    #[test]
    fn smtx_jobs_render_without_a_runtime_report() {
        let spec = quick_spec(2, WireParadigm::SmtxMin);
        let report = run_job_report(&spec).unwrap();
        assert_eq!(
            report.get("schema").and_then(Json::as_str),
            Some(REPORT_SCHEMA)
        );
        assert!(report.get("cycles").and_then(Json::as_u64).unwrap() > 0);
    }

    #[test]
    fn standard_sweep_is_80_distinct_runnable_specs() {
        let sweep = standard_sweep(WireScale::Quick);
        assert_eq!(sweep.len(), 80);
        let keys: std::collections::HashSet<String> =
            sweep.iter().map(JobSpec::key).collect();
        assert_eq!(keys.len(), 80, "sweep keys must be distinct");
        // The sweep carries a hytm column for every workload.
        let hytm = sweep
            .iter()
            .filter(|s| s.paradigm == WireParadigm::Hytm)
            .count();
        assert_eq!(hytm, 8, "one hytm job per suite workload");
        // Spot-check that an arbitrary sweep entry actually runs.
        run_job(&sweep[9]).unwrap();
    }

    #[test]
    fn hytm_jobs_render_the_path_mix() {
        let spec = quick_spec(7, WireParadigm::Hytm);
        let report = run_job_report(&spec).unwrap();
        let mix = report.get("hytm").expect("hytm block present");
        assert!(
            mix.get("fast_commits").and_then(Json::as_u64).is_some(),
            "{report:?}"
        );
        // Non-hytm paradigms render `hytm: null`.
        let paper = run_job_report(&quick_spec(7, WireParadigm::Paper)).unwrap();
        assert!(matches!(paper.get("hytm"), Some(Json::Null)));
    }
}
