//! The runner's line-oriented status stream — the harness's first
//! observability hook.
//!
//! Every event is one self-contained `[runner] ...` line on stderr (stdout
//! stays reserved for the byte-stable figure/table output):
//!
//! ```text
//! [runner] start   3/18 130.li:smtx-min:base:quick
//! [runner] done    3/18 130.li:smtx-min:base:quick wall=0.42s cycles=1234567 (2.9 Mcyc/s) running=3 queued=9
//! [runner] steal worker2<-worker0
//! [runner] demand ispell:seq:base:quick wall=0.05s cycles=98765
//! [runner] fail  256.bzip2:hmtx:base:standard: InstructionBudgetExceeded { .. }
//! ```
//!
//! Lines are written atomically (one `writeln!` per event behind stderr's
//! lock), so interleaved workers never shear a line — safe to `grep` or
//! tail from scripts.

use std::io::Write;

/// A sink for runner status lines. Disabled by default; enable with
/// [`crate::runner::SimPool::with_progress`] (the `--progress` flag of the
/// `experiments` binary).
pub struct Reporter {
    enabled: bool,
}

impl Reporter {
    /// A reporter that drops every line.
    #[must_use]
    pub fn disabled() -> Self {
        Reporter { enabled: false }
    }

    /// A reporter writing `[runner]` lines to stderr.
    #[must_use]
    pub fn stderr() -> Self {
        Reporter { enabled: true }
    }

    /// Whether lines are being emitted.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Emits one status line (no-op when disabled).
    pub fn line(&self, msg: &str) {
        if self.enabled {
            // Ignore a broken stderr rather than killing a worker thread.
            let _ = writeln!(std::io::stderr().lock(), "[runner] {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_reporter_is_silent_and_cheap() {
        let r = Reporter::disabled();
        assert!(!r.is_enabled());
        r.line("never shown");
    }

    #[test]
    fn stderr_reporter_is_enabled() {
        assert!(Reporter::stderr().is_enabled());
    }
}
