//! Figure 1: execution timing diagrams of Sequential, DOACROSS, DSWP, and
//! PS-DSWP for the first iterations of a loop.
//!
//! A small instrumented loop emits `marker` instructions at the boundaries
//! of each pipeline stage; the machine's marker log is reconstructed into
//! per-core work intervals and rendered as an ASCII Gantt chart shaped like
//! the paper's figure (`n3` = stage-1 work of iteration 3, `w3` = stage-2
//! work).

use hmtx_isa::{ProgramBuilder, Reg};
use hmtx_machine::Machine;
use hmtx_runtime::env::{regs, LoopEnv};
use hmtx_runtime::{LoopBody, Paradigm};
use hmtx_types::SimError;

use crate::runner::{Benchmark, ConfigVariant, JobParadigm, SimPool};

const MARK_S1_BEGIN: u32 = 10;
const MARK_S1_END: u32 = 11;
const MARK_S2_BEGIN: u32 = 20;
const MARK_S2_END: u32 = 21;

/// The paradigms Figure 1 diagrams, in render order.
pub const PARADIGMS: [Paradigm; 4] = [
    Paradigm::Sequential,
    Paradigm::Doacross,
    Paradigm::Dswp,
    Paradigm::PsDswp,
];

/// The instrumented linked-list-style loop used for the diagram.
pub(crate) struct Fig1Loop {
    pub(crate) iters: u64,
}

impl LoopBody for Fig1Loop {
    fn iterations(&self) -> u64 {
        self.iters
    }
    fn build_image(&self, _m: &mut Machine, _env: &LoopEnv) {}
    fn emit_stage1(&self, b: &mut ProgramBuilder, env: &LoopEnv) {
        b.marker(MARK_S1_BEGIN);
        // "find the next node": a loop-carried pointer update.
        b.li(Reg::R1, env.state_slot(0).0 as i64);
        b.load(Reg::R2, Reg::R1, 0);
        b.addi(Reg::R2, Reg::R2, 1);
        b.store(Reg::R2, Reg::R1, 0);
        b.mov(regs::ITEM, Reg::R2);
        b.compute(60);
        b.li(regs::SPEC_LOADS, 1);
        b.li(regs::SPEC_STORES, 1);
        b.marker(MARK_S1_END);
    }
    fn emit_stage2(&self, b: &mut ProgramBuilder, _env: &LoopEnv) {
        b.marker(MARK_S2_BEGIN);
        // "work(node)": several times more expensive than stage 1.
        b.compute(220);
        b.shl(Reg::R3, regs::N, 6);
        b.addi(Reg::R3, Reg::R3, 0x0010_0000);
        b.store(regs::ITEM, Reg::R3, 0);
        b.li(regs::SPEC_LOADS, 1);
        b.li(regs::SPEC_STORES, 1);
        b.marker(MARK_S2_END);
    }
}

/// A reconstructed work interval.
#[derive(Debug, Clone)]
struct Interval {
    core: usize,
    start: u64,
    end: u64,
    stage1: bool,
    seq: usize, // per-core occurrence index of this stage
}

/// Runs one paradigm and renders its lane diagram.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulation.
pub fn render_paradigm(pool: &SimPool, paradigm: Paradigm) -> Result<String, SimError> {
    let result = pool.get(&pool.job(
        Benchmark::Fig1Loop,
        JobParadigm::Explicit(paradigm),
        ConfigVariant::Base,
    ))?;
    let machine = &result.machine;

    // Pair begin/end markers per core.
    let mut open: std::collections::HashMap<(usize, u32), u64> = std::collections::HashMap::new();
    let mut per_core_count: std::collections::HashMap<(usize, bool), usize> =
        std::collections::HashMap::new();
    let mut intervals: Vec<Interval> = Vec::new();
    for ev in machine.marker_log() {
        match ev.id {
            MARK_S1_BEGIN | MARK_S2_BEGIN => {
                open.insert((ev.core.0, ev.id), ev.cycle);
            }
            MARK_S1_END | MARK_S2_END => {
                let begin_id = ev.id - 1;
                if let Some(start) = open.remove(&(ev.core.0, begin_id)) {
                    let stage1 = begin_id == MARK_S1_BEGIN;
                    let seq = per_core_count.entry((ev.core.0, stage1)).or_insert(0);
                    intervals.push(Interval {
                        core: ev.core.0,
                        start,
                        end: ev.cycle,
                        stage1,
                        seq: *seq,
                    });
                    *seq += 1;
                }
            }
            _ => {}
        }
    }
    if intervals.is_empty() {
        return Ok(format!("{}: (no marker events)\n", paradigm.name()));
    }

    // Iteration numbering: stage-1 intervals on a core are consecutive
    // occurrences of that core's lane; map occurrence -> iteration number.
    let cores: Vec<usize> = {
        let mut c: Vec<usize> = intervals.iter().map(|i| i.core).collect();
        c.sort_unstable();
        c.dedup();
        c
    };
    let lane_of = |core: usize| cores.iter().position(|c| *c == core).unwrap();
    let iter_label = |iv: &Interval| -> usize {
        match paradigm {
            Paradigm::Sequential => iv.seq + 1,
            // DOALL/DOACROSS: core lanes own n = lane+1, lane+1+W, ...
            Paradigm::Doall | Paradigm::Doacross => lane_of(iv.core) + cores.len() * iv.seq + 1,
            // DSWP/PS-DSWP: stage 1 on core 0 in order; stage-2 workers
            // round-robin.
            Paradigm::Dswp | Paradigm::PsDswp => {
                if iv.stage1 {
                    iv.seq + 1
                } else {
                    let workers = cores.len() - 1;
                    (lane_of(iv.core) - 1) + workers * iv.seq + 1
                }
            }
        }
    };

    let t_end = intervals.iter().map(|i| i.end).max().unwrap();
    let t_begin = intervals.iter().map(|i| i.start).min().unwrap();
    let width = 72usize;
    let scale = ((t_end - t_begin).max(1) as f64) / width as f64;
    let mut out = format!("{} (cycles {t_begin}..{t_end}):\n", paradigm.name());
    for &core in &cores {
        let mut row = vec![' '; width + 4];
        for iv in intervals.iter().filter(|i| i.core == core) {
            let s = (((iv.start - t_begin) as f64) / scale) as usize;
            let e = ((((iv.end - t_begin) as f64) / scale) as usize).max(s + 1);
            let label = format!("{}{}", if iv.stage1 { 'n' } else { 'w' }, iter_label(iv));
            for (k, cell) in row.iter_mut().enumerate().take(e.min(width)).skip(s) {
                let li = k - s;
                *cell = label
                    .chars()
                    .nth(li)
                    .unwrap_or(if iv.stage1 { '-' } else { '=' });
            }
        }
        out.push_str(&format!(
            "  core{core} |{}\n",
            row.into_iter().collect::<String>()
        ));
    }
    Ok(out)
}

/// Regenerates the whole Figure 1 (all four paradigms).
///
/// # Errors
///
/// Propagates [`SimError`] from any simulation run.
pub fn fig1(pool: &SimPool) -> Result<String, SimError> {
    let mut out = String::from(
        "Figure 1: execution timing of the first 5 iterations\n\
         (n = stage-1 work, w = stage-2 work; '-'/'=' continue an interval)\n\n",
    );
    for paradigm in PARADIGMS {
        out.push_str(&render_paradigm(pool, paradigm)?);
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_types::MachineConfig;
    use hmtx_workloads::Scale;

    fn pool() -> SimPool {
        SimPool::new(Scale::Quick, MachineConfig::test_default())
    }

    #[test]
    fn fig1_renders_all_paradigms() {
        let text = fig1(&pool()).unwrap();
        for name in ["Sequential", "DOACROSS", "DSWP", "PS-DSWP"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("n1"));
        assert!(text.contains("w1"));
    }

    #[test]
    fn psdswp_uses_more_lanes_than_dswp() {
        let p = pool();
        let dswp = render_paradigm(&p, Paradigm::Dswp).unwrap();
        let psdswp = render_paradigm(&p, Paradigm::PsDswp).unwrap();
        let lanes = |s: &str| {
            s.lines()
                .filter(|l| l.trim_start().starts_with("core"))
                .count()
        };
        assert_eq!(lanes(&dswp), 2);
        assert!(lanes(&psdswp) > 2);
    }

    #[test]
    fn sequential_is_one_lane() {
        let seq = render_paradigm(&pool(), Paradigm::Sequential).unwrap();
        let lanes = seq
            .lines()
            .filter(|l| l.trim_start().starts_with("core"))
            .count();
        assert_eq!(lanes, 1);
    }
}
