//! Machine-readable experiment reports (`experiments --json PATH`).
//!
//! The report mirrors the printed sections — every figure/table row, with
//! its cycle counts and speedups — plus a `sim_jobs` array giving each
//! underlying simulation's wall-clock seconds, so regressions in both
//! *results* and *harness cost* diff cleanly across commits.
//!
//! JSON is emitted by a tiny handwritten serializer ([`Json`]): the
//! container has no serde, and the report's needs (ordered objects, stable
//! float formatting) are small enough that a dependency would be all cost.

use hmtx_types::{Json, SimError};

use crate::runner::SimPool;
use crate::Section;

fn hytm_mix_json(mix: Option<&hmtx_runtime::HytmMix>) -> Json {
    let Some(m) = mix else { return Json::Null };
    Json::obj(vec![
        ("fast_commits", Json::Uint(m.fast_commits)),
        ("slow_commits", Json::Uint(m.slow_commits)),
        ("demotions", Json::Uint(m.demotions())),
        (
            "demotions_by_cause",
            Json::obj(
                hmtx_runtime::DemotionCause::ALL
                    .iter()
                    .zip(m.demotions_by_cause.iter())
                    .map(|(c, n)| (c.name(), Json::Uint(*n)))
                    .collect(),
            ),
        ),
        ("fast_retries", Json::Uint(m.fast_retries)),
        ("backoff_cycles", Json::Uint(m.backoff_cycles)),
        ("storm_serializations", Json::Uint(m.storm_serializations)),
    ])
}

fn ablation_json(rows: &[crate::AblationRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("label", Json::Str(r.label.clone())),
                    ("cycles", Json::Uint(r.cycles)),
                    ("detail", Json::Str(r.detail.clone())),
                ])
            })
            .collect(),
    )
}

/// Assembles the JSON report for the given sections. Every simulation is a
/// cache lookup — call this after the figures have been rendered (or after
/// a [`SimPool::prefetch`] of [`crate::plan`]).
///
/// # Errors
///
/// Propagates [`SimError`] from any simulation run.
pub fn build_report(pool: &SimPool, sections: &[Section]) -> Result<Json, SimError> {
    let cfg = pool.base_cfg();
    let mut top: Vec<(&'static str, Json)> = vec![
        ("schema", Json::Str("hmtx-bench-report/1".into())),
        (
            "scale",
            Json::Str(format!("{:?}", pool.scale()).to_lowercase()),
        ),
        (
            "sections",
            Json::Arr(
                sections
                    .iter()
                    .map(|s| Json::Str(s.name().into()))
                    .collect(),
            ),
        ),
    ];

    for section in sections {
        let value = match section {
            Section::Table2 => Json::obj(vec![
                ("num_cores", Json::Uint(cfg.num_cores as u64)),
                ("l1_kb", Json::Uint(cfg.l1.size_bytes as u64 / 1024)),
                ("l2_kb", Json::Uint(cfg.l2.size_bytes as u64 / 1024)),
                ("mem_latency", Json::Uint(cfg.mem_latency)),
                ("vid_bits", Json::Uint(u64::from(cfg.hmtx.vid_bits))),
            ]),
            Section::Fig1 => Json::Str(crate::fig1::fig1(pool)?),
            Section::Fig2 => Json::Arr(
                crate::fig2(pool)?
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("name", Json::Str(r.name.clone())),
                            ("minimal", Json::Num(r.minimal)),
                            ("substantial", Json::Num(r.substantial)),
                        ])
                    })
                    .collect(),
            ),
            Section::Fig8 => {
                let (rows, summary) = crate::fig8(pool)?;
                Json::obj(vec![
                    (
                        "rows",
                        Json::Arr(
                            rows.iter()
                                .map(|r| {
                                    Json::obj(vec![
                                        ("name", Json::Str(r.name.clone())),
                                        ("smtx", r.smtx.map_or(Json::Null, Json::Num)),
                                        ("hmtx", Json::Num(r.hmtx)),
                                        ("hytm", Json::Num(r.hytm)),
                                        ("hytm_mix", hytm_mix_json(r.hytm_mix.as_ref())),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "geomean",
                        Json::obj(vec![
                            ("hmtx_all", Json::Num(summary.hmtx_all)),
                            ("hmtx_comparable", Json::Num(summary.hmtx_comparable)),
                            ("smtx_comparable", Json::Num(summary.smtx_comparable)),
                            ("hytm_all", Json::Num(summary.hytm_all)),
                        ]),
                    ),
                ])
            }
            Section::Fig9 => Json::Arr(
                crate::fig9(pool)?
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("name", Json::Str(r.name.clone())),
                            ("read_kb", Json::Num(r.read_kb)),
                            ("write_kb", Json::Num(r.write_kb)),
                            ("combined_kb", Json::Num(r.combined_kb)),
                        ])
                    })
                    .collect(),
            ),
            Section::Table1 => Json::Arr(
                crate::table1(pool)?
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("name", Json::Str(r.name.clone())),
                            ("paradigm", Json::Str(r.paradigm.into())),
                            ("spec_accesses_per_tx", Json::Num(r.spec_accesses_per_tx)),
                            (
                                "sla_aborts_avoided_per_tx",
                                Json::Num(r.sla_aborts_avoided_per_tx),
                            ),
                            ("loads_needing_sla", Json::Num(r.loads_needing_sla)),
                            ("branch_fraction", Json::Num(r.branch_fraction)),
                            ("mispredict_rate", Json::Num(r.mispredict_rate)),
                        ])
                    })
                    .collect(),
            ),
            Section::Table3 => Json::Arr(
                crate::table3(pool)?
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("hardware", Json::Str(r.hardware.into())),
                            ("exec_model", Json::Str(r.exec_model.clone())),
                            ("area_mm2", Json::Num(r.area_mm2)),
                            ("leakage_w", Json::Num(r.leakage_w)),
                            ("dynamic_w", Json::Num(r.dynamic_w)),
                            ("energy_j", Json::Num(r.energy_j)),
                        ])
                    })
                    .collect(),
            ),
            Section::Ablations => Json::obj(vec![
                ("commit", ablation_json(&crate::ablation_commit(pool)?)),
                ("sla", ablation_json(&crate::ablation_sla(pool)?)),
                (
                    "vid_width",
                    ablation_json(&crate::ablation_vid_width(pool)?),
                ),
                ("victim", ablation_json(&crate::ablation_victim(pool)?)),
            ]),
            Section::Extensions => Json::obj(vec![
                (
                    "unbounded",
                    ablation_json(&crate::ablation_unbounded(pool)?),
                ),
                (
                    "scaling",
                    Json::Arr(
                        crate::extension_scaling(pool)?
                            .iter()
                            .map(|r| {
                                Json::obj(vec![
                                    ("interconnect", Json::Str(r.interconnect.into())),
                                    ("cores", Json::Uint(r.cores as u64)),
                                    ("speedup", Json::Num(r.speedup)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "latency",
                    Json::Arr(
                        crate::latency_sensitivity(pool)?
                            .iter()
                            .map(|r| {
                                Json::obj(vec![
                                    ("latency", Json::Uint(r.latency)),
                                    ("doacross", Json::Num(r.doacross)),
                                    ("psdswp", Json::Num(r.psdswp)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        };
        top.push((section.name(), value));
    }

    let log = pool.job_log();
    let total_wall: f64 = log.iter().map(|e| e.wall_seconds).sum();
    top.push((
        "sim_jobs",
        Json::Arr(
            log.iter()
                .map(|e| {
                    Json::obj(vec![
                        ("label", Json::Str(e.label.clone())),
                        ("cycles", Json::Uint(e.cycles)),
                        ("recoveries", Json::Uint(e.recoveries)),
                        ("wall_seconds", Json::Num(e.wall_seconds)),
                    ])
                })
                .collect(),
        ),
    ));
    top.push((
        "total",
        Json::obj(vec![
            ("sim_jobs", Json::Uint(log.len() as u64)),
            ("sim_wall_seconds", Json::Num(total_wall)),
        ]),
    ));
    Ok(Json::obj(top))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_types::MachineConfig;
    use hmtx_workloads::Scale;

    #[test]
    fn json_serializer_escapes_and_formats() {
        let v = Json::obj(vec![
            ("s", Json::Str("a\"b\\c\nd\u{1}".into())),
            ("n", Json::Num(1.0)),
            ("u", Json::Uint(u64::MAX)),
            ("inf", Json::Num(f64::INFINITY)),
            ("arr", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = v.pretty();
        assert!(text.contains(r#""s": "a\"b\\c\nd\u0001""#), "{text}");
        assert!(text.contains("\"n\": 1.0"), "{text}");
        assert!(text.contains(&format!("\"u\": {}", u64::MAX)), "{text}");
        assert!(text.contains("\"inf\": null"), "{text}");
        assert!(text.contains("\"empty\": []"), "{text}");
        assert!(text.ends_with("}\n"), "{text}");
    }

    #[test]
    fn report_covers_sections_and_jobs() {
        let pool = SimPool::new(Scale::Quick, MachineConfig::test_default());
        let sections = [Section::Table2, Section::Fig2];
        let report = build_report(&pool, &sections).unwrap();
        let text = report.pretty();
        assert!(text.contains("\"fig2\""), "{text}");
        assert!(text.contains("\"minimal\""), "{text}");
        assert!(text.contains("\"vid_bits\""), "{text}");
        // Every simulation the section ran appears with its wall-clock.
        assert!(text.contains("\"wall_seconds\""), "{text}");
        assert!(text.contains("130.li:seq:base:quick"), "{text}");
    }
}
