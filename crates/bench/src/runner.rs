//! The parallel, deterministic simulation job runner.
//!
//! Every experiment in this crate decomposes into *pure* simulation jobs: a
//! [`SimJob`] names a benchmark, a paradigm, a configuration variant, and a
//! scale, and running it twice produces bit-identical machines (the whole
//! simulator is deterministic and shares no state between runs). That purity
//! is what makes the harness parallel *and* reproducible:
//!
//! * [`SimPool::prefetch`] executes a planned job list across host threads
//!   (`std::thread::scope` over per-worker work-stealing queues) and caches
//!   each result keyed by its job;
//! * the figure/table functions then *look up* results in stable job order,
//!   so the rendered output is byte-identical whatever `--jobs` was;
//! * identical jobs shared by several figures (e.g. the sequential baseline
//!   used by Figure 2, Figure 8, and Table 3) simulate exactly once.
//!
//! A job missing from the cache still runs on demand — planning drift can
//! cost parallelism, never correctness ([`SimPool::demand_misses`] exposes
//! the drift so a test can pin it to zero).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use hmtx_machine::Machine;
use hmtx_runtime::{run_loop, Paradigm, RunReport};
use hmtx_smtx::{run_hytm, run_smtx, RwSetMode};
use hmtx_types::{CacheConfig, Interconnect, MachineConfig, SimError, VictimPolicy};
use hmtx_workloads::{suite, Scale};

use crate::BUDGET;

pub mod progress;

use progress::Reporter;

// --------------------------------------------------------------------- jobs

/// What simulates: a suite workload or one of the synthetic loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// `suite(scale)[index]` — one of the 8 paper workload analogues.
    Suite(usize),
    /// The §5.1 wrong-path hazard loop (ablation B).
    SlaStress,
    /// The memory-streaming loop of the §8 core-count scaling study.
    ScalingLoop,
    /// The instrumented pipeline loop behind Figure 1's timing diagrams.
    Fig1Loop,
}

/// Which execution model runs the benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobParadigm {
    /// Single-core sequential baseline.
    Sequential,
    /// The workload's paper paradigm (`meta().paradigm`) on HMTX.
    Paper,
    /// The software-MTX port with the given validation mode.
    Smtx(RwSetMode),
    /// Hybrid TM: the workload's paper paradigm on the bounded HMTX fast
    /// path with the SMTX software slow path (suite workloads only).
    Hytm,
    /// An explicitly chosen paradigm (Figure 1, synthetic loops).
    Explicit(Paradigm),
}

/// A named, hashable configuration variant. Variants are applied to the
/// pool's base configuration, so a job stays a small pure value instead of
/// embedding a whole `MachineConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigVariant {
    /// The base configuration unchanged.
    Base,
    /// Ablation A: lazy vs eager commit processing (§5.3).
    Commit {
        /// Lazy commit processing when true.
        lazy: bool,
    },
    /// Ablation B: speculative load acknowledgments on/off (§5.1).
    Sla {
        /// SLAs enabled when true.
        enabled: bool,
    },
    /// Ablation C: VID field width in bits (§4.6).
    VidBits(u32),
    /// Ablation D: LLC victim policy under constrained caches (§5.4).
    Victim(VictimPolicy),
    /// §8 extension: bounded vs unbounded speculative sets.
    Bounded {
        /// Memory-side overflow table enabled when true.
        unbounded: bool,
    },
    /// §8 scaling study: constrained fabric without core-count changes
    /// (the sequential baseline of the sweep).
    ScalingBase,
    /// §8 scaling study: constrained fabric at a core count, snoopy bus or
    /// banked directory.
    ScalingFabric {
        /// Number of cores.
        cores: usize,
        /// Banked directory when true, snoopy bus when false.
        directory: bool,
    },
    /// §2.1 latency sensitivity: hardware queue / cross-core latency.
    QueueLatency(u64),
}

impl ConfigVariant {
    /// Materializes the variant against the pool's base configuration.
    #[must_use]
    pub fn apply(&self, base: &MachineConfig) -> MachineConfig {
        let mut c = base.clone();
        match *self {
            ConfigVariant::Base => {}
            ConfigVariant::Commit { lazy } => c.hmtx.lazy_commit = lazy,
            ConfigVariant::Sla { enabled } => c.hmtx.sla_enabled = enabled,
            ConfigVariant::VidBits(bits) => {
                c.hmtx.vid_bits = bits;
                c.pipeline_window = c.pipeline_window.min((1 << bits) - 1);
            }
            ConfigVariant::Victim(policy) => {
                // Constrain the hierarchy so overflow decisions matter.
                c.l1 = CacheConfig {
                    size_bytes: 8 * 1024,
                    ways: 4,
                    latency: 2,
                };
                c.l2 = CacheConfig {
                    size_bytes: 64 * 1024,
                    ways: 8,
                    latency: 40,
                };
                c.pipeline_window = 4;
                c.hmtx.victim_policy = policy;
            }
            ConfigVariant::Bounded { unbounded } => {
                c.l1 = CacheConfig {
                    size_bytes: 8 * 1024,
                    ways: 4,
                    latency: 2,
                };
                c.l2 = CacheConfig {
                    size_bytes: 32 * 1024,
                    ways: 8,
                    latency: 40,
                };
                c.pipeline_window = 6;
                c.unbounded_sets = unbounded;
            }
            ConfigVariant::ScalingBase => scaling_stress(&mut c),
            ConfigVariant::ScalingFabric { cores, directory } => {
                scaling_stress(&mut c);
                c.num_cores = cores;
                c.interconnect = if directory {
                    Interconnect::Directory {
                        banks: 8,
                        hop_latency: 6,
                    }
                } else {
                    Interconnect::SnoopyBus
                };
            }
            ConfigVariant::QueueLatency(latency) => c.queue_latency = latency,
        }
        c
    }

    fn label(&self) -> String {
        match *self {
            ConfigVariant::Base => "base".into(),
            ConfigVariant::Commit { lazy } => {
                format!("{}-commit", if lazy { "lazy" } else { "eager" })
            }
            ConfigVariant::Sla { enabled } => {
                format!("sla-{}", if enabled { "on" } else { "off" })
            }
            ConfigVariant::VidBits(bits) => format!("vid{bits}"),
            ConfigVariant::Victim(VictimPolicy::PreferSafeOverflow) => "victim-safe".into(),
            ConfigVariant::Victim(VictimPolicy::PlainLru) => "victim-lru".into(),
            ConfigVariant::Bounded { unbounded } => {
                format!("{}bounded", if unbounded { "un" } else { "" })
            }
            ConfigVariant::ScalingBase => "scaling-base".into(),
            ConfigVariant::ScalingFabric { cores, directory } => {
                format!("{}x{}", cores, if directory { "directory" } else { "bus" })
            }
            ConfigVariant::QueueLatency(latency) => format!("qlat{latency}"),
        }
    }
}

/// The §8 scaling study's stressed fabric: line-transfer-granularity bus
/// occupancy and small per-core L1s, so miss traffic grows with core count.
fn scaling_stress(c: &mut MachineConfig) {
    c.bus_occupancy = 16;
    c.l1 = CacheConfig {
        size_bytes: 8 * 1024,
        ways: 4,
        latency: 2,
    };
    c.l2 = CacheConfig {
        size_bytes: 1024 * 1024,
        ways: 32,
        latency: 40,
    };
    c.pipeline_window = 32;
}

/// One pure simulation: benchmark × paradigm × configuration × scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimJob {
    /// What simulates.
    pub benchmark: Benchmark,
    /// Under which execution model.
    pub paradigm: JobParadigm,
    /// With which configuration variant.
    pub config: ConfigVariant,
    /// At which workload scale.
    pub scale: Scale,
}

impl SimJob {
    /// Shorthand constructor.
    #[must_use]
    pub fn new(
        benchmark: Benchmark,
        paradigm: JobParadigm,
        config: ConfigVariant,
        scale: Scale,
    ) -> Self {
        SimJob {
            benchmark,
            paradigm,
            config,
            scale,
        }
    }

    /// A compact human-readable identifier (progress lines, JSON reports).
    #[must_use]
    pub fn label(&self) -> String {
        let bench = match self.benchmark {
            Benchmark::Suite(i) => suite(self.scale)
                .get(i)
                .map_or_else(|| format!("suite[{i}]"), |w| w.meta().name.to_string()),
            Benchmark::SlaStress => "sla-stress".into(),
            Benchmark::ScalingLoop => "scaling-loop".into(),
            Benchmark::Fig1Loop => "fig1-loop".into(),
        };
        let paradigm = match self.paradigm {
            JobParadigm::Sequential => "seq".into(),
            JobParadigm::Paper => "hmtx".into(),
            JobParadigm::Smtx(RwSetMode::Minimal) => "smtx-min".into(),
            JobParadigm::Smtx(RwSetMode::Substantial) => "smtx-sub".into(),
            JobParadigm::Smtx(RwSetMode::Maximal) => "smtx-max".into(),
            JobParadigm::Hytm => "hytm".into(),
            JobParadigm::Explicit(p) => p.name().to_lowercase(),
        };
        let scale = match self.scale {
            Scale::Quick => "quick",
            Scale::Standard => "standard",
            Scale::Stress => "stress",
        };
        format!("{bench}:{paradigm}:{}:{scale}", self.config.label())
    }

    /// Runs the job against `base` (a fresh machine every time; no state is
    /// shared between jobs).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the simulation.
    pub fn run(&self, base: &MachineConfig) -> Result<JobResult, SimError> {
        let cfg = self.config.apply(base);
        let started = Instant::now();
        let (machine, cycles, recoveries, report) = match self.benchmark {
            Benchmark::Suite(i) => {
                let workloads = suite(self.scale);
                let w = workloads
                    .get(i)
                    .ok_or_else(|| SimError::BadProgram(format!("no suite workload {i}")))?;
                match self.paradigm {
                    JobParadigm::Smtx(mode) => {
                        let (m, r) = run_smtx(w.as_ref(), &cfg, mode, BUDGET)?;
                        (m, r.cycles, 0, None)
                    }
                    JobParadigm::Hytm => {
                        let (m, r) = run_hytm(w.meta().paradigm, w.as_ref(), &cfg, BUDGET)?;
                        (m, r.cycles, r.recoveries, Some(r))
                    }
                    _ => {
                        let paradigm = match self.paradigm {
                            JobParadigm::Sequential => Paradigm::Sequential,
                            JobParadigm::Paper => w.meta().paradigm,
                            JobParadigm::Explicit(p) => p,
                            JobParadigm::Smtx(_) | JobParadigm::Hytm => {
                                unreachable!("handled above")
                            }
                        };
                        let (m, r) = run_loop(paradigm, w.as_ref(), &cfg, BUDGET)?;
                        (m, r.cycles, r.recoveries, Some(r))
                    }
                }
            }
            Benchmark::SlaStress => {
                let body = crate::SlaStress {
                    iters: if self.scale == Scale::Quick { 24 } else { 96 },
                };
                let (m, r) = run_loop(self.explicit_paradigm()?, &body, &cfg, BUDGET)?;
                (m, r.cycles, r.recoveries, Some(r))
            }
            Benchmark::ScalingLoop => {
                let body = crate::ScalingLoop {
                    iters: if self.scale == Scale::Quick { 96 } else { 512 },
                };
                (match self.paradigm {
                    JobParadigm::Sequential => run_loop(Paradigm::Sequential, &body, &cfg, BUDGET),
                    _ => run_loop(self.explicit_paradigm()?, &body, &cfg, BUDGET),
                })
                .map(|(m, r)| (m, r.cycles, r.recoveries, Some(r)))?
            }
            Benchmark::Fig1Loop => {
                let body = crate::fig1::Fig1Loop { iters: 5 };
                let (m, r) = run_loop(self.explicit_paradigm()?, &body, &cfg, BUDGET)?;
                (m, r.cycles, r.recoveries, Some(r))
            }
        };
        Ok(JobResult {
            machine,
            cycles,
            recoveries,
            report,
            wall_seconds: started.elapsed().as_secs_f64(),
        })
    }

    fn explicit_paradigm(&self) -> Result<Paradigm, SimError> {
        match self.paradigm {
            JobParadigm::Explicit(p) => Ok(p),
            JobParadigm::Sequential => Ok(Paradigm::Sequential),
            _ => Err(SimError::BadProgram(format!(
                "synthetic benchmark {:?} needs an explicit paradigm",
                self.benchmark
            ))),
        }
    }
}

/// Everything a figure/table needs from one finished simulation.
#[derive(Debug)]
pub struct JobResult {
    /// The finished machine (memory contents, statistics, marker log).
    pub machine: Machine,
    /// Hot-loop completion time in cycles.
    pub cycles: u64,
    /// Misspeculation recoveries the runtime performed (0 for SMTX runs,
    /// which validate in software instead).
    pub recoveries: u64,
    /// The full runtime report (absent for SMTX runs).
    pub report: Option<RunReport>,
    /// Host wall-clock the simulation took, in seconds.
    pub wall_seconds: f64,
}

// --------------------------------------------------------------------- pool

/// One entry of [`SimPool::job_log`].
#[derive(Debug, Clone)]
pub struct JobLogEntry {
    /// The job's [`SimJob::label`].
    pub label: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Misspeculation recoveries.
    pub recoveries: u64,
    /// Host wall-clock seconds for this job.
    pub wall_seconds: f64,
}

/// A memoizing pool of simulation results over one base configuration.
pub struct SimPool {
    scale: Scale,
    base_cfg: MachineConfig,
    cache: Mutex<HashMap<SimJob, Arc<JobResult>>>,
    reporter: Reporter,
    prefetched: AtomicBool,
    demand_misses: AtomicUsize,
}

impl SimPool {
    /// A pool running jobs at `scale` against `base_cfg`.
    #[must_use]
    pub fn new(scale: Scale, base_cfg: MachineConfig) -> Self {
        SimPool {
            scale,
            base_cfg,
            cache: Mutex::new(HashMap::new()),
            reporter: Reporter::disabled(),
            prefetched: AtomicBool::new(false),
            demand_misses: AtomicUsize::new(0),
        }
    }

    /// Enables the line-oriented progress stream on stderr.
    #[must_use]
    pub fn with_progress(mut self) -> Self {
        self.reporter = Reporter::stderr();
        self
    }

    /// The workload scale jobs created through this pool run at.
    #[must_use]
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The base configuration variants are applied to.
    #[must_use]
    pub fn base_cfg(&self) -> &MachineConfig {
        &self.base_cfg
    }

    /// A job bound to this pool's scale.
    #[must_use]
    pub fn job(
        &self,
        benchmark: Benchmark,
        paradigm: JobParadigm,
        config: ConfigVariant,
    ) -> SimJob {
        SimJob::new(benchmark, paradigm, config, self.scale)
    }

    /// Returns the job's result, simulating on demand if it was never
    /// prefetched.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from an on-demand simulation.
    pub fn get(&self, job: &SimJob) -> Result<Arc<JobResult>, SimError> {
        if let Some(hit) = self.cache.lock().unwrap().get(job) {
            return Ok(Arc::clone(hit));
        }
        if self.prefetched.load(Ordering::Relaxed) {
            // Planning drift: the section ran a job `plan()` didn't list.
            self.demand_misses.fetch_add(1, Ordering::Relaxed);
        }
        let result = Arc::new(job.run(&self.base_cfg)?);
        self.reporter.line(&format!(
            "demand {} wall={:.2}s cycles={}",
            job.label(),
            result.wall_seconds,
            result.cycles
        ));
        let mut cache = self.cache.lock().unwrap();
        Ok(Arc::clone(cache.entry(*job).or_insert(result)))
    }

    /// Jobs [`SimPool::get`] had to simulate on demand *after* a prefetch —
    /// zero when the plan covered every lookup.
    #[must_use]
    pub fn demand_misses(&self) -> usize {
        self.demand_misses.load(Ordering::Relaxed)
    }

    /// Runs `jobs` across `threads` host threads and caches every result.
    ///
    /// Duplicate jobs (and jobs already cached) simulate once. Workers pull
    /// from per-thread queues and steal from the back of their siblings'
    /// queues when their own runs dry, so one slow simulation never idles
    /// the other workers. Results land in a job-keyed cache, which makes
    /// completion order irrelevant: any later lookup sequence — and hence
    /// the rendered output — is identical to a serial run.
    ///
    /// # Errors
    ///
    /// If any job fails, returns the failing job with the lowest index in
    /// `jobs` (deterministic whatever the interleaving).
    pub fn prefetch(&self, jobs: &[SimJob], threads: usize) -> Result<(), SimError> {
        let pending: Vec<(usize, SimJob)> = {
            let cache = self.cache.lock().unwrap();
            let mut seen = HashMap::new();
            jobs.iter()
                .enumerate()
                .filter(|(_, j)| !cache.contains_key(*j) && seen.insert(**j, ()).is_none())
                .map(|(i, j)| (i, *j))
                .collect()
        };
        let threads = threads.max(1).min(pending.len().max(1));
        let total = pending.len();
        let queues: Vec<Mutex<VecDeque<(usize, SimJob)>>> =
            (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
        for (k, job) in pending.into_iter().enumerate() {
            queues[k % threads].lock().unwrap().push_back(job);
        }
        let errors: Mutex<Vec<(usize, SimError)>> = Mutex::new(Vec::new());
        let done = AtomicUsize::new(0);
        let running = AtomicUsize::new(0);

        std::thread::scope(|s| {
            for me in 0..threads {
                let queues = &queues;
                let errors = &errors;
                let done = &done;
                let running = &running;
                s.spawn(move || loop {
                    // Own queue first (front), then steal from the back of
                    // the sibling with the most work left.
                    let next = queues[me].lock().unwrap().pop_front().or_else(|| {
                        let victim = (0..threads)
                            .filter(|w| *w != me)
                            .max_by_key(|w| queues[*w].lock().unwrap().len())?;
                        let stolen = queues[victim].lock().unwrap().pop_back();
                        if stolen.is_some() {
                            self.reporter
                                .line(&format!("steal worker{me}<-worker{victim}"));
                        }
                        stolen
                    });
                    let Some((index, job)) = next else { break };
                    let label = job.label();
                    running.fetch_add(1, Ordering::Relaxed);
                    self.reporter.line(&format!(
                        "start {:>3}/{total} {label}",
                        done.load(Ordering::Relaxed) + 1
                    ));
                    match job.run(&self.base_cfg) {
                        Ok(result) => {
                            let mcyc_s = result.cycles as f64 / 1e6 / result.wall_seconds.max(1e-9);
                            let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                            running.fetch_sub(1, Ordering::Relaxed);
                            self.reporter.line(&format!(
                                "done  {finished:>3}/{total} {label} wall={:.2}s cycles={} \
                                 ({mcyc_s:.1} Mcyc/s) running={} queued={}",
                                result.wall_seconds,
                                result.cycles,
                                running.load(Ordering::Relaxed),
                                total
                                    .saturating_sub(finished)
                                    .saturating_sub(running.load(Ordering::Relaxed)),
                            ));
                            self.cache.lock().unwrap().insert(job, Arc::new(result));
                        }
                        Err(e) => {
                            done.fetch_add(1, Ordering::Relaxed);
                            running.fetch_sub(1, Ordering::Relaxed);
                            self.reporter.line(&format!("fail  {label}: {e:?}"));
                            errors.lock().unwrap().push((index, e));
                        }
                    }
                });
            }
        });

        self.prefetched.store(true, Ordering::Relaxed);
        let mut errors = errors.into_inner().unwrap();
        errors.sort_by_key(|(i, _)| *i);
        match errors.into_iter().next() {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    }

    /// Every cached result's label, cycles, and wall-clock, sorted by label
    /// (a deterministic order for reports).
    #[must_use]
    pub fn job_log(&self) -> Vec<JobLogEntry> {
        let cache = self.cache.lock().unwrap();
        let mut log: Vec<JobLogEntry> = cache
            .iter()
            .map(|(job, r)| JobLogEntry {
                label: job.label(),
                cycles: r.cycles,
                recoveries: r.recoveries,
                wall_seconds: r.wall_seconds,
            })
            .collect();
        log.sort_by(|a, b| a.label.cmp(&b.label));
        log
    }
}

// `std::thread::scope` requires this anyway, but make the guarantee
// explicit: pools (and the results inside them) may be shared across the
// worker threads of a prefetch.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimPool>();
    assert_send_sync::<SimJob>();
    assert_send_sync::<JobResult>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_pool() -> SimPool {
        SimPool::new(Scale::Quick, MachineConfig::test_default())
    }

    #[test]
    fn identical_jobs_simulate_once() {
        let pool = quick_pool();
        let job = pool.job(
            Benchmark::Suite(7),
            JobParadigm::Sequential,
            ConfigVariant::Base,
        );
        let a = pool.get(&job).unwrap();
        let b = pool.get(&job).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
    }

    #[test]
    fn prefetch_matches_serial_results() {
        let jobs: Vec<SimJob> = [0usize, 2, 7]
            .into_iter()
            .flat_map(|i| {
                [
                    SimJob::new(
                        Benchmark::Suite(i),
                        JobParadigm::Sequential,
                        ConfigVariant::Base,
                        Scale::Quick,
                    ),
                    SimJob::new(
                        Benchmark::Suite(i),
                        JobParadigm::Paper,
                        ConfigVariant::Base,
                        Scale::Quick,
                    ),
                ]
            })
            .collect();
        let parallel = quick_pool();
        parallel.prefetch(&jobs, 4).unwrap();
        let serial = quick_pool();
        for job in &jobs {
            let p = parallel.get(job).unwrap();
            let s = serial.get(job).unwrap();
            assert_eq!(p.cycles, s.cycles, "{}", job.label());
            assert_eq!(p.recoveries, s.recoveries, "{}", job.label());
        }
        assert_eq!(parallel.demand_misses(), 0);
        assert_eq!(parallel.job_log().len(), jobs.len());
    }

    #[test]
    fn prefetch_reports_the_lowest_index_error() {
        let pool = quick_pool();
        let bad = |i: usize| {
            SimJob::new(
                Benchmark::Suite(100 + i),
                JobParadigm::Sequential,
                ConfigVariant::Base,
                Scale::Quick,
            )
        };
        let good = SimJob::new(
            Benchmark::Suite(7),
            JobParadigm::Sequential,
            ConfigVariant::Base,
            Scale::Quick,
        );
        let err = pool.prefetch(&[bad(1), good, bad(0)], 3).unwrap_err();
        match err {
            SimError::BadProgram(msg) => assert!(msg.contains("101"), "{msg}"),
            other => panic!("unexpected error {other:?}"),
        }
        // The good job still completed and is cached.
        assert!(pool.get(&good).is_ok());
    }

    #[test]
    fn config_variants_apply_expected_knobs() {
        let base = MachineConfig::test_default();
        assert!(
            !ConfigVariant::Commit { lazy: false }
                .apply(&base)
                .hmtx
                .lazy_commit
        );
        assert_eq!(ConfigVariant::VidBits(3).apply(&base).pipeline_window, 7);
        assert!(
            ConfigVariant::Bounded { unbounded: true }
                .apply(&base)
                .unbounded_sets
        );
        let fabric = ConfigVariant::ScalingFabric {
            cores: 16,
            directory: true,
        }
        .apply(&base);
        assert_eq!(fabric.num_cores, 16);
        assert!(matches!(
            fabric.interconnect,
            Interconnect::Directory { banks: 8, .. }
        ));
    }

    #[test]
    fn labels_identify_jobs_uniquely() {
        // Sections may share jobs (that is the point of the pool), but two
        // *different* jobs must never render the same label.
        let mut by_label: HashMap<String, SimJob> = HashMap::new();
        for job in crate::plan(&crate::Section::ALL, Scale::Quick) {
            if let Some(prev) = by_label.insert(job.label(), job) {
                assert_eq!(prev, job, "label collision: {}", job.label());
            }
        }
        assert!(by_label.len() > 20, "plan unexpectedly small");
    }
}
