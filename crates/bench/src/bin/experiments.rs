//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! experiments [fig1|fig2|fig8|fig9|table1|table2|table3|ablations|extensions|all]
//!             [--quick] [--jobs N] [--json PATH] [--progress]
//! ```
//!
//! `--quick` uses the small test-scale workloads and caches (for smoke
//! runs); the default is the standard benchmark scale on the paper's
//! Table 2 configuration.
//!
//! `--jobs N` runs the requested sections' simulations on `N` host threads
//! (a work-stealing queue over pure simulation jobs). The printed output is
//! byte-identical for every `N`: sections render serially, in order, from
//! the pool's memoized results. `--json PATH` additionally writes a
//! machine-readable report (every row plus per-job wall-clock); `--progress`
//! streams per-job status lines to stderr.
//!
//! ```text
//! experiments job SPEC.json
//! ```
//!
//! runs a single wire-format job spec (the same `hmtx_types::JobSpec` the
//! `hmtx-serve` server accepts; pass `-` to read it from stdin) through
//! `hmtx_bench::run_job` and prints the deterministic report to stdout —
//! byte-identical to what the server would cache and serve for that spec.

use hmtx_bench::runner::SimPool;
use hmtx_bench::{
    ablation_commit, ablation_sla, ablation_unbounded, ablation_victim, ablation_vid_width,
    experiment_config, extension_scaling, fig1::fig1, fig2, fig8, fig9, latency_sensitivity, plan,
    render_ablation, render_fig2, render_fig8, render_fig9, render_latency, render_scaling,
    render_table1, render_table2, render_table3, report::build_report, table1, table3, Section,
};
use hmtx_types::{FaultConfig, JobSpec, Json, MachineConfig};
use hmtx_workloads::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: experiments [fig1|fig2|fig8|fig9|table1|table2|table3|ablations|extensions|all] \
         [--quick] [--jobs N] [--json PATH] [--progress] [--faults SEED] [--fault-rate PPM]\n\
         \x20      experiments job SPEC.json   (run one wire-format job spec; `-` = stdin)"
    );
    std::process::exit(2);
}

/// `experiments job SPEC.json` — one spec through the shared
/// `hmtx_bench::run_job` path, report on stdout.
fn run_single_job(args: &[String]) -> ! {
    let [path] = args else { usage() };
    let text = if path == "-" {
        use std::io::Read;
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("experiments: reading stdin: {e}");
            std::process::exit(1);
        }
        buf
    } else {
        match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("experiments: reading {path}: {e}");
                std::process::exit(1);
            }
        }
    };
    let spec = Json::parse(&text)
        .map_err(|e| e.to_string())
        .and_then(|v| JobSpec::from_json(&v).map_err(|e| e.to_string()))
        .unwrap_or_else(|e| {
            eprintln!("experiments: bad job spec: {e}");
            std::process::exit(1);
        });
    match hmtx_bench::run_job_report(&spec) {
        Ok(report) => {
            println!("{}", report.compact());
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("experiments: job failed: {e:?}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("job") {
        run_single_job(&args[1..]);
    }
    let mut quick = false;
    let mut progress = false;
    let mut jobs: usize = 1;
    let mut json_path: Option<String> = None;
    let mut what: Option<String> = None;
    let mut fault_seed: Option<u64> = None;
    let mut fault_rate_ppm: u32 = 200;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--progress" => progress = true,
            "--jobs" => {
                let n = it.next().unwrap_or_else(|| usage());
                jobs = n.parse().unwrap_or_else(|_| usage());
                if jobs == 0 {
                    usage();
                }
            }
            "--faults" => {
                let n = it.next().unwrap_or_else(|| usage());
                fault_seed = Some(n.parse().unwrap_or_else(|_| usage()));
            }
            "--fault-rate" => {
                let n = it.next().unwrap_or_else(|| usage());
                fault_rate_ppm = n.parse().unwrap_or_else(|_| usage());
            }
            "--json" => json_path = Some(it.next().unwrap_or_else(|| usage())),
            s if s.starts_with("--") => usage(),
            _ => {
                if what.replace(a).is_some() {
                    usage();
                }
            }
        }
    }
    let what = what.unwrap_or_else(|| "all".to_string());

    let sections: Vec<Section> = if what == "all" {
        Section::ALL.to_vec()
    } else {
        match Section::from_name(&what) {
            Some(s) => vec![s],
            None => usage(),
        }
    };

    let scale = if quick { Scale::Quick } else { Scale::Standard };
    let mut cfg: MachineConfig = if quick {
        MachineConfig::test_default()
    } else {
        experiment_config()
    };
    if let Some(seed) = fault_seed {
        cfg.faults = Some(FaultConfig::chaos(seed, fault_rate_ppm));
        eprintln!(
            "experiments: chaos mode on (seed {seed}, rate {fault_rate_ppm} ppm); \
             results measure degraded-mode performance, not the paper's numbers"
        );
    }
    let mut pool = SimPool::new(scale, cfg.clone());
    if progress {
        pool = pool.with_progress();
    }

    // Simulate everything the sections need up front, across host threads.
    // Rendering below then finds every result in the cache and stays
    // byte-identical regardless of --jobs.
    if let Err(e) = pool.prefetch(&plan(&sections, scale), jobs) {
        eprintln!("experiments: simulation failed: {e:?}");
        std::process::exit(1);
    }

    let run = |name: &str| sections.iter().any(|s| s.name() == name);

    if run("table2") {
        println!("{}", render_table2(&cfg));
    }
    if run("fig1") {
        println!("{}", fig1(&pool).expect("fig1"));
    }
    if run("fig2") {
        println!("{}", render_fig2(&fig2(&pool).expect("fig2")));
    }
    if run("fig8") {
        let (rows, summary) = fig8(&pool).expect("fig8");
        println!("{}", render_fig8(&rows, &summary));
    }
    if run("fig9") {
        println!("{}", render_fig9(&fig9(&pool).expect("fig9")));
    }
    if run("table1") {
        println!("{}", render_table1(&table1(&pool).expect("table1")));
    }
    if run("table3") {
        println!("{}", render_table3(&table3(&pool).expect("table3")));
    }
    if run("ablations") {
        println!(
            "{}",
            render_ablation(
                "Ablation A (5.3): lazy vs eager commit processing",
                &ablation_commit(&pool).expect("ablation A"),
            )
        );
        println!(
            "{}",
            render_ablation(
                "Ablation B (5.1): speculative load acknowledgments on/off",
                &ablation_sla(&pool).expect("ablation B"),
            )
        );
        println!(
            "{}",
            render_ablation(
                "Ablation C (4.6): VID width sweep",
                &ablation_vid_width(&pool).expect("ablation C"),
            )
        );
        println!(
            "{}",
            render_ablation(
                "Ablation D (5.4): LLC victim policy under cache pressure",
                &ablation_victim(&pool).expect("ablation D"),
            )
        );
    }
    if run("extensions") {
        println!(
            "{}",
            render_ablation(
                "Extension (8): unbounded read/write sets via memory-side overflow",
                &ablation_unbounded(&pool).expect("extension unbounded"),
            )
        );
        println!(
            "{}",
            render_scaling(&extension_scaling(&pool).expect("scaling"))
        );
        println!(
            "{}",
            render_latency(&latency_sensitivity(&pool).expect("latency sweep"))
        );
    }

    if let Some(path) = json_path {
        let report = build_report(&pool, &sections).expect("json report");
        if let Err(e) = std::fs::write(&path, report.pretty()) {
            eprintln!("experiments: writing {path}: {e}");
            std::process::exit(1);
        }
    }
}
