//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! experiments [fig1|fig2|fig8|fig9|table1|table2|table3|ablations|all] [--quick]
//! ```
//!
//! `--quick` uses the small test-scale workloads and caches (for smoke
//! runs); the default is the standard benchmark scale on the paper's
//! Table 2 configuration.

use hmtx_bench::fig1::fig1;
use hmtx_bench::{
    ablation_commit, ablation_sla, ablation_unbounded, ablation_victim, ablation_vid_width,
    experiment_config, extension_scaling, fig2, fig8, fig9, latency_sensitivity, render_ablation,
    render_fig2, render_fig8, render_fig9, render_latency, render_scaling, render_table1,
    render_table2, render_table3, table1, table3,
};
use hmtx_types::MachineConfig;
use hmtx_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or("all".to_string());
    let scale = if quick { Scale::Quick } else { Scale::Standard };
    let cfg: MachineConfig = if quick {
        MachineConfig::test_default()
    } else {
        experiment_config()
    };

    let run = |name: &str| what == "all" || what == name;

    if run("table2") {
        println!("{}", render_table2(&cfg));
    }
    if run("fig1") {
        println!("{}", fig1(&cfg).expect("fig1"));
    }
    if run("fig2") {
        println!("{}", render_fig2(&fig2(scale, &cfg).expect("fig2")));
    }
    if run("fig8") {
        let (rows, summary) = fig8(scale, &cfg).expect("fig8");
        println!("{}", render_fig8(&rows, &summary));
    }
    if run("fig9") {
        println!("{}", render_fig9(&fig9(scale, &cfg).expect("fig9")));
    }
    if run("table1") {
        println!("{}", render_table1(&table1(scale, &cfg).expect("table1")));
    }
    if run("table3") {
        println!("{}", render_table3(&table3(scale, &cfg).expect("table3")));
    }
    if run("ablations") {
        println!(
            "{}",
            render_ablation(
                "Ablation A (5.3): lazy vs eager commit processing",
                &ablation_commit(scale, &cfg).expect("ablation A"),
            )
        );
        println!(
            "{}",
            render_ablation(
                "Ablation B (5.1): speculative load acknowledgments on/off",
                &ablation_sla(scale, &cfg).expect("ablation B"),
            )
        );
        println!(
            "{}",
            render_ablation(
                "Ablation C (4.6): VID width sweep",
                &ablation_vid_width(scale, &cfg).expect("ablation C"),
            )
        );
        println!(
            "{}",
            render_ablation(
                "Ablation D (5.4): LLC victim policy under cache pressure",
                &ablation_victim(scale, &cfg).expect("ablation D"),
            )
        );
    }
    if run("extensions") || what == "all" {
        println!(
            "{}",
            render_ablation(
                "Extension (8): unbounded read/write sets via memory-side overflow",
                &ablation_unbounded(scale, &cfg).expect("extension unbounded"),
            )
        );
        println!(
            "{}",
            render_scaling(&extension_scaling(scale, &cfg).expect("scaling"))
        );
        println!(
            "{}",
            render_latency(&latency_sensitivity(scale, &cfg).expect("latency sweep"))
        );
    }
}
