//! Committed-simulated-cycles/sec microbench over the standard 80-job sweep.
//!
//! Usage:
//!
//! ```text
//! cyclebench [--reps N] [--json PATH] [--baseline CPS] [--gate PATH] [--threshold R]
//! ```
//!
//! Runs the standard 80-job sweep ([`hmtx_bench::standard_sweep`], the same
//! job list `hmtx-load` submits) serially, sums the committed simulated
//! cycles of every job, and reports `cycles / wall_seconds` for the best of
//! `--reps` repetitions (default 3; best-of filters scheduler noise).
//!
//! `--json PATH` writes the measurement (plus the optional `--baseline`
//! cycles/sec for speedup bookkeeping) as a `BENCH_pr6.json`-style report.
//!
//! `--gate PATH` is the tier-1 regression mode: re-measure, read the
//! baseline report at PATH, and exit nonzero if the fresh cycles/sec falls
//! below `--threshold` (default 0.8, i.e. a >20% regression) times the
//! recorded value. The simulated cycle *count* must also match the recorded
//! total exactly — the sweep is deterministic, so any drift means the
//! simulation changed, not just the machine speed.

use std::time::Instant;

use hmtx_bench::{run_job, standard_sweep};
use hmtx_types::{Json, WireScale};

fn usage() -> ! {
    eprintln!(
        "usage: cyclebench [--reps N] [--json PATH] [--baseline CPS] \
         [--gate PATH] [--threshold RATIO]"
    );
    std::process::exit(2);
}

struct Measurement {
    jobs: usize,
    total_cycles: u64,
    best_wall_seconds: f64,
    reps: usize,
}

impl Measurement {
    fn cycles_per_sec(&self) -> f64 {
        self.total_cycles as f64 / self.best_wall_seconds
    }
}

/// Runs the sweep `reps` times; every rep must commit the same total cycle
/// count (the sweep is deterministic), and the fastest rep is the score.
fn measure(reps: usize) -> Measurement {
    let sweep = standard_sweep(WireScale::Quick);
    let mut total_cycles = 0u64;
    let mut best = f64::INFINITY;
    for rep in 0..reps {
        let started = Instant::now();
        let mut cycles = 0u64;
        for spec in &sweep {
            let result = run_job(spec).unwrap_or_else(|e| {
                eprintln!("cyclebench: job {} failed: {e:?}", spec.key());
                std::process::exit(1);
            });
            cycles += result.cycles;
        }
        let wall = started.elapsed().as_secs_f64();
        if rep == 0 {
            total_cycles = cycles;
        } else if cycles != total_cycles {
            eprintln!(
                "cyclebench: nondeterministic sweep: rep {rep} committed {cycles} \
                 cycles, rep 0 committed {total_cycles}"
            );
            std::process::exit(1);
        }
        best = best.min(wall);
        eprintln!(
            "cyclebench: rep {rep}: {cycles} cycles in {wall:.3}s ({:.0} cycles/s)",
            cycles as f64 / wall
        );
    }
    Measurement {
        jobs: sweep.len(),
        total_cycles,
        best_wall_seconds: best,
        reps,
    }
}

fn render(m: &Measurement, baseline_cps: Option<f64>) -> Json {
    let mut pairs = vec![
        ("schema", Json::Str("hmtx-cyclebench/1".into())),
        ("sweep", Json::Str("standard-80-job".into())),
        ("scale", Json::Str("quick".into())),
        ("jobs", Json::Uint(m.jobs as u64)),
        ("reps", Json::Uint(m.reps as u64)),
        ("total_committed_cycles", Json::Uint(m.total_cycles)),
        ("best_wall_seconds", Json::Num(m.best_wall_seconds)),
        ("cycles_per_sec", Json::Num(m.cycles_per_sec())),
    ];
    if let Some(base) = baseline_cps {
        pairs.push(("baseline_cycles_per_sec", Json::Num(base)));
        pairs.push(("speedup_over_baseline", Json::Num(m.cycles_per_sec() / base)));
    }
    Json::obj(pairs)
}

fn gate(path: &str, threshold: f64, fresh: &Measurement) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cyclebench: reading {path}: {e}");
        std::process::exit(1);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("cyclebench: parsing {path}: {e}");
        std::process::exit(1);
    });
    let recorded_cycles = doc
        .get("total_committed_cycles")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| {
            eprintln!("cyclebench: {path} has no total_committed_cycles");
            std::process::exit(1);
        });
    let recorded_cps = doc
        .get("cycles_per_sec")
        .and_then(Json::as_f64)
        .unwrap_or_else(|| {
            eprintln!("cyclebench: {path} has no cycles_per_sec");
            std::process::exit(1);
        });
    if fresh.total_cycles != recorded_cycles {
        eprintln!(
            "cyclebench: GATE FAIL: sweep committed {} cycles but {path} recorded {} \
             — the simulation itself changed; regenerate the baseline in this PR",
            fresh.total_cycles, recorded_cycles
        );
        std::process::exit(1);
    }
    let fresh_cps = fresh.cycles_per_sec();
    let floor = recorded_cps * threshold;
    if fresh_cps < floor {
        eprintln!(
            "cyclebench: GATE FAIL: {fresh_cps:.0} cycles/s is below {threshold:.2}x \
             the recorded {recorded_cps:.0} cycles/s (floor {floor:.0})"
        );
        std::process::exit(1);
    }
    eprintln!(
        "cyclebench: gate ok: {fresh_cps:.0} cycles/s >= {threshold:.2}x recorded \
         {recorded_cps:.0} cycles/s"
    );
    std::process::exit(0);
}

fn main() {
    let mut reps = 3usize;
    let mut json_path: Option<String> = None;
    let mut baseline: Option<f64> = None;
    let mut gate_path: Option<String> = None;
    let mut threshold = 0.8f64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--reps" => reps = value().parse().unwrap_or_else(|_| usage()),
            "--json" => json_path = Some(value()),
            "--baseline" => baseline = Some(value().parse().unwrap_or_else(|_| usage())),
            "--gate" => gate_path = Some(value()),
            "--threshold" => threshold = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if reps == 0 || !(0.0..=1.0).contains(&threshold) {
        usage();
    }

    let m = measure(reps);
    println!(
        "cyclebench: {} jobs, {} committed cycles, best {:.3}s, {:.0} cycles/s",
        m.jobs,
        m.total_cycles,
        m.best_wall_seconds,
        m.cycles_per_sec()
    );

    if let Some(path) = &json_path {
        let report = render(&m, baseline);
        if let Err(e) = std::fs::write(path, report.pretty()) {
            eprintln!("cyclebench: writing {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = &gate_path {
        gate(path, threshold, &m);
    }
}
