//! Criterion benchmarks: one group per paper table/figure plus the
//! ablations. Each benchmark times the simulation that regenerates the
//! corresponding result (at quick scale, so `cargo bench` stays tractable),
//! asserting on the way that the result has the paper's shape.

use criterion::{criterion_group, criterion_main, Criterion};
use hmtx_bench::fig1::render_paradigm;
use hmtx_bench::runner::SimPool;
use hmtx_bench::{
    ablation_commit, ablation_sla, ablation_unbounded, ablation_victim, ablation_vid_width,
    extension_scaling, fig2, fig8, fig9, table1, table3,
};
use hmtx_runtime::{run_loop, Paradigm};
use hmtx_smtx::{run_smtx, RwSetMode};
use hmtx_types::MachineConfig;
use hmtx_workloads::{suite, Scale};

fn cfg() -> MachineConfig {
    MachineConfig::test_default()
}

/// A fresh (empty-cache) pool per measured iteration, so the benchmarks
/// time the simulations, not the memoization.
fn pool() -> SimPool {
    SimPool::new(Scale::Quick, cfg())
}

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_paradigms");
    g.sample_size(10);
    for paradigm in [
        Paradigm::Sequential,
        Paradigm::Doacross,
        Paradigm::Dswp,
        Paradigm::PsDswp,
    ] {
        g.bench_function(paradigm.name(), |b| {
            b.iter(|| render_paradigm(&pool(), paradigm).unwrap());
        });
    }
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_smtx_rwset");
    g.sample_size(10);
    // One representative benchmark per mode keeps the bench fast; the
    // experiments binary runs the full set.
    g.bench_function("gzip_minimal", |b| {
        b.iter(|| {
            let w = &suite(Scale::Quick)[2];
            run_smtx(w.as_ref(), &cfg(), RwSetMode::Minimal, u64::MAX)
                .unwrap()
                .1
                .cycles
        });
    });
    g.bench_function("gzip_substantial", |b| {
        b.iter(|| {
            let w = &suite(Scale::Quick)[2];
            run_smtx(w.as_ref(), &cfg(), RwSetMode::Substantial, u64::MAX)
                .unwrap()
                .1
                .cycles
        });
    });
    g.bench_function("all_rows", |b| {
        b.iter(|| fig2(&pool()).unwrap().len());
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_speedup");
    g.sample_size(10);
    for (i, name) in ["alvinn", "li", "ispell"].iter().enumerate() {
        let idx = [0usize, 1, 7][i];
        g.bench_function(format!("hmtx_{name}"), |b| {
            b.iter(|| {
                let w = &suite(Scale::Quick)[idx];
                run_loop(w.meta().paradigm, w.as_ref(), &cfg(), u64::MAX)
                    .unwrap()
                    .1
                    .cycles
            });
        });
    }
    g.bench_function("summary", |b| {
        b.iter(|| {
            let (_, s) = fig8(&pool()).unwrap();
            assert!(s.hmtx_all > 1.0, "HMTX must speed up overall");
            s.hmtx_all
        });
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_rwsets");
    g.sample_size(10);
    g.bench_function("all_rows", |b| {
        b.iter(|| {
            let rows = fig9(&pool()).unwrap();
            assert_eq!(rows.len(), 8);
            rows.len()
        });
    });
    g.finish();
}

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_stats");
    g.sample_size(10);
    g.bench_function("all_rows", |b| {
        b.iter(|| table1(&pool()).unwrap().len());
    });
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_power");
    g.sample_size(10);
    g.bench_function("all_rows", |b| {
        b.iter(|| table3(&pool()).unwrap().len());
    });
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("ablation_lazy_commit", |b| {
        b.iter(|| ablation_commit(&pool()).unwrap().len());
    });
    g.bench_function("ablation_sla", |b| {
        b.iter(|| ablation_sla(&pool()).unwrap().len());
    });
    g.bench_function("ablation_vid_width", |b| {
        b.iter(|| ablation_vid_width(&pool()).unwrap().len());
    });
    g.bench_function("ablation_victim", |b| {
        b.iter(|| ablation_victim(&pool()).unwrap().len());
    });
    g.bench_function("ablation_unbounded", |b| {
        b.iter(|| ablation_unbounded(&pool()).unwrap().len());
    });
    g.bench_function("extension_scaling", |b| {
        b.iter(|| extension_scaling(&pool()).unwrap().len());
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig1,
    bench_fig2,
    bench_fig8,
    bench_fig9,
    bench_table1,
    bench_table3,
    bench_ablations
);
criterion_main!(benches);
