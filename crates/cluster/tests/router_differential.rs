//! The cluster's byte-identity differential: the full standard sweep
//! routed through `hmtx-router` over 3 backends must produce responses
//! **byte-identical** to the same sweep against one direct `hmtx-serve`
//! node — including when a backend is killed mid-sweep (failover) and
//! restarted on the same address (rediscovery).
//!
//! This is the cluster analogue of the repo's other differential gates
//! (chaos diff, hytm-vs-hmtx, serve tiers): routing is allowed to change
//! *where* a job runs, never *what bytes* the client reads.

use std::time::Duration;

use hmtx_bench::standard_sweep;
use hmtx_cluster::{RouterConfig, RouterHandle};
use hmtx_server::{response_type, Client, ServerConfig, ServerHandle};
use hmtx_types::{JobSpec, WireScale};

fn backend_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    }
}

fn router_over(backends: &[&ServerHandle]) -> RouterHandle {
    let addrs = backends.iter().map(|h| h.addr().to_string()).collect();
    let mut cfg = RouterConfig::new(addrs);
    // Tight health interval so rediscovery happens within test timescales.
    cfg.health_interval = Duration::from_millis(50);
    RouterHandle::start("127.0.0.1:0", cfg).expect("bind router")
}

fn run_sweep(addr: &str, specs: &[JobSpec]) -> Vec<Vec<u8>> {
    let mut client = Client::connect(addr).expect("connect");
    specs
        .iter()
        .map(|s| {
            let response = client.job_with_retry(s, None, 60).expect("job");
            assert_eq!(
                response_type(&response).as_deref(),
                Some("result"),
                "sweep job must answer result"
            );
            response
        })
        .collect()
}

#[test]
fn routed_sweep_is_byte_identical_to_direct_single_node() {
    let sweep = standard_sweep(WireScale::Quick);

    // Ground truth: one direct node.
    let direct = ServerHandle::start("127.0.0.1:0", backend_config()).expect("bind direct");
    let expected = run_sweep(&direct.addr().to_string(), &sweep);
    direct.drain();
    direct.wait();

    // The same sweep through a 3-backend router.
    let backends: Vec<ServerHandle> = (0..3)
        .map(|_| ServerHandle::start("127.0.0.1:0", backend_config()).expect("bind backend"))
        .collect();
    let router = router_over(&backends.iter().collect::<Vec<_>>());
    let routed = run_sweep(&router.addr().to_string(), &sweep);

    assert_eq!(expected.len(), routed.len());
    for (i, (want, got)) in expected.iter().zip(&routed).enumerate() {
        assert_eq!(want, got, "sweep job {i}: routed bytes differ from direct");
    }

    // The work actually spread: every backend homed some partition of the
    // sweep's keyspace.
    for (i, b) in backends.iter().enumerate() {
        let mut c = Client::connect(&b.addr().to_string()).expect("connect backend");
        let stats = c.stats().expect("stats");
        assert!(
            stats.executed > 0,
            "backend {i} executed nothing — ring did not partition the sweep"
        );
    }

    // Aggregate stats through the router sum the fleet.
    let mut rc = Client::connect(&router.addr().to_string()).expect("connect router");
    let agg = rc.stats().expect("aggregate stats");
    let total_executed: u64 = backends
        .iter()
        .map(|b| {
            let mut c = Client::connect(&b.addr().to_string()).expect("connect");
            c.stats().expect("stats").executed
        })
        .sum();
    assert_eq!(agg.executed, total_executed);
    assert_eq!(agg.executed, sweep.len() as u64, "each key simulated exactly once fleet-wide");

    router.drain();
    router.wait();
    for b in backends {
        b.drain();
        b.wait();
    }
}

#[test]
fn byte_identity_survives_backend_kill_and_restart_mid_sweep() {
    let sweep = standard_sweep(WireScale::Quick);

    let direct = ServerHandle::start("127.0.0.1:0", backend_config()).expect("bind direct");
    let expected = run_sweep(&direct.addr().to_string(), &sweep);
    direct.drain();
    direct.wait();

    let mut backends: Vec<ServerHandle> = (0..3)
        .map(|_| ServerHandle::start("127.0.0.1:0", backend_config()).expect("bind backend"))
        .collect();
    let victim_addr = backends[1].addr().to_string();
    let router = router_over(&backends.iter().collect::<Vec<_>>());
    let router_addr = router.addr().to_string();

    let third = sweep.len() / 3;
    let mut routed = run_sweep(&router_addr, &sweep[..third]);

    // Kill backend 1 (graceful drain = the process going away): the router
    // must fail its keys over to the next ring node.
    let victim = backends.remove(1);
    victim.drain();
    victim.wait();
    routed.extend(run_sweep(&router_addr, &sweep[third..2 * third]));
    assert!(
        router.counters().failovers > 0,
        "a dead backend's partition must fail over along the ring"
    );

    // Restart on the same address: the health checker rediscovers it and
    // its partition routes home again.
    let revived = ServerHandle::start(&victim_addr, backend_config()).expect("rebind victim");
    std::thread::sleep(Duration::from_millis(300));
    assert!(router.backend_up(1), "restarted backend must be rediscovered");
    routed.extend(run_sweep(&router_addr, &sweep[2 * third..]));

    assert_eq!(expected.len(), routed.len());
    for (i, (want, got)) in expected.iter().zip(&routed).enumerate() {
        assert_eq!(
            want, got,
            "sweep job {i}: bytes differ across kill/restart routing"
        );
    }
    // The revived backend serves its partition again (rediscovery is
    // functional, not just a flag).
    let mut c = Client::connect(&victim_addr).expect("connect revived");
    let stats = c.stats().expect("stats");
    assert!(
        stats.job_requests > 0,
        "revived backend never saw its partition come home"
    );

    router.drain();
    router.wait();
    for b in backends {
        b.drain();
        b.wait();
    }
    revived.drain();
    revived.wait();
}
