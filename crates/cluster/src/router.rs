//! The routing core behind the `hmtx-router` binary.
//!
//! A router fronts N `hmtx-serve` backends speaking the same length-prefix
//! frame protocol the backends speak, so clients (`hmtx-load`, `hmtx-run
//! --remote`) point at it unchanged. Job frames are forwarded **verbatim**
//! to the backend that homes the spec's content-addressed key on the
//! consistent-hash [`Ring`], and the backend's response frame is spliced
//! back verbatim — the router never re-serializes either direction, so the
//! byte-identity guarantee of the caching tiers survives routing.
//!
//! Failure handling is two layered views over one static ring:
//!
//! * a **health checker** pings every backend on an interval and keeps an
//!   up/down flag per backend (down also flushes its connection pool);
//! * a **forward loop** walks the key's candidate sequence — live backends
//!   in ring order first, then known-down ones (the health view may be
//!   stale, and probing is how a restarted backend gets rediscovered
//!   between ticks). Exhausting every candidate starts a new round after a
//!   seeded, jittered exponential backoff derived from the job spec, so
//!   concurrent clients retrying the same outage de-synchronize
//!   deterministically. A `draining` response counts as down (the backend
//!   announced it is leaving); a `busy` response is forwarded to the client
//!   **without** failover — backpressure is per-home-node state, and
//!   bouncing the job elsewhere would break single-flight coalescing on
//!   its home.
//!
//! `stats` answers with the counter-wise sum of every reachable backend's
//! snapshot ([`StatsSnapshot::counter_sum`]) with the quantile fields
//! filled from the router's own forward-latency histogram, so `hmtx-load`
//! works against a router exactly as against a single node. `cluster`
//! additionally itemizes per-backend snapshots, liveness, and the router's
//! own counters.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hmtx_core::LatencyHistogram;
use hmtx_server::proto::{self, Request};
use hmtx_server::{backoff_ms, response_type, spec_jitter_seed, Client};
use hmtx_types::{Json, StatsSnapshot};

use crate::pool::Pool;
use crate::ring::{Ring, DEFAULT_REPLICAS};

/// Router configuration. `backends` is the only required field.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Backend addresses (`host:port` each).
    pub backends: Vec<String>,
    /// Virtual ring points per backend.
    pub replicas: usize,
    /// Interval between health-check sweeps.
    pub health_interval: Duration,
    /// Full candidate-sequence rounds to retry (with backoff between
    /// rounds) before a job is declared unrouteable.
    pub failover_retries: u32,
    /// Base backoff between retry rounds (grows exponentially, jittered by
    /// the job spec's seed).
    pub retry_base_ms: u64,
}

impl RouterConfig {
    /// Defaults for everything but the backend list.
    #[must_use]
    pub fn new(backends: Vec<String>) -> RouterConfig {
        RouterConfig {
            backends,
            replicas: DEFAULT_REPLICAS,
            health_interval: Duration::from_millis(150),
            failover_retries: 4,
            retry_base_ms: 20,
        }
    }
}

/// The router's own counters (distinct from the backends' serving stats).
#[derive(Default)]
struct RouterMetrics {
    forwarded: AtomicU64,
    failovers: AtomicU64,
    retry_rounds: AtomicU64,
    unrouteable: AtomicU64,
    forward: Mutex<LatencyHistogram>,
}

/// A copyable snapshot of the router counters, for tests and the
/// `cluster` frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterCounters {
    /// Job frames answered by a backend (any response type).
    pub forwarded: u64,
    /// Jobs answered by a backend other than their home node.
    pub failovers: u64,
    /// Backed-off full-candidate retry rounds taken.
    pub retry_rounds: u64,
    /// Jobs no backend could answer within the retry budget.
    pub unrouteable: u64,
}

struct Backend {
    pool: Pool,
    up: AtomicBool,
}

struct Shared {
    ring: Ring,
    backends: Vec<Backend>,
    cfg: RouterConfig,
    metrics: RouterMetrics,
    draining: AtomicBool,
    active_conns: AtomicUsize,
    addr: SocketAddr,
}

impl Shared {
    fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            // Wake the blocking accept loop so it observes the flag.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A running router: listener plus health-checker, over a fixed backend
/// set.
pub struct RouterHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    health: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// Binds `addr` and starts the accept loop and health checker.
    ///
    /// # Errors
    ///
    /// Propagates bind errors; an empty backend list is
    /// [`io::ErrorKind::InvalidInput`].
    pub fn start(addr: &str, cfg: RouterConfig) -> io::Result<RouterHandle> {
        if cfg.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "hmtx-router needs at least one backend",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let ring = Ring::new(&cfg.backends, cfg.replicas);
        let backends = cfg
            .backends
            .iter()
            .map(|a| Backend {
                pool: Pool::new(a),
                // Optimistic until the first health sweep says otherwise:
                // a cold router must not reject its first requests.
                up: AtomicBool::new(true),
            })
            .collect();
        let shared = Arc::new(Shared {
            ring,
            backends,
            cfg,
            metrics: RouterMetrics::default(),
            draining: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            addr: local,
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };
        let health = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || health_loop(&shared))
        };
        Ok(RouterHandle {
            shared,
            accept: Some(accept),
            health: Some(health),
        })
    }

    /// The bound listen address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The current health view of backend `index` (test visibility).
    #[must_use]
    pub fn backend_up(&self, index: usize) -> bool {
        self.shared.backends[index].up.load(Ordering::SeqCst)
    }

    /// A snapshot of the router's own counters.
    #[must_use]
    pub fn counters(&self) -> RouterCounters {
        counters(&self.shared.metrics)
    }

    /// Begins a graceful drain: stop accepting, answer `draining` to new
    /// jobs, finish in-flight forwards.
    pub fn drain(&self) {
        self.shared.begin_drain();
    }

    /// Blocks until the accept loop, health checker, and every connection
    /// thread have exited (connections idle out within their read
    /// timeout once draining).
    pub fn wait(mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.health.take() {
            let _ = t.join();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.shared.active_conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

fn counters(m: &RouterMetrics) -> RouterCounters {
    RouterCounters {
        forwarded: m.forwarded.load(Ordering::Relaxed),
        failovers: m.failovers.load(Ordering::Relaxed),
        retry_rounds: m.retry_rounds.load(Ordering::Relaxed),
        unrouteable: m.unrouteable.load(Ordering::Relaxed),
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.active_conns.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            serve_conn(&shared, stream);
            shared.active_conns.fetch_sub(1, Ordering::SeqCst);
        });
    }
}

fn health_loop(shared: &Arc<Shared>) {
    while !shared.draining.load(Ordering::SeqCst) {
        for backend in &shared.backends {
            let alive = probe(backend);
            let was = backend.up.swap(alive, Ordering::SeqCst);
            if was && !alive {
                backend.pool.clear();
            }
        }
        // Sleep in slices so drain is observed promptly.
        let mut left = shared.cfg.health_interval;
        while !left.is_zero() && !shared.draining.load(Ordering::SeqCst) {
            let step = left.min(Duration::from_millis(50));
            std::thread::sleep(step);
            left -= step;
        }
    }
}

/// One liveness probe: dial-or-reuse, bounded ping, return to pool.
fn probe(backend: &Backend) -> bool {
    let Ok(mut client) = backend.pool.checkout() else {
        return false;
    };
    if client.set_read_timeout(Some(Duration::from_millis(500))).is_err() {
        return false;
    }
    let ponged = client.ping().unwrap_or(false);
    if ponged && client.set_read_timeout(None).is_ok() {
        backend.pool.checkin(client);
    }
    ponged
}

fn serve_conn(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // The timeout is an idle tick, not a deadline: it lets the thread
    // notice a drain between requests. (A client stalling mid-frame longer
    // than this desynchronizes its own connection — clients here write
    // whole frames in one call.)
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    loop {
        match proto::read_frame(&mut stream) {
            Ok(None) => break,
            Ok(Some(frame)) => {
                let response = handle_frame(shared, &frame);
                if proto::write_frame(&mut stream, &response).is_err() {
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

fn handle_frame(shared: &Shared, frame: &[u8]) -> Vec<u8> {
    match Request::parse(frame) {
        Ok(Request::Job { spec, .. }) => {
            if shared.draining.load(Ordering::SeqCst) {
                return proto::draining_response();
            }
            route_job(shared, frame, &spec)
        }
        Ok(Request::Stats) => proto::stats_response(&aggregate_stats(shared)),
        Ok(Request::Cluster) => cluster_response(shared),
        Ok(Request::Ping) => proto::pong_response(),
        Ok(Request::Shutdown) => {
            shared.begin_drain();
            proto::ok_response()
        }
        Err(message) => proto::error_response(&message, &[]),
    }
}

fn route_job(shared: &Shared, frame: &[u8], spec: &hmtx_types::JobSpec) -> Vec<u8> {
    let key = spec.key();
    let candidates = shared.ring.candidates(&key);
    let home = candidates[0];
    let seed = spec_jitter_seed(spec);
    let start = Instant::now();
    for attempt in 0..=shared.cfg.failover_retries {
        if attempt > 0 {
            shared.metrics.retry_rounds.fetch_add(1, Ordering::Relaxed);
            let wait = backoff_ms(shared.cfg.retry_base_ms, attempt - 1, seed);
            std::thread::sleep(Duration::from_millis(wait));
        }
        // Live candidates in ring order, then known-down ones: stale health
        // state must not hide a recovered backend for a whole round.
        let up = |i: &&usize| shared.backends[**i].up.load(Ordering::SeqCst);
        let order: Vec<usize> = candidates
            .iter()
            .filter(up)
            .chain(candidates.iter().filter(|i| !up(i)))
            .copied()
            .collect();
        for index in order {
            let backend = &shared.backends[index];
            let Ok(response) = forward_once(backend, frame) else {
                backend.up.store(false, Ordering::SeqCst);
                backend.pool.clear();
                continue;
            };
            if response_type(&response).as_deref() == Some("draining") {
                // The backend announced its exit; treat like down and keep
                // walking the ring.
                backend.up.store(false, Ordering::SeqCst);
                backend.pool.clear();
                continue;
            }
            backend.up.store(true, Ordering::SeqCst);
            shared.metrics.forwarded.fetch_add(1, Ordering::Relaxed);
            if index != home {
                shared.metrics.failovers.fetch_add(1, Ordering::Relaxed);
            }
            let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            shared.metrics.forward.lock().unwrap().record_us(us);
            return response;
        }
    }
    shared.metrics.unrouteable.fetch_add(1, Ordering::Relaxed);
    proto::error_response(
        "no backend reachable for job",
        &[Json::obj(vec![("key", Json::Str(key))])],
    )
}

/// One forward attempt against one backend. A failure on a *pooled*
/// connection gets a single fresh-dial retry first: a stale socket left
/// over from a backend restart must not read as a dead backend.
fn forward_once(backend: &Backend, frame: &[u8]) -> io::Result<Vec<u8>> {
    let had_idle = backend.pool.idle_len() > 0;
    let first = backend
        .pool
        .checkout()
        .and_then(|mut client| {
            let response = client.request_raw(frame)?;
            backend.pool.checkin(client);
            Ok(response)
        });
    match first {
        Ok(response) => Ok(response),
        Err(_) if had_idle => {
            backend.pool.clear();
            let mut client = Client::connect(backend.pool.addr())?;
            let response = client.request_raw(frame)?;
            backend.pool.checkin(client);
            Ok(response)
        }
        Err(e) => Err(e),
    }
}

/// Counter-wise sum of every reachable backend's snapshot, quantiles from
/// the router's forward-latency histogram.
fn aggregate_stats(shared: &Shared) -> StatsSnapshot {
    let mut sum = StatsSnapshot::default();
    for backend in &shared.backends {
        if let Some(snapshot) = backend_stats(backend) {
            sum = sum.counter_sum(&snapshot);
        }
    }
    let (p50, p99, p999) = shared.metrics.forward.lock().unwrap().quantile_triple_us();
    sum.p50_service_us = p50;
    sum.p99_service_us = p99;
    sum.p999_service_us = p999;
    sum
}

fn backend_stats(backend: &Backend) -> Option<StatsSnapshot> {
    let mut client = backend.pool.checkout().ok()?;
    client
        .set_read_timeout(Some(Duration::from_millis(1_000)))
        .ok()?;
    let snapshot = client.stats().ok()?;
    if client.set_read_timeout(None).is_ok() {
        backend.pool.checkin(client);
    }
    Some(snapshot)
}

/// The `cluster` frame: per-backend liveness and stats, the aggregate,
/// and the router's own counters.
fn cluster_response(shared: &Shared) -> Vec<u8> {
    let mut backends = Vec::with_capacity(shared.backends.len());
    let mut up_count = 0u64;
    for backend in &shared.backends {
        let up = backend.up.load(Ordering::SeqCst);
        let stats = backend_stats(backend);
        if up {
            up_count += 1;
        }
        backends.push(Json::obj(vec![
            ("addr", Json::Str(backend.pool.addr().to_string())),
            ("up", Json::Bool(up)),
            (
                "stats",
                stats.as_ref().map_or(Json::Null, StatsSnapshot::to_json),
            ),
        ]));
    }
    let c = counters(&shared.metrics);
    let (p50, p99, p999) = shared.metrics.forward.lock().unwrap().quantile_triple_us();
    Json::obj(vec![
        ("type", Json::Str("cluster".into())),
        ("backends", Json::Arr(backends)),
        ("aggregate", aggregate_stats(shared).to_json()),
        (
            "router",
            Json::obj(vec![
                ("forwarded", Json::Uint(c.forwarded)),
                ("failovers", Json::Uint(c.failovers)),
                ("retry_rounds", Json::Uint(c.retry_rounds)),
                ("unrouteable", Json::Uint(c.unrouteable)),
                ("p50_forward_us", Json::Uint(p50)),
                ("p99_forward_us", Json::Uint(p99)),
                ("p999_forward_us", Json::Uint(p999)),
                ("backends_up", Json::Uint(up_count)),
                (
                    "backends_total",
                    Json::Uint(shared.backends.len() as u64),
                ),
            ]),
        ),
    ])
    .compact()
    .into_bytes()
}
