//! `hmtx-cluster`: cluster-scale serving for the HMTX simulation service.
//!
//! One `hmtx-serve` node caches and simulates; this crate scales that
//! horizontally. [`hmtx-router`](RouterHandle) speaks the exact same
//! length-prefixed frame protocol as a backend, consistent-hashes each
//! job's content-addressed key across N backends ([`Ring`]), pools
//! connections per backend ([`Pool`]), health-checks the fleet, and fails
//! over along the ring with seeded deterministic backoff. Because each key
//! has one home node, the cluster's effective cache is the **sum** of the
//! per-node caches (minus nothing: partitions are disjoint), and the
//! single-flight coalescing guarantee keeps holding cluster-wide — all
//! copies of a key funnel to one node's one flight.
//!
//! Clients need no changes: `stats` answers the fleet-wide counter sum,
//! jobs answer with byte-identical frames to what a lone backend would
//! produce (the router splices frames verbatim in both directions), and
//! the new `cluster` request itemizes per-backend health and counters.

#![warn(missing_docs)]

pub mod pool;
pub mod ring;
pub mod router;

pub use pool::{Pool, POOL_IDLE_CAP};
pub use ring::{fnv1a_64, Ring, DEFAULT_REPLICAS};
pub use router::{RouterConfig, RouterCounters, RouterHandle};
