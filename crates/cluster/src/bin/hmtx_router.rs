//! `hmtx-router` — consistent-hash routing across `hmtx-serve` backends.
//!
//! ```text
//! hmtx-router --backends HOST:PORT,HOST:PORT,... [--addr HOST:PORT]
//!             [--replicas N] [--health-interval-ms N]
//!             [--retries N] [--retry-base-ms N]
//! ```
//!
//! Prints `listening on ADDR` once bound (scripts parse this to learn an
//! ephemeral port). Speaks the same frame protocol as `hmtx-serve`, so
//! `hmtx-load` and `hmtx-run --remote` point at it unchanged. SIGTERM or
//! SIGINT begins a graceful drain of the router only — backends keep
//! running (stop them with their own signals or a direct `shutdown`).

use std::time::Duration;

use hmtx_cluster::{RouterConfig, RouterHandle};

fn usage() -> ! {
    eprintln!(
        "usage: hmtx-router --backends HOST:PORT,... [--addr HOST:PORT] \
         [--replicas N] [--health-interval-ms N] [--retries N] [--retry-base-ms N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7871".to_string();
    let mut backends: Vec<String> = Vec::new();
    let mut cfg_replicas = None;
    let mut cfg_health_ms = None;
    let mut cfg_retries = None;
    let mut cfg_retry_base_ms = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--addr" => addr = value(),
            "--backends" => {
                backends = value()
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
            }
            "--replicas" => cfg_replicas = Some(value().parse().unwrap_or_else(|_| usage())),
            "--health-interval-ms" => {
                cfg_health_ms = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            "--retries" => cfg_retries = Some(value().parse().unwrap_or_else(|_| usage())),
            "--retry-base-ms" => {
                cfg_retry_base_ms = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }
    if backends.is_empty() {
        eprintln!("hmtx-router: --backends is required");
        usage();
    }
    let mut cfg = RouterConfig::new(backends);
    if let Some(r) = cfg_replicas {
        cfg.replicas = r;
    }
    if let Some(ms) = cfg_health_ms {
        cfg.health_interval = Duration::from_millis(ms);
    }
    if let Some(r) = cfg_retries {
        cfg.failover_retries = r;
    }
    if let Some(ms) = cfg_retry_base_ms {
        cfg.retry_base_ms = ms;
    }

    hmtx_server::install_drain_handlers();

    let handle = match RouterHandle::start(&addr, cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("hmtx-router: binding {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", handle.addr());

    while !hmtx_server::drain_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("hmtx-router: draining");
    handle.drain();
    handle.wait();
    eprintln!("hmtx-router: drained, exiting");
}
