//! Per-backend connection pooling.
//!
//! The protocol is serial per connection, so concurrency toward one backend
//! means multiple connections. A [`Pool`] keeps a small stack of idle
//! [`Client`]s per backend: router connection threads check one out per
//! forwarded request and check it back in on success. A connection that
//! errors is simply dropped — never returned to the pool — so a backend
//! restart flushes the stale sockets one failed forward at a time, and the
//! next checkout dials fresh.

use std::io;
use std::sync::Mutex;

use hmtx_server::Client;

/// Idle connections kept per backend. Beyond this, returned connections
/// are dropped (closed): a burst can still open as many as it needs, but
/// the steady state holds a bounded socket count.
pub const POOL_IDLE_CAP: usize = 8;

/// A stack of idle connections to one backend address.
pub struct Pool {
    addr: String,
    idle: Mutex<Vec<Client>>,
}

impl Pool {
    /// A pool for `addr` (no connection is dialed until first checkout).
    #[must_use]
    pub fn new(addr: &str) -> Pool {
        Pool {
            addr: addr.to_string(),
            idle: Mutex::new(Vec::new()),
        }
    }

    /// The backend address this pool dials.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// An idle connection if one is pooled, otherwise a fresh dial.
    ///
    /// # Errors
    ///
    /// Propagates connection errors from a fresh dial.
    pub fn checkout(&self) -> io::Result<Client> {
        if let Some(client) = self.idle.lock().unwrap().pop() {
            return Ok(client);
        }
        Client::connect(&self.addr)
    }

    /// Returns a healthy connection to the pool (dropped if the pool is
    /// full). Do not check in a connection that has errored: its stream
    /// may hold a half-read frame, which would desynchronize the next
    /// checkout's request/response pairing.
    pub fn checkin(&self, client: Client) {
        let mut idle = self.idle.lock().unwrap();
        if idle.len() < POOL_IDLE_CAP {
            idle.push(client);
        }
    }

    /// Drops every idle connection (used when a backend is marked down, so
    /// recovery starts from fresh sockets).
    pub fn clear(&self) {
        self.idle.lock().unwrap().clear();
    }

    /// Idle connections currently pooled.
    #[must_use]
    pub fn idle_len(&self) -> usize {
        self.idle.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_server::{ServerConfig, ServerHandle};

    #[test]
    fn checkout_reuses_checked_in_connections_and_caps_idle() {
        let handle = ServerHandle::start("127.0.0.1:0", ServerConfig::default()).expect("bind");
        let pool = Pool::new(&handle.addr().to_string());
        assert_eq!(pool.idle_len(), 0);

        let mut first = pool.checkout().expect("dial");
        assert!(first.ping().expect("ping"));
        pool.checkin(first);
        assert_eq!(pool.idle_len(), 1);

        // Reuse: the pooled connection comes back out.
        let again = pool.checkout().expect("reuse");
        assert_eq!(pool.idle_len(), 0);
        pool.checkin(again);

        // The idle stack is bounded.
        let burst: Vec<Client> = (0..POOL_IDLE_CAP + 3).map(|_| pool.checkout().expect("dial")).collect();
        for c in burst {
            pool.checkin(c);
        }
        assert_eq!(pool.idle_len(), POOL_IDLE_CAP);

        pool.clear();
        assert_eq!(pool.idle_len(), 0);
        handle.drain();
        handle.wait();
    }
}
