//! A consistent-hash ring over backend addresses.
//!
//! Each backend contributes `replicas` virtual points, hashed as
//! `"{addr}#{vnode}"` with FNV-1a-64; a job's content-addressed key hashes
//! onto the same circle and is homed at the first point clockwise. Virtual
//! points smooth the load split (with one point per backend a 3-node ring
//! routinely lands 60/30/10), and make the classic consistent-hashing
//! property exact at the granularity we need: removing a backend reassigns
//! only the keys it was homing — every other key keeps its home, which is
//! what keeps the per-backend memory caches warm through a failover.
//!
//! The ring is immutable after construction. Liveness is the router's
//! concern, not the ring's: [`Ring::candidates`] yields *every* backend in
//! ring order from the key's home, and the router walks that order past
//! whatever is down. Routing through a static ring plus a dynamic health
//! view (rather than rebuilding the ring on failure) means a backend that
//! restarts gets its exact old partition back.

/// FNV-1a over `bytes`, the same cheap hash family the job keys and
/// jitter seeds use. 64-bit here: ring positions need spread, not
/// collision resistance.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Finalizes a hash into a ring position. FNV-1a alone has weak high-bit
/// avalanche for inputs differing only in a short suffix (sequential keys
/// stripe past whole backends); the splitmix64 finalizer fixes that, so
/// ring balance does not depend on the key population being
/// hash-uniform already.
fn position(bytes: &[u8]) -> u64 {
    let mut h = fnv1a_64(bytes);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Default virtual points per backend. 64 keeps the largest/smallest
/// partition ratio under ~1.5 for small clusters while the ring stays a
/// few hundred entries — one binary search and a short walk per route.
pub const DEFAULT_REPLICAS: usize = 64;

/// An immutable consistent-hash ring over backend indexes.
#[derive(Debug, Clone)]
pub struct Ring {
    backends: Vec<String>,
    /// `(point, backend index)`, sorted by point.
    points: Vec<(u64, usize)>,
}

impl Ring {
    /// Builds a ring with `replicas` virtual points per backend
    /// (`replicas` is clamped to at least 1).
    #[must_use]
    pub fn new(backends: &[String], replicas: usize) -> Ring {
        let replicas = replicas.max(1);
        let mut points = Vec::with_capacity(backends.len() * replicas);
        for (index, addr) in backends.iter().enumerate() {
            for vnode in 0..replicas {
                points.push((position(format!("{addr}#{vnode}").as_bytes()), index));
            }
        }
        // Ties (astronomically unlikely with distinct addresses) resolve by
        // backend index so construction order never matters.
        points.sort_unstable();
        Ring {
            backends: backends.to_vec(),
            points,
        }
    }

    /// The backend addresses, in construction order (`candidates` returns
    /// indexes into this slice).
    #[must_use]
    pub fn backends(&self) -> &[String] {
        &self.backends
    }

    /// Number of backends.
    #[must_use]
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// True when the ring has no backends.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Index of the first ring point at or after `hash` (wrapping).
    fn successor(&self, hash: u64) -> usize {
        match self.points.binary_search(&(hash, 0)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0,
            Err(i) => i,
        }
    }

    /// The backend that homes `key`.
    ///
    /// # Panics
    ///
    /// Panics on an empty ring.
    #[must_use]
    pub fn home(&self, key: &str) -> usize {
        assert!(!self.is_empty(), "routing on an empty ring");
        self.points[self.successor(position(key.as_bytes()))].1
    }

    /// Every backend index in ring order starting from `key`'s home: the
    /// failover sequence. Each backend appears exactly once.
    #[must_use]
    pub fn candidates(&self, key: &str) -> Vec<usize> {
        if self.is_empty() {
            return Vec::new();
        }
        let start = self.successor(position(key.as_bytes()));
        let mut seen = vec![false; self.backends.len()];
        let mut order = Vec::with_capacity(self.backends.len());
        for offset in 0..self.points.len() {
            let (_, index) = self.points[(start + offset) % self.points.len()];
            if !seen[index] {
                seen[index] = true;
                order.push(index);
                if order.len() == self.backends.len() {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    fn keys(n: usize) -> Vec<String> {
        // Shaped like real job keys: 32 lowercase hex chars.
        (0..n).map(|i| format!("{i:032x}")).collect()
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let ring = Ring::new(&addrs(3), DEFAULT_REPLICAS);
        for key in keys(100) {
            let home = ring.home(&key);
            assert!(home < 3);
            assert_eq!(home, ring.home(&key), "same key, same home");
            let c = ring.candidates(&key);
            assert_eq!(c[0], home, "candidates start at the home");
            let mut sorted = c.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "each backend exactly once");
        }
    }

    #[test]
    fn virtual_points_spread_the_keyspace() {
        let ring = Ring::new(&addrs(3), DEFAULT_REPLICAS);
        let mut counts = [0usize; 3];
        let n = 3000;
        for key in keys(n) {
            counts[ring.home(&key)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > n / 6 && c < n / 2,
                "backend {i} homes {c} of {n} keys — too lopsided: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_backend_only_moves_its_own_keys() {
        let three = addrs(3);
        let two = three[..2].to_vec();
        let full = Ring::new(&three, DEFAULT_REPLICAS);
        let reduced = Ring::new(&two, DEFAULT_REPLICAS);
        for key in keys(1000) {
            let home = full.home(&key);
            if home < 2 {
                assert_eq!(
                    reduced.home(&key),
                    home,
                    "key {key} homed on a surviving backend must not move"
                );
            } else {
                // Keys the removed backend homed land on its ring successor —
                // exactly the next candidate the full ring already named.
                assert_eq!(reduced.home(&key), full.candidates(&key)[1]);
            }
        }
    }

    #[test]
    fn single_backend_ring_routes_everything_to_it() {
        let ring = Ring::new(&addrs(1), 4);
        for key in keys(50) {
            assert_eq!(ring.home(&key), 0);
            assert_eq!(ring.candidates(&key), vec![0]);
        }
        assert!(Ring::new(&[], 4).candidates("00").is_empty());
    }

    #[test]
    fn replicas_zero_is_clamped_not_empty() {
        let ring = Ring::new(&addrs(2), 0);
        assert_eq!(ring.candidates(&keys(1)[0]).len(), 2);
    }
}
