//! The pluggable protocol-transition seam.
//!
//! [`MemorySystem`](crate::MemorySystem) is generic over a
//! [`ProtocolBackend`]: the four pure per-line transition rules (hit
//! predicate, commit, abort, VID reset) that define a coherence protocol's
//! speculative behaviour. The default backend, [`MoesiHmtx`], is the
//! paper's MOESI+HMTX protocol as implemented in
//! [`crate::transitions`]; the explicit-state model checker
//! (`hmtx-modelcheck`) consumes the *same* backend through the same
//! `MemorySystem`, so the model can never drift from the simulator. Future
//! backends (MESI base protocol, Dragon-style update protocols — ROADMAP
//! item 3) plug in here and inherit both the simulator and the exhaustive
//! checker for free.
//!
//! Backends are zero-sized types dispatched statically: the trait methods
//! are associated functions, so the genericization costs no simulator
//! throughput (the `cyclebench` gate enforces this).

use hmtx_mem::LineMeta;
use hmtx_types::Vid;

use crate::transitions::{self, Outcome};

/// The per-line transition rules of a coherence protocol with HMTX-style
/// versioning.
///
/// Implementations must be pure per-line state machines: no access to the
/// cache, the bus, or any global state. That is what makes the same rules
/// usable both inside the cycle-level simulator and under exhaustive
/// reachability analysis.
pub trait ProtocolBackend:
    std::fmt::Debug + Copy + Default + Send + Sync + 'static
{
    /// Short protocol name for reports (e.g. `"moesi-hmtx"`).
    const NAME: &'static str;

    /// The hit predicate: does a request with VID `a` hit this version?
    /// The address tag is assumed to have matched already.
    fn version_hits(line: &LineMeta, a: Vid) -> bool;

    /// Applies commit processing for latest-committed VID `lc` in place.
    fn apply_commit(line: &mut LineMeta, lc: Vid) -> Outcome;

    /// Applies abort processing in place. Callers must apply pending
    /// commit processing first.
    fn apply_abort(line: &mut LineMeta) -> Outcome;

    /// Applies a VID reset (§4.6) in place. Callers guarantee every
    /// outstanding transaction has committed.
    fn apply_vid_reset(line: &mut LineMeta) -> Outcome;
}

/// The paper's protocol: MOESI extended with the speculative states and
/// version rules of §4 (the default [`crate::MemorySystem`] backend).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoesiHmtx;

impl ProtocolBackend for MoesiHmtx {
    const NAME: &'static str = "moesi-hmtx";

    #[inline]
    fn version_hits(line: &LineMeta, a: Vid) -> bool {
        transitions::version_hits(line, a)
    }

    #[inline]
    fn apply_commit(line: &mut LineMeta, lc: Vid) -> Outcome {
        transitions::apply_commit(line, lc)
    }

    #[inline]
    fn apply_abort(line: &mut LineMeta) -> Outcome {
        transitions::apply_abort(line)
    }

    #[inline]
    fn apply_vid_reset(line: &mut LineMeta) -> Outcome {
        transitions::apply_vid_reset(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_mem::{CacheLine, LineState};
    use hmtx_types::LineAddr;

    #[test]
    fn default_backend_matches_free_transitions() {
        // The trait is a pass-through: byte-for-byte the same outcomes as
        // the free functions the simulator historically called.
        let mut a = CacheLine::non_speculative(LineAddr(7), LineState::Exclusive);
        a.state = LineState::SpecModified;
        a.mod_vid = Vid(1);
        a.high_vid = Vid(2);
        let mut b = a.clone();
        assert_eq!(
            MoesiHmtx::version_hits(&a, Vid(1)),
            transitions::version_hits(&b, Vid(1))
        );
        assert_eq!(
            MoesiHmtx::apply_commit(&mut a, Vid(2)),
            transitions::apply_commit(&mut b, Vid(2))
        );
        assert_eq!(a.meta, b.meta);
        assert_eq!(MoesiHmtx::apply_abort(&mut a), transitions::apply_abort(&mut b));
        assert_eq!(a.meta, b.meta);
        assert_eq!(
            MoesiHmtx::apply_vid_reset(&mut a),
            transitions::apply_vid_reset(&mut b)
        );
        assert_eq!(a.meta, b.meta);
        assert_eq!(MoesiHmtx::NAME, "moesi-hmtx");
    }
}
