//! Memory-system statistics: hit/miss counters, SLA accounting, per-VID
//! read/write set tracking (Figure 9, Table 1), VID-comparator activity
//! counts for the §4.5 energy model, and the [`LatencyHistogram`] long-run
//! service-time accounting used by `hmtx-serve`.
//!
//! Counter hygiene: everything that accumulates over a run is `u64`, and
//! every accumulation in this module saturates. Per-simulation counters are
//! bounded by the instruction budget, but the serving layer keeps
//! histograms and totals alive for the lifetime of a multi-hour process —
//! a counter that wraps (or panics in debug builds) is a worse outcome
//! than one that pins at `u64::MAX`.

use std::collections::BTreeMap;

use hmtx_types::{hash::FxHashSet, LineAddr, Vid};

/// Saturating in-place increment for long-run `u64` counters.
#[inline]
pub fn inc(counter: &mut u64) {
    *counter = counter.saturating_add(1);
}

/// Saturating in-place add for long-run `u64` counters.
#[inline]
pub fn add(counter: &mut u64, n: u64) {
    *counter = counter.saturating_add(n);
}

/// Aggregate sizes of the read/write sets of completed transactions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RwSetTotals {
    /// Number of committed transactions measured.
    pub transactions: u64,
    /// Sum over transactions of distinct lines speculatively read.
    pub read_lines: u64,
    /// Sum over transactions of distinct lines speculatively written.
    pub write_lines: u64,
    /// Sum over transactions of distinct lines speculatively accessed
    /// (union of read and write sets).
    pub combined_lines: u64,
}

impl RwSetTotals {
    /// Average read-set size per transaction in kilobytes (64 B lines).
    pub fn avg_read_kb(&self) -> f64 {
        self.avg_kb(self.read_lines)
    }

    /// Average write-set size per transaction in kilobytes.
    pub fn avg_write_kb(&self) -> f64 {
        self.avg_kb(self.write_lines)
    }

    /// Average combined-set size per transaction in kilobytes.
    pub fn avg_combined_kb(&self) -> f64 {
        self.avg_kb(self.combined_lines)
    }

    fn avg_kb(&self, lines: u64) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            (lines as f64) * 64.0 / 1024.0 / (self.transactions as f64)
        }
    }
}

/// Counters maintained by the [`MemorySystem`](crate::MemorySystem).
#[derive(Debug, Clone, Default)]
pub struct MemStats {
    /// Total load requests (speculative and not, excluding wrong-path).
    pub loads: u64,
    /// Total store requests.
    pub stores: u64,
    /// Loads carrying a speculative VID.
    pub spec_loads: u64,
    /// Stores carrying a speculative VID.
    pub spec_stores: u64,
    /// Wrong-path (branch-speculative, later squashed) loads issued.
    pub wrong_path_loads: u64,
    /// Requests satisfied by the local L1.
    pub l1_hits: u64,
    /// Requests that missed the local L1.
    pub l1_misses: u64,
    /// Misses satisfied by a peer L1 (cache-to-cache transfer).
    pub peer_transfers: u64,
    /// Misses satisfied by the shared L2.
    pub l2_hits: u64,
    /// Misses satisfied by main memory.
    pub mem_fills: u64,
    /// Ownership upgrades (invalidations of peer copies).
    pub upgrades: u64,
    /// Speculative load acknowledgments sent to the cache system (§5.1).
    pub slas_sent: u64,
    /// Speculative loads that needed no SLA because the line already logged
    /// their VID (§5.1).
    pub slas_skipped: u64,
    /// False misspeculations avoided by the SLA filter: stores that would
    /// have aborted had wrong-path loads marked lines (Table 1).
    pub sla_aborts_avoided: u64,
    /// Group commits processed.
    pub commits: u64,
    /// Aborts processed (all causes).
    pub aborts: u64,
    /// VID resets processed (§4.6).
    pub vid_resets: u64,
    /// Overflow-safe `S-O(0,·)` lines written back past the LLC (§5.4).
    pub safe_overflow_writebacks: u64,
    /// Lines refetched from memory in `S-O(0,a+1)` after a safe overflow.
    pub overflow_refills: u64,
    /// VID comparisons resolved by the short low-3-bit comparator (§4.5).
    pub short_vid_compares: u64,
    /// VID comparisons needing the cascaded full comparison (§4.5).
    pub cascaded_vid_compares: u64,
    /// Lines walked by eager commit processing (ablation A).
    pub eager_commit_lines_walked: u64,
    /// Directory home-bank lookups (§8 directory interconnect).
    pub directory_lookups: u64,
    /// Speculative versions spilled to the §8 unbounded-sets overflow table.
    pub unbounded_spills: u64,
    /// Speculative versions retrieved from the overflow table.
    pub unbounded_fills: u64,
    /// Spurious conflict misspeculations injected by the fault plan
    /// (chaos testing; zero unless `MachineConfig::faults` is set).
    pub injected_conflicts: u64,

    rw_totals: RwSetTotals,
    // BTreeMap so that finalization walks transactions in ascending VID
    // order — committed transactions must be accounted in a deterministic
    // (commit) order, never in whatever order a hash function produces.
    live_read_sets: BTreeMap<Vid, FxHashSet<LineAddr>>,
    live_write_sets: BTreeMap<Vid, FxHashSet<LineAddr>>,
}

impl MemStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a speculative read of `line` by transaction `vid`.
    pub fn record_spec_read(&mut self, vid: Vid, line: LineAddr) {
        self.live_read_sets.entry(vid).or_default().insert(line);
    }

    /// Records a speculative write of `line` by transaction `vid`.
    pub fn record_spec_write(&mut self, vid: Vid, line: LineAddr) {
        self.live_write_sets.entry(vid).or_default().insert(line);
    }

    /// Finalizes the read/write sets of every transaction with VID `<= lc`
    /// (called at group commit), in ascending VID order — the order the
    /// transactions logically committed in.
    pub fn finalize_committed(&mut self, lc: Vid) {
        // Both maps iterate sorted; merging through a BTreeSet keeps the
        // union sorted and deduplicated.
        let vids: Vec<Vid> = self
            .live_read_sets
            .keys()
            .chain(self.live_write_sets.keys())
            .copied()
            .filter(|v| *v <= lc)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for vid in vids {
            let reads = self.live_read_sets.remove(&vid).unwrap_or_default();
            let writes = self.live_write_sets.remove(&vid).unwrap_or_default();
            inc(&mut self.rw_totals.transactions);
            add(&mut self.rw_totals.read_lines, reads.len() as u64);
            add(&mut self.rw_totals.write_lines, writes.len() as u64);
            add(
                &mut self.rw_totals.combined_lines,
                reads.union(&writes).count() as u64,
            );
        }
    }

    /// Discards the live sets of every uncommitted transaction (on abort).
    pub fn discard_uncommitted(&mut self) {
        self.live_read_sets.clear();
        self.live_write_sets.clear();
    }

    /// Distinct cache lines speculatively read so far by live transaction
    /// `vid` (HyTM fast-path capacity bound checks).
    pub fn live_read_lines(&self, vid: Vid) -> usize {
        self.live_read_sets.get(&vid).map_or(0, FxHashSet::len)
    }

    /// Distinct cache lines speculatively written so far by live transaction
    /// `vid` (HyTM fast-path capacity bound checks).
    pub fn live_write_lines(&self, vid: Vid) -> usize {
        self.live_write_sets.get(&vid).map_or(0, FxHashSet::len)
    }

    /// Read/write set totals over committed transactions (Figure 9).
    pub fn rw_totals(&self) -> RwSetTotals {
        self.rw_totals
    }

    /// Speculative accesses (loads + stores) per committed transaction
    /// (Table 1 column "Avg Number of Spec Mem Accesses Per TX" is computed
    /// by the machine layer, which also counts accesses; this helper exposes
    /// the committed-transaction count).
    pub fn committed_transactions(&self) -> u64 {
        self.rw_totals.transactions
    }

    /// Records one VID hit-check comparison (§4.5): `short` when the high
    /// bits of both VIDs match (the common case), `cascaded` otherwise.
    pub fn record_vid_compare(&mut self, a: Vid, b: Vid, vid_bits: u32) {
        let low_bits = vid_bits / 2;
        if (a.0 >> low_bits) == (b.0 >> low_bits) {
            inc(&mut self.short_vid_compares);
        } else {
            inc(&mut self.cascaded_vid_compares);
        }
    }
}

// ------------------------------------------------------ service latencies

/// Number of log-scale buckets in a [`LatencyHistogram`] (one per power of
/// two of microseconds, up to `2^63`).
pub const LATENCY_BUCKETS: usize = 64;

/// A fixed-footprint log₂ histogram of service times in microseconds.
///
/// Built for long-running servers: recording is O(1), memory is constant,
/// counts saturate rather than wrap, and quantile estimation never needs
/// the raw samples. Bucket `i` holds samples in `[2^i, 2^(i+1))` µs
/// (bucket 0 also holds 0 µs), so a reported quantile is exact to within
/// a factor of two — plenty for p50/p99 service-time counters.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    /// Records one service time in microseconds.
    pub fn record_us(&mut self, us: u64) {
        let bucket = if us == 0 {
            0
        } else {
            63 - us.leading_zeros() as usize
        };
        inc(&mut self.buckets[bucket]);
        inc(&mut self.count);
        add(&mut self.sum_us, us);
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples in microseconds (saturating).
    #[must_use]
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Largest recorded sample in microseconds.
    #[must_use]
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Mean service time in microseconds (0 when empty).
    #[must_use]
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper edge of the bucket the
    /// quantile sample falls in, clamped to the observed maximum. Returns 0
    /// when no samples were recorded.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the quantile sample, 1-based, in [1, count].
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                let upper = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return upper.min(self.max_us);
            }
        }
        self.max_us
    }

    /// Merges another histogram into this one (saturating).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            add(a, *b);
        }
        add(&mut self.count, other.count);
        add(&mut self.sum_us, other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// The non-mutating form of [`LatencyHistogram::merge`]: a new histogram
    /// holding both inputs' samples (saturating). Associative and
    /// commutative, so a router can fold any number of per-backend (or
    /// per-connection) histograms in any order and report one set of
    /// quantiles over the union.
    #[must_use]
    pub fn combine(&self, other: &LatencyHistogram) -> LatencyHistogram {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// The `(p50, p99, p999)` quantile triple every latency report uses.
    #[must_use]
    pub fn quantile_triple_us(&self) -> (u64, u64, u64) {
        (
            self.quantile_us(0.50),
            self.quantile_us(0.99),
            self.quantile_us(0.999),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_sets_accumulate_distinct_lines() {
        let mut s = MemStats::new();
        s.record_spec_read(Vid(1), LineAddr(1));
        s.record_spec_read(Vid(1), LineAddr(1));
        s.record_spec_read(Vid(1), LineAddr(2));
        s.record_spec_write(Vid(1), LineAddr(2));
        s.record_spec_write(Vid(1), LineAddr(3));
        s.finalize_committed(Vid(1));
        let t = s.rw_totals();
        assert_eq!(t.transactions, 1);
        assert_eq!(t.read_lines, 2);
        assert_eq!(t.write_lines, 2);
        assert_eq!(t.combined_lines, 3, "union of {{1,2}} and {{2,3}}");
    }

    #[test]
    fn live_sets_iterate_in_sorted_vid_order() {
        // Pinned: insertion order is scrambled, iteration (and therefore
        // finalization) order must be ascending VID regardless.
        let mut s = MemStats::new();
        for vid in [7u16, 2, 5, 1, 6] {
            s.record_spec_read(Vid(vid), LineAddr(u64::from(vid)));
        }
        for vid in [4u16, 3] {
            s.record_spec_write(Vid(vid), LineAddr(u64::from(vid)));
        }
        let read_vids: Vec<u16> = s.live_read_sets.keys().map(|v| v.0).collect();
        let write_vids: Vec<u16> = s.live_write_sets.keys().map(|v| v.0).collect();
        assert_eq!(read_vids, vec![1, 2, 5, 6, 7]);
        assert_eq!(write_vids, vec![3, 4]);
        s.finalize_committed(Vid(7));
        assert_eq!(s.rw_totals().transactions, 7);
        assert!(s.live_read_sets.is_empty());
        assert!(s.live_write_sets.is_empty());
    }

    #[test]
    fn finalize_only_commits_vids_up_to_lc() {
        let mut s = MemStats::new();
        s.record_spec_read(Vid(1), LineAddr(1));
        s.record_spec_read(Vid(2), LineAddr(2));
        s.finalize_committed(Vid(1));
        assert_eq!(s.rw_totals().transactions, 1);
        s.finalize_committed(Vid(2));
        assert_eq!(s.rw_totals().transactions, 2);
    }

    #[test]
    fn kb_averages() {
        let mut s = MemStats::new();
        for l in 0..16 {
            s.record_spec_read(Vid(1), LineAddr(l));
        }
        s.finalize_committed(Vid(1));
        let t = s.rw_totals();
        assert!(
            (t.avg_read_kb() - 1.0).abs() < 1e-9,
            "16 lines * 64 B = 1 kB"
        );
        assert_eq!(t.avg_write_kb(), 0.0);
        assert!((t.avg_combined_kb() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_totals_average_zero() {
        let t = RwSetTotals::default();
        assert_eq!(t.avg_read_kb(), 0.0);
        assert_eq!(t.avg_combined_kb(), 0.0);
    }

    #[test]
    fn discard_uncommitted_drops_live_sets() {
        let mut s = MemStats::new();
        s.record_spec_read(Vid(3), LineAddr(1));
        s.discard_uncommitted();
        s.finalize_committed(Vid(10));
        assert_eq!(s.rw_totals().transactions, 0);
    }

    #[test]
    fn saturating_helpers_pin_at_max() {
        let mut c = u64::MAX - 1;
        inc(&mut c);
        inc(&mut c);
        assert_eq!(c, u64::MAX);
        add(&mut c, 100);
        assert_eq!(c, u64::MAX);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let mut h = LatencyHistogram::new();
        // 99 fast samples around 100 µs, one slow 1 s outlier.
        for _ in 0..99 {
            h.record_us(100);
        }
        h.record_us(1_000_000);
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_us(0.50);
        assert!((100..=127).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_us(0.99);
        assert!((100..=127).contains(&p99), "p99 rank 99 is still fast: {p99}");
        assert_eq!(h.quantile_us(1.0), 1_000_000, "max clamps the top bucket");
        assert_eq!(h.max_us(), 1_000_000);
        assert!(h.mean_us() >= 100);
    }

    #[test]
    fn histogram_empty_and_zero() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0);
        h.record_us(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_us(0.5), 0, "clamped to observed max of 0");
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_us(10);
        b.record_us(1000);
        b.record_us(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum_us(), 2010);
        let p99 = a.quantile_us(0.99);
        assert!((1000..=2047).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn histogram_saturates_instead_of_wrapping() {
        let mut h = LatencyHistogram::new();
        h.record_us(u64::MAX);
        h.record_us(u64::MAX);
        assert_eq!(h.sum_us(), u64::MAX, "sum pins instead of overflowing");
        assert_eq!(h.quantile_us(1.0), u64::MAX);
    }

    #[test]
    fn p999_separates_the_one_in_a_thousand_tail() {
        let mut h = LatencyHistogram::new();
        // 1995 fast samples and 5 slow ones: p99 (rank 1980) stays fast,
        // p999 (rank 1998) must land in the slow bucket.
        for _ in 0..1995 {
            h.record_us(50);
        }
        for _ in 0..5 {
            h.record_us(500_000);
        }
        let (p50, p99, p999) = h.quantile_triple_us();
        assert!((50..=63).contains(&p50), "p50 = {p50}");
        assert!((50..=63).contains(&p99), "p99 = {p99}");
        assert!(p999 >= 500_000, "p999 must see the tail: {p999}");
    }

    #[test]
    fn combine_is_empty_neutral_and_order_independent() {
        let empty = LatencyHistogram::new();
        // Empty × empty stays empty at every quantile.
        let both = empty.combine(&LatencyHistogram::new());
        assert_eq!(both.count(), 0);
        assert_eq!(both.quantile_triple_us(), (0, 0, 0));

        // Single sample: combining with empty (either side) changes nothing.
        let mut one = LatencyHistogram::new();
        one.record_us(777);
        for combined in [one.combine(&empty), empty.combine(&one)] {
            assert_eq!(combined.count(), 1);
            assert_eq!(combined.max_us(), 777);
            let (p50, p99, p999) = combined.quantile_triple_us();
            assert_eq!((p50, p99, p999), (777, 777, 777), "clamped to the max");
        }

        // Order independence over three shards.
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for i in 0..100 {
            a.record_us(10 + i);
            b.record_us(10_000 + i);
        }
        c.record_us(9_999_999);
        let abc = a.combine(&b).combine(&c);
        let cba = c.combine(&b).combine(&a);
        assert_eq!(abc.count(), cba.count());
        assert_eq!(abc.sum_us(), cba.sum_us());
        assert_eq!(abc.quantile_triple_us(), cba.quantile_triple_us());
        assert_eq!(abc.count(), 201);
    }

    #[test]
    fn combine_saturates_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_us(u64::MAX);
        b.record_us(u64::MAX);
        let both = a.combine(&b);
        assert_eq!(both.count(), 2);
        assert_eq!(both.sum_us(), u64::MAX, "sum pins at the ceiling");
        // Force bucket-count saturation: pre-pin a bucket and combine.
        let mut pinned = LatencyHistogram::new();
        pinned.record_us(8);
        for _ in 0..3 {
            pinned = pinned.combine(&pinned); // doubles every count
        }
        assert_eq!(pinned.count(), 8);
        let mut maxed = LatencyHistogram::new();
        maxed.record_us(8);
        maxed.buckets[3] = u64::MAX;
        maxed.count = u64::MAX;
        let over = maxed.combine(&pinned);
        assert_eq!(over.count(), u64::MAX, "count saturates, never wraps");
        assert_eq!(over.buckets[3], u64::MAX, "bucket saturates, never wraps");
    }

    #[test]
    fn vid_compare_classification() {
        let mut s = MemStats::new();
        // 6-bit VIDs: low 3 bits short-compare, high 3 bits checked for
        // equality. 5 (000_101) vs 7 (000_111): same high bits -> short.
        s.record_vid_compare(Vid(5), Vid(7), 6);
        assert_eq!(s.short_vid_compares, 1);
        // 5 (000_101) vs 60 (111_100): different high bits -> cascaded.
        s.record_vid_compare(Vid(5), Vid(60), 6);
        assert_eq!(s.cascaded_vid_compares, 1);
    }
}
