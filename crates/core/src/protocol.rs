//! The HMTX memory system: per-core L1 caches, a shared snoopy bus, a shared
//! L2, and main memory, governed by the MOESI protocol extended with the
//! speculative states and version rules of §4 of the paper.
//!
//! # Structure of an access
//!
//! 1. Pending lazy commit processing is applied to every version of the
//!    requested address in the local L1 set (§5.3).
//! 2. The local L1 is probed with the hit predicate of §4.1 (non-speculative
//!    requests probe with the cache's LC VID).
//! 3. On a miss, the request is broadcast on the bus: peer L1s are snooped
//!    (S-S and S copies stay silent), then the shared L2, then main memory.
//!    An S-M line that holds the same address but does not satisfy the hit
//!    predicate asserts *speculatively-modified-elsewhere*, which makes a
//!    memory fill return in `S-O(0, vid+1)` per §5.4.
//! 4. Speculative writes enforce the dependence rules of §4.3, creating a
//!    new `S-M(y,y)` version and retaining the unmodified copy in
//!    `S-O(m,y)`, or aborting on a VID-order violation.
//!
//! The hierarchy is mostly-exclusive: a version supplied by the L2 migrates
//! into the requesting L1, and L1 evictions are installed into the L2. This
//! keeps every `(address, modVID)` version single-homed per level, which is
//! what guarantees the "requests hit exactly one version" property the paper
//! relies on.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::marker::PhantomData;

use hmtx_mem::cache::LineFate;
use hmtx_mem::{Bus, Cache, CacheLine, LineData, LineMeta, LineState, MainMemory};
use hmtx_types::{Addr, CoreId, Cycle, Interconnect, LineAddr, MachineConfig, SimError, Vid};

use crate::backend::{MoesiHmtx, ProtocolBackend};
use crate::faults::{FaultPlan, FaultSite};
use crate::stats::MemStats;
use crate::trace::{ServedFrom, TraceEvent, Tracer};
use crate::transitions::Outcome;

/// Kind of memory access, with the store payload inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// An 8-byte load.
    Read,
    /// An 8-byte store of the given value.
    Write(u64),
}

/// One memory request from a core.
#[derive(Debug, Clone, Copy)]
pub struct AccessRequest {
    /// Issuing core (selects the L1).
    pub core: CoreId,
    /// Byte address; the 8-byte word must not cross a line boundary.
    pub addr: Addr,
    /// Load or store.
    pub kind: AccessKind,
    /// The VID register value of the issuing thread context (zero for
    /// non-speculative execution).
    pub vid: Vid,
    /// `true` for branch-speculative (wrong-path) loads that will be
    /// squashed: they move data around the caches but must not mark lines
    /// with their VID (§5.1). Wrong-path stores never reach the cache.
    pub wrong_path: bool,
}

/// Why a misspeculation was signaled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisspecCause {
    /// A store with VID below the line's highVID (§4.3: a logically later
    /// access already observed this line).
    StoreBelowHighVid {
        /// Conflicting address.
        addr: Addr,
        /// VID of the store.
        store_vid: Vid,
        /// highVID of the line it hit.
        high_vid: Vid,
    },
    /// A store hit a superseded (`S-O`/`S-S`) version.
    StoreToSupersededVersion {
        /// Conflicting address.
        addr: Addr,
        /// VID of the store.
        store_vid: Vid,
    },
    /// A non-speculative write touched a line with live speculative marks.
    NonSpecWriteConflict {
        /// Conflicting address.
        addr: Addr,
    },
    /// A speculative line that may not leave the hierarchy was evicted past
    /// the last-level cache (§5.4).
    SpecOverflow {
        /// Evicted address.
        addr: Addr,
    },
    /// An SLA's recorded value no longer matches the line (§5.1).
    SlaValueMismatch {
        /// Conflicting address.
        addr: Addr,
        /// VID of the acknowledged load.
        vid: Vid,
    },
    /// Software signaled misspeculation via `abortMTX` (e.g. control-flow
    /// speculation failed its late check, §3.2).
    ExplicitAbort {
        /// The VID passed to `abortMTX`.
        vid: Vid,
    },
    /// A deterministic fault plan injected a spurious conflict on a
    /// speculative access (chaos testing; no cache state was touched).
    InjectedConflict {
        /// Address of the faulted access.
        addr: Addr,
        /// VID of the faulted access.
        vid: Vid,
    },
}

/// Result of a memory access.
#[derive(Debug, Clone, Copy)]
pub enum AccessResponse {
    /// The access completed.
    Done {
        /// Loaded value (for writes, the value written).
        value: u64,
        /// Cycles until the requesting core may proceed.
        latency: u64,
        /// `true` if a speculative load acknowledgment must be sent when the
        /// load retires (§5.1): the access marked a line that had not yet
        /// logged this VID.
        sla_required: bool,
    },
    /// The access detected misspeculation; the machine must abort.
    Misspec {
        /// Why.
        cause: MisspecCause,
        /// Cycles consumed detecting the conflict.
        latency: u64,
    },
}

/// The full HMTX memory system, generic over the protocol's per-line
/// transition rules (see [`ProtocolBackend`]). The default backend is the
/// paper's MOESI+HMTX protocol; dispatch is static, so the seam costs no
/// simulator throughput. Cloning snapshots the entire simulation state —
/// the explicit-state model checker forks states this way.
#[derive(Debug, Clone)]
pub struct MemorySystem<B: ProtocolBackend = MoesiHmtx> {
    cfg: MachineConfig,
    l1s: Vec<Cache>,
    l2: Cache,
    memory: MainMemory,
    bus: Bus,
    banks: Vec<Bus>,
    /// §8 overflow table. A `BTreeMap` so commit/abort walks process
    /// entries in sorted `(address, modVID)` order — writeback and latency
    /// accounting must not depend on hash iteration order.
    overflow: BTreeMap<(LineAddr, Vid), CacheLine>,
    stats: MemStats,
    faults: Option<FaultPlan>,
    tracer: Tracer,
    last_served: ServedFrom,
    last_committed: Vid,
    abort_seen_since_reset: bool,
    backend: PhantomData<B>,
}

impl MemorySystem {
    /// Builds the memory system for `cfg` with the default MOESI+HMTX
    /// backend.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use [`Self::try_new`] to get
    /// a diagnostic instead.
    pub fn new(cfg: MachineConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the memory system for `cfg` with the default MOESI+HMTX
    /// backend, reporting an invalid configuration as an error instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the machine configuration or any
    /// cache geometry is invalid.
    pub fn try_new(cfg: MachineConfig) -> Result<Self, SimError> {
        Self::try_new_backend(cfg)
    }
}

impl<B: ProtocolBackend> MemorySystem<B> {
    /// Builds the memory system for `cfg` over the backend `B` (named
    /// explicitly; [`MemorySystem::try_new`] picks the default).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the machine configuration or any
    /// cache geometry is invalid.
    pub fn try_new_backend(cfg: MachineConfig) -> Result<Self, SimError> {
        cfg.validate()?;
        let mut l1s = Vec::with_capacity(cfg.num_cores);
        for _ in 0..cfg.num_cores {
            l1s.push(Cache::new(cfg.l1)?);
        }
        let l2 = Cache::new(cfg.l2)?;
        let banks = match cfg.interconnect {
            Interconnect::SnoopyBus => Vec::new(),
            Interconnect::Directory { banks, .. } => {
                if !banks.is_power_of_two() {
                    return Err(SimError::Config(hmtx_types::ConfigError::new(
                        "directory banks must be a power of two",
                    )));
                }
                (0..banks).map(|_| Bus::new(cfg.bus_occupancy)).collect()
            }
        };
        Ok(MemorySystem {
            bus: Bus::new(cfg.bus_occupancy),
            banks,
            overflow: BTreeMap::new(),
            faults: cfg.faults.map(FaultPlan::new),
            tracer: Tracer::default(),
            last_served: ServedFrom::L1,
            l1s,
            l2,
            memory: MainMemory::new(),
            stats: MemStats::new(),
            last_committed: Vid::NON_SPECULATIVE,
            abort_seen_since_reset: false,
            backend: PhantomData,
            cfg,
        })
    }

    /// The machine configuration this system was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Main memory (for building the initial image and final verification).
    pub fn memory(&self) -> &MainMemory {
        &self.memory
    }

    /// Mutable main memory (initial image construction only).
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.memory
    }

    /// The highest VID committed since the last reset.
    pub fn last_committed(&self) -> Vid {
        self.last_committed
    }

    /// Whether any abort has occurred since the last VID reset. The model
    /// checker's exclusivity-after-abort rule is gated on this.
    pub fn abort_seen(&self) -> bool {
        self.abort_seen_since_reset
    }

    /// The shared bus (snoopy-mode data requests and control broadcasts),
    /// for bandwidth statistics.
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Iterates `(name, cache)` over the hierarchy for diagnostic scans
    /// (invariant checking, the model checker's canonical state encoding).
    pub fn caches_for_scan(&self) -> Vec<(String, &Cache)> {
        let mut v: Vec<(String, &Cache)> = self
            .l1s
            .iter()
            .enumerate()
            .map(|(i, c)| (format!("L1[{i}]"), c))
            .collect();
        v.push(("L2".to_string(), &self.l2));
        v
    }

    /// Test-only mutable access to a core's private L1, so invariant tests
    /// can plant line states the protocol itself refuses to produce.
    #[cfg(test)]
    pub(crate) fn l1_mut(&mut self, core: usize) -> &mut Cache {
        &mut self.l1s[core]
    }

    /// Iterates the §8 overflow table's spilled versions in sorted
    /// `(address, modVID)` order (diagnostic view; the model checker folds
    /// these into its canonical state encoding).
    pub fn overflow_lines(&self) -> impl Iterator<Item = &CacheLine> + '_ {
        self.overflow.values()
    }

    /// Performs one memory access at cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnalignedAccess`] if the 8-byte word crosses a
    /// cache-line boundary — a guest program bug, not a modeled event.
    pub fn access(&mut self, now: Cycle, req: &AccessRequest) -> Result<AccessResponse, SimError> {
        // Deterministic fault injection: a spurious conflict answers the
        // access with a misspeculation *before* any cache state is touched,
        // so recovery needs nothing beyond the ordinary abort path. Only
        // speculative correct-path accesses are eligible — non-speculative
        // execution (including the runtime's sequential fallback rung and
        // its control-block resync stores) is immune by construction, which
        // is what guarantees every fault schedule terminates.
        if req.vid.is_speculative() && !req.wrong_path {
            if let Some(plan) = self.faults.as_mut() {
                if plan.fire(FaultSite::SpuriousConflict) {
                    crate::stats::inc(&mut self.stats.injected_conflicts);
                    let cause = MisspecCause::InjectedConflict {
                        addr: req.addr,
                        vid: req.vid,
                    };
                    let latency = self.cfg.l1.latency;
                    if self.tracer.enabled() {
                        self.tracer.record(TraceEvent::FaultInjected {
                            cycle: now,
                            site: FaultSite::SpuriousConflict.name(),
                        });
                        self.tracer.record(TraceEvent::Misspec {
                            cycle: now,
                            cause: format!("{cause:?}"),
                        });
                    }
                    return Ok(AccessResponse::Misspec { cause, latency });
                }
            }
        }
        let mut response = self.access_impl(now, req)?;
        // HyTM capacity bounds (§11): with `hytm.enabled`, a speculative
        // correct-path access whose transaction's distinct-line read or
        // write set now exceeds the configured cap answers `SpecOverflow`,
        // exactly as if the line had been evicted past the LLC — the
        // runtime's ordinary abort path cleans up any cache state this
        // access installed, so partial effects are safe. `0` = unbounded.
        if self.cfg.hytm.enabled
            && req.vid.is_speculative()
            && !req.wrong_path
            && matches!(response, AccessResponse::Done { .. })
        {
            let is_write = matches!(req.kind, AccessKind::Write(_));
            let (live, bound) = if is_write {
                (
                    self.stats.live_write_lines(req.vid),
                    self.cfg.hytm.max_write_lines,
                )
            } else {
                (
                    self.stats.live_read_lines(req.vid),
                    self.cfg.hytm.max_read_lines,
                )
            };
            if bound != 0 && live > bound as usize {
                let latency = match response {
                    AccessResponse::Done { latency, .. } => latency,
                    AccessResponse::Misspec { latency, .. } => latency,
                };
                response = AccessResponse::Misspec {
                    cause: MisspecCause::SpecOverflow {
                        addr: req.addr.line().base(),
                    },
                    latency,
                };
            }
        }
        if self.tracer.enabled() {
            match &response {
                AccessResponse::Done { latency, .. } => {
                    self.tracer.record(TraceEvent::Access {
                        cycle: now,
                        core: req.core,
                        addr: req.addr,
                        vid: req.vid,
                        write: matches!(req.kind, AccessKind::Write(_)),
                        served: self.last_served,
                        latency: *latency,
                    });
                }
                AccessResponse::Misspec { cause, .. } => {
                    self.tracer.record(TraceEvent::Misspec {
                        cycle: now,
                        cause: format!("{cause:?}"),
                    });
                }
            }
        }
        Ok(response)
    }

    /// Enables protocol tracing with the given buffer capacity (0 disables).
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.tracer.set_capacity(capacity);
    }

    /// Takes the buffered trace events (the tracer stays enabled).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.tracer.take()
    }

    /// Records a machine-level injected fault (queue delay, wrong-path
    /// storm) in the protocol trace, so one trace shows the full schedule.
    pub fn note_fault(&mut self, now: Cycle, site: &'static str) {
        self.tracer
            .record(TraceEvent::FaultInjected { cycle: now, site });
    }

    fn access_impl(&mut self, now: Cycle, req: &AccessRequest) -> Result<AccessResponse, SimError> {
        self.last_served = ServedFrom::L1;
        if !req.addr.word_in_line() {
            return Err(SimError::UnalignedAccess { addr: req.addr.0 });
        }
        debug_assert!(
            req.vid <= self.cfg.hmtx.max_vid(),
            "VID exceeds configured width"
        );
        let is_write = matches!(req.kind, AccessKind::Write(_));
        debug_assert!(
            !(is_write && req.wrong_path),
            "squashed stores never reach the cache"
        );

        if req.wrong_path {
            crate::stats::inc(&mut self.stats.wrong_path_loads);
        } else if is_write {
            crate::stats::inc(&mut self.stats.stores);
            if req.vid.is_speculative() {
                crate::stats::inc(&mut self.stats.spec_stores);
            }
        } else {
            crate::stats::inc(&mut self.stats.loads);
            if req.vid.is_speculative() {
                crate::stats::inc(&mut self.stats.spec_loads);
            }
        }

        // Ablation B: with SLAs disabled, branch-speculative loads mark
        // lines with their VID immediately (the behaviour §5.1 exists to
        // avoid), so wrong-path loads go down the regular marking path.
        let normalized;
        let req = if req.wrong_path && !self.cfg.hmtx.sla_enabled {
            normalized = AccessRequest {
                wrong_path: false,
                ..*req
            };
            &normalized
        } else {
            req
        };

        let line = req.addr.line();
        let c = req.core.0;
        let lookup = if req.vid.is_speculative() {
            req.vid
        } else {
            self.l1s[c].lc_vid()
        };

        // Fast path: one fused walk over the set does the lazy-commit
        // staleness check, the §4.5 comparator accounting, and the hit
        // search together. The separate-walk slow path runs only when the
        // set still has unprocessed commit work, which happens at most once
        // per set per commit.
        let cache = &self.l1s[c];
        let set = cache.set_index(line);
        let epoch = cache.commit_epoch();
        let low_bits = self.cfg.hmtx.vid_bits / 2;
        let mut stale = false;
        let mut hit: Option<usize> = None;
        let mut short = 0u64;
        let mut cascaded = 0u64;
        for (i, l) in cache.set_metas(set).iter().enumerate() {
            if l.commit_epoch < epoch {
                stale = true;
                break;
            }
            if l.addr == line {
                // Inline of `MemStats::record_vid_compare`, buffered locally
                // so a stale set can discard partial counts and recount
                // after commit processing rewrites the set.
                if (lookup.0 >> low_bits) == (l.mod_vid.0 >> low_bits) {
                    short += 1;
                } else {
                    cascaded += 1;
                }
                if B::version_hits(l, lookup) {
                    debug_assert!(
                        hit.is_none(),
                        "hit predicate matched two versions of {line:?}"
                    );
                    hit = Some(i);
                }
            }
        }
        if stale {
            Self::process_addr(&mut self.l1s[c], line);
            self.count_compares(c, line, lookup);
            hit = find_hit::<B>(&self.l1s[c], line, lookup);
        } else {
            crate::stats::add(&mut self.stats.short_vid_compares, short);
            crate::stats::add(&mut self.stats.cascaded_vid_compares, cascaded);
        }

        if let Some(way) = hit {
            crate::stats::inc(&mut self.stats.l1_hits);
            self.l1s[c].touch(set, way);
            return Ok(self.local_access(now, req, lookup, set, way, 0));
        }
        crate::stats::inc(&mut self.stats.l1_misses);
        self.miss(now, req, lookup)
    }

    /// Handles an access whose version is present in the local L1 at
    /// `(set, way)`. `extra_latency` accounts for bus work already
    /// performed (fills).
    #[allow(clippy::too_many_arguments)]
    fn local_access(
        &mut self,
        now: Cycle,
        req: &AccessRequest,
        lookup: Vid,
        set: usize,
        way: usize,
        extra_latency: u64,
    ) -> AccessResponse {
        let c = req.core.0;
        let line = req.addr.line();
        let offset = req.addr.line_offset();
        let l1_latency = self.cfg.l1.latency;
        let base_latency = extra_latency + l1_latency;

        match req.kind {
            AccessKind::Read => {
                // Wrong-path loads read data but never change marking state.
                if req.wrong_path {
                    let (v, d) = self.l1s[c].line_mut(set, way);
                    if req.vid.is_speculative() && req.vid > v.phantom_high {
                        v.phantom_high = req.vid;
                    }
                    let value = d.read_u64(offset);
                    return AccessResponse::Done {
                        value,
                        latency: base_latency,
                        sla_required: false,
                    };
                }
                if req.vid.is_non_speculative() {
                    let value = self.l1s[c].data(set, way).read_u64(offset);
                    return AccessResponse::Done {
                        value,
                        latency: base_latency,
                        sla_required: false,
                    };
                }
                // Speculative read: may need conversion / marking.
                let state = self.l1s[c].meta(set, way).state;
                let mut latency = base_latency;
                match state {
                    LineState::Owned | LineState::Shared => {
                        // Gain exclusivity before speculative conversion
                        // ("O, S follow the same path as M or E once
                        // acquiring exclusive access", Figure 4).
                        let done = self.fabric_acquire(now, line);
                        latency += done.saturating_sub(now);
                        crate::stats::inc(&mut self.stats.upgrades);
                        let dirty = self.invalidate_nonspec_copies(line, Some(c));
                        let v = self.l1s[c].meta_mut(set, way);
                        v.state = if dirty || state == LineState::Owned {
                            LineState::Modified
                        } else {
                            LineState::Exclusive
                        };
                    }
                    _ => {}
                }
                let (v, d) = self.l1s[c].line_mut(set, way);
                let mut sla_required = false;
                match v.state {
                    LineState::Modified => {
                        v.state = LineState::SpecModified;
                        v.high_vid = req.vid;
                        sla_required = true;
                    }
                    LineState::Exclusive => {
                        v.state = LineState::SpecExclusive;
                        v.high_vid = req.vid;
                        sla_required = true;
                    }
                    LineState::SpecModified | LineState::SpecExclusive => {
                        if req.vid > v.high_vid {
                            v.high_vid = req.vid;
                            sla_required = true;
                        }
                    }
                    // Superseded versions are read-only history; reads inside
                    // their range need no marking (§4.1).
                    LineState::SpecOwned | LineState::SpecShared => {}
                    LineState::Owned | LineState::Shared => unreachable!("upgraded above"),
                }
                let value = d.read_u64(offset);
                self.record_sla(sla_required);
                self.stats.record_spec_read(req.vid, line);
                AccessResponse::Done {
                    value,
                    latency,
                    sla_required,
                }
            }
            AccessKind::Write(value) => {
                if req.vid.is_non_speculative() {
                    return self.nonspec_write(now, c, line, set, way, offset, value, base_latency);
                }
                self.spec_write(
                    now,
                    req.vid,
                    c,
                    line,
                    set,
                    way,
                    offset,
                    value,
                    base_latency,
                    lookup,
                )
            }
        }
    }

    /// Non-speculative (VID 0) write hitting a local version.
    #[allow(clippy::too_many_arguments)]
    fn nonspec_write(
        &mut self,
        now: Cycle,
        c: usize,
        line: LineAddr,
        set: usize,
        way: usize,
        offset: usize,
        value: u64,
        base_latency: u64,
    ) -> AccessResponse {
        let state = self.l1s[c].meta(set, way).state;
        if state.is_speculative() {
            // After lazy processing, a surviving speculative version means a
            // live uncommitted transaction touched this line.
            return AccessResponse::Misspec {
                cause: MisspecCause::NonSpecWriteConflict { addr: line.base() },
                latency: base_latency,
            };
        }
        let mut latency = base_latency;
        if !state.is_writable() {
            let done = self.fabric_acquire(now, line);
            latency += done.saturating_sub(now);
            crate::stats::inc(&mut self.stats.upgrades);
            self.invalidate_nonspec_copies(line, Some(c));
        }
        let (v, d) = self.l1s[c].line_mut(set, way);
        v.state = LineState::Modified;
        d.write_u64(offset, value);
        AccessResponse::Done {
            value,
            latency,
            sla_required: false,
        }
    }

    /// Speculative write hitting a local version: the dependence-enforcement
    /// core of §4.3 and the version-splitting of §4.2.
    #[allow(clippy::too_many_arguments)]
    fn spec_write(
        &mut self,
        now: Cycle,
        y: Vid,
        c: usize,
        line: LineAddr,
        set: usize,
        way: usize,
        offset: usize,
        value: u64,
        base_latency: u64,
        lookup: Vid,
    ) -> AccessResponse {
        let _ = lookup;
        let mut latency = base_latency;
        let state = self.l1s[c].meta(set, way).state;
        match state {
            LineState::SpecOwned | LineState::SpecShared => AccessResponse::Misspec {
                cause: MisspecCause::StoreToSupersededVersion {
                    addr: line.base(),
                    store_vid: y,
                },
                latency,
            },
            LineState::SpecModified | LineState::SpecExclusive => {
                let (m, h) = self.l1s[c].meta(set, way).vids();
                if y < h {
                    return AccessResponse::Misspec {
                        cause: MisspecCause::StoreBelowHighVid {
                            addr: line.base(),
                            store_vid: y,
                            high_vid: h,
                        },
                        latency,
                    };
                }
                self.note_phantom_store(c, set, way, y);
                if y == m {
                    // Same transaction already owns the latest version:
                    // write in place, invalidating any stale S-S copies that
                    // other threads of this MTX may hold (uncommitted value
                    // forwarding handed them out).
                    if self.l1s[c].meta(set, way).shared_hint {
                        let done = self.fabric_acquire(now, line);
                        latency += done.saturating_sub(now);
                        self.invalidate_ss_copies(line, m, Some(c));
                        self.l1s[c].meta_mut(set, way).shared_hint = false;
                    }
                    self.l1s[c].data_mut(set, way).write_u64(offset, value);
                    self.stats.record_spec_write(y, line);
                    return AccessResponse::Done {
                        value,
                        latency,
                        sla_required: false,
                    };
                }
                // y >= h and y != m: split — the current version is retained
                // unmodified in S-O(m, y); a new S-M(y, y) version holds the
                // store (Figure 4).
                let epoch = self.l1s[c].commit_epoch();
                let (v, d) = self.l1s[c].line_mut(set, way);
                v.state = LineState::SpecOwned;
                v.high_vid = y;
                let mut fresh = CacheLine {
                    meta: *v,
                    data: d.clone(),
                };
                fresh.state = LineState::SpecModified;
                fresh.mod_vid = y;
                fresh.high_vid = y;
                fresh.shared_hint = false;
                fresh.phantom_high = Vid::NON_SPECULATIVE;
                fresh.commit_epoch = epoch;
                fresh.data.write_u64(offset, value);
                if self.tracer.enabled() {
                    let retained = self.l1s[c].meta(set, way).describe();
                    self.tracer.record(TraceEvent::Split {
                        cycle: now,
                        addr: line.base(),
                        retained,
                        created: fresh.describe(),
                    });
                }
                self.stats.record_spec_write(y, line);
                match self.install_l1(c, fresh) {
                    Ok(()) => AccessResponse::Done {
                        value,
                        latency,
                        sla_required: false,
                    },
                    Err(cause) => AccessResponse::Misspec { cause, latency },
                }
            }
            // Non-speculative version: gain exclusivity if needed, then keep
            // the pre-speculative data as the S-O(0, y) backup and create
            // S-M(y, y) with the store applied.
            LineState::Owned | LineState::Shared | LineState::Modified | LineState::Exclusive => {
                if !state.is_writable() {
                    let done = self.fabric_acquire(now, line);
                    latency += done.saturating_sub(now);
                    crate::stats::inc(&mut self.stats.upgrades);
                    self.invalidate_nonspec_copies(line, Some(c));
                }
                self.note_phantom_store(c, set, way, y);
                let epoch = self.l1s[c].commit_epoch();
                let (v, d) = self.l1s[c].line_mut(set, way);
                v.state = LineState::SpecOwned;
                v.mod_vid = Vid::NON_SPECULATIVE;
                v.high_vid = y;
                let mut fresh = CacheLine {
                    meta: *v,
                    data: d.clone(),
                };
                fresh.state = LineState::SpecModified;
                fresh.mod_vid = y;
                fresh.high_vid = y;
                fresh.shared_hint = false;
                fresh.phantom_high = Vid::NON_SPECULATIVE;
                fresh.commit_epoch = epoch;
                fresh.data.write_u64(offset, value);
                if self.tracer.enabled() {
                    let retained = self.l1s[c].meta(set, way).describe();
                    self.tracer.record(TraceEvent::Split {
                        cycle: now,
                        addr: line.base(),
                        retained,
                        created: fresh.describe(),
                    });
                }
                self.stats.record_spec_write(y, line);
                match self.install_l1(c, fresh) {
                    Ok(()) => AccessResponse::Done {
                        value,
                        latency,
                        sla_required: false,
                    },
                    Err(cause) => AccessResponse::Misspec { cause, latency },
                }
            }
        }
    }

    /// Counts an abort avoided by the SLA filter: a store with VID `y` to a
    /// version carrying a wrong-path phantom mark above `y` would have
    /// aborted had the squashed load marked the line (§5.1, Table 1).
    fn note_phantom_store(&mut self, c: usize, set: usize, way: usize, y: Vid) {
        let v = self.l1s[c].meta_mut(set, way);
        if v.phantom_high > y {
            v.phantom_high = Vid::NON_SPECULATIVE;
            crate::stats::inc(&mut self.stats.sla_aborts_avoided);
        }
    }

    /// The L1-miss path: snoop peers, then L2, then main memory.
    fn miss(
        &mut self,
        now: Cycle,
        req: &AccessRequest,
        lookup: Vid,
    ) -> Result<AccessResponse, SimError> {
        let c = req.core.0;
        let line = req.addr.line();
        let is_write = matches!(req.kind, AccessKind::Write(_));
        let bus_done = self.fabric_acquire(now, line);
        let bus_latency = bus_done.saturating_sub(now);
        let peer_hop = match self.cfg.interconnect {
            Interconnect::SnoopyBus => 0,
            // Home bank forwards the request to the owning cache.
            Interconnect::Directory { hop_latency, .. } => hop_latency,
        };

        // Snoop peer L1s (processing pending commits first), collecting the
        // responder, the "shared" wire, and the §5.4 S-M assertion.
        let mut supplier: Option<(usize, usize)> = None;
        let mut shared_seen = false;
        let mut spec_mod_assert = false;
        for p in 0..self.l1s.len() {
            if p == c {
                // Local assertion still counts (a local S-M that failed the
                // hit predicate proves the line was speculatively modified).
                spec_mod_assert |= asserts_spec_modified(&self.l1s[p], line);
                continue;
            }
            Self::process_addr(&mut self.l1s[p], line);
            spec_mod_assert |= asserts_spec_modified(&self.l1s[p], line);
            if self.l1s[p].holds_addr(line) {
                shared_seen = true;
            }
            if supplier.is_none() {
                if let Some(way) = find_hit::<B>(&self.l1s[p], line, lookup) {
                    let set = self.l1s[p].set_index(line);
                    if self.l1s[p].meta(set, way).state.responds_to_snoops() {
                        supplier = Some((p, way));
                    }
                }
            }
        }

        if let Some((p, way)) = supplier {
            crate::stats::inc(&mut self.stats.peer_transfers);
            self.last_served = ServedFrom::Peer;
            let latency = bus_latency + peer_hop + self.cfg.l1.latency;
            return Ok(self.supply_from_peer(now, req, lookup, p, way, latency));
        }

        // L2 probe.
        Self::process_addr(&mut self.l2, line);
        spec_mod_assert |= asserts_spec_modified(&self.l2, line);
        if let Some(way) = find_hit::<B>(&self.l2, line, lookup) {
            crate::stats::inc(&mut self.stats.l2_hits);
            self.last_served = ServedFrom::L2;
            let set = self.l2.set_index(line);
            let mut version = self.l2.take(set, way);
            // Migrate into the L1 (mostly-exclusive hierarchy), adjusting
            // non-speculative sharing states.
            if !version.state.is_speculative() {
                version.state = nonspec_fill_state(version.state, shared_seen, is_write);
                if is_write || req.vid.is_speculative() && !req.wrong_path {
                    // Exclusive access required: purge other non-spec copies.
                    if shared_seen {
                        crate::stats::inc(&mut self.stats.upgrades);
                        let dirty = self.invalidate_nonspec_copies(line, Some(c));
                        if dirty {
                            version.state = LineState::Modified;
                        }
                    }
                    if version.state == LineState::Shared {
                        version.state = LineState::Exclusive;
                    } else if version.state == LineState::Owned {
                        version.state = LineState::Modified;
                    }
                }
            }
            version.commit_epoch = self.l1s[c].commit_epoch();
            let latency = bus_latency + self.cfg.l2.latency;
            return Ok(self.finish_fill(now, req, lookup, version, latency));
        }

        // §8 unbounded-sets extension: the memory-side overflow table holds
        // speculative versions that did not fit in the hierarchy.
        if self.cfg.unbounded_sets {
            spec_mod_assert |= self
                .overflow
                .values()
                .any(|l| l.addr == line && l.state == LineState::SpecModified);
            let key = self
                .overflow
                .iter()
                .find(|((a, _), l)| *a == line && B::version_hits(l, lookup))
                .map(|(k, _)| *k);
            if let Some(key) = key {
                let mut version = self.overflow.remove(&key).unwrap();
                crate::stats::inc(&mut self.stats.unbounded_fills);
                self.last_served = ServedFrom::OverflowTable;
                version.commit_epoch = self.l1s[c].commit_epoch();
                // Full memory round-trip plus the software table lookup.
                let latency = bus_latency + self.cfg.l2.latency + self.cfg.mem_latency + 40;
                return Ok(self.finish_fill(now, req, lookup, version, latency));
            }
        }

        // Main memory.
        crate::stats::inc(&mut self.stats.mem_fills);
        self.last_served = ServedFrom::Memory;
        let data = self.memory.read_line(line);
        let latency = bus_latency + self.cfg.l2.latency + self.cfg.mem_latency;
        let mut version = CacheLine::non_speculative(line, LineState::Exclusive);
        version.data = data;
        version.commit_epoch = self.l1s[c].commit_epoch();
        // Exclusive-requiring accesses must purge the silent non-speculative
        // S copies peers may hold (they never answer snoops, so reaching
        // memory does not mean the line is uncached).
        if shared_seen && (is_write || (req.vid.is_speculative() && !req.wrong_path)) {
            crate::stats::inc(&mut self.stats.upgrades);
            if self.invalidate_nonspec_copies(line, Some(c)) {
                version.state = LineState::Modified;
            }
        }
        if spec_mod_assert {
            // §5.4: the line was speculatively modified somewhere, so the
            // memory copy is the pre-speculative image: wrap it in
            // S-O(0, vid+1) so exactly the VIDs it is valid for can hit it.
            crate::stats::inc(&mut self.stats.overflow_refills);
            version.state = LineState::SpecOwned;
            version.high_vid = lookup.next();
            // Merge with any local non-hitting S-O(0, h') to preserve hit
            // uniqueness (ranges [0,h') and [0,vid+1) would overlap).
            let set = self.l1s[c].set_index(line);
            if let Some(w) = self.l1s[c].set_metas(set).iter().position(|l| {
                l.addr == line && l.state == LineState::SpecOwned && l.mod_vid.is_non_speculative()
            }) {
                let existing = self.l1s[c].meta_mut(set, w);
                if existing.high_vid < version.high_vid {
                    existing.high_vid = version.high_vid;
                }
                let way = w;
                self.l1s[c].touch(set, way);
                return Ok(self.local_access(now, req, lookup, set, way, latency));
            }
        } else if shared_seen && !is_write && (req.vid.is_non_speculative() || req.wrong_path) {
            version.state = LineState::Shared;
        }
        Ok(self.finish_fill(now, req, lookup, version, latency))
    }

    /// Supplies a version found in peer L1 `p` to requester `req.core`.
    fn supply_from_peer(
        &mut self,
        now: Cycle,
        req: &AccessRequest,
        lookup: Vid,
        p: usize,
        way: usize,
        latency: u64,
    ) -> AccessResponse {
        let c = req.core.0;
        let line = req.addr.line();
        let set = self.l1s[p].set_index(line);
        let is_write = matches!(req.kind, AccessKind::Write(_));
        let peer_state = self.l1s[p].meta(set, way).state;

        if !peer_state.is_speculative() {
            if is_write || (req.vid.is_speculative() && !req.wrong_path) {
                // Exclusive access: migrate the version, invalidating every
                // non-speculative copy in the system.
                let mut version = self.l1s[p].take(set, way);
                crate::stats::inc(&mut self.stats.upgrades);
                let dirty = self.invalidate_nonspec_copies(line, Some(c));
                version.state = if version.state.is_dirty() || dirty {
                    LineState::Modified
                } else {
                    LineState::Exclusive
                };
                version.commit_epoch = self.l1s[c].commit_epoch();
                return self.finish_fill(now, req, lookup, version, latency);
            }
            // Plain MOESI read sharing: peer downgrades, requester gets S.
            let (supplier, sdata) = self.l1s[p].line_mut(set, way);
            supplier.shared_hint = true;
            let mut copy = CacheLine {
                meta: *supplier,
                data: sdata.clone(),
            };
            match supplier.state {
                LineState::Modified => supplier.state = LineState::Owned,
                LineState::Exclusive => supplier.state = LineState::Shared,
                _ => {}
            }
            copy.state = LineState::Shared;
            copy.shared_hint = false;
            copy.phantom_high = Vid::NON_SPECULATIVE;
            copy.commit_epoch = self.l1s[c].commit_epoch();
            return self.finish_fill(now, req, lookup, copy, latency);
        }

        // Speculative version at the peer.
        if is_write {
            // Migrate the version for exclusive access; its S-S copies (if
            // any) become stale only if the write is in-place, which the
            // local write path invalidates via shared_hint.
            let mut version = self.l1s[p].take(set, way);
            version.commit_epoch = self.l1s[c].commit_epoch();
            return self.finish_fill(now, req, lookup, version, latency);
        }
        // Speculative-version read: the version migrates to the requester
        // ("Peer Requestor Receives Line in Local State", Figure 4), leaving
        // an S-S copy behind so the supplier can keep reading it. Figure 5
        // instruction 4: Cache 2 receives S-O(1,2), Cache 1 keeps S-S(1,2).
        // This is uncommitted value forwarding across caches (§3, property 2).
        if req.wrong_path {
            let (supplier, sdata) = self.l1s[p].line_mut(set, way);
            if req.vid.is_speculative() && req.vid > supplier.phantom_high {
                supplier.phantom_high = req.vid;
            }
            let value = sdata.read_u64(req.addr.line_offset());
            return AccessResponse::Done {
                value,
                latency,
                sla_required: false,
            };
        }
        let mut version = self.l1s[p].take(set, way);
        let mut sla_required = false;
        if req.vid.is_speculative()
            && matches!(
                version.state,
                LineState::SpecModified | LineState::SpecExclusive
            )
            && req.vid > version.high_vid
        {
            version.high_vid = req.vid;
            sla_required = true;
        }
        let mut residue = version.clone();
        residue.state = LineState::SpecShared;
        residue.shared_hint = false;
        residue.phantom_high = Vid::NON_SPECULATIVE;
        version.commit_epoch = self.l1s[c].commit_epoch();
        if self.cfg.hmtx.seed_bug == Some(hmtx_types::SeedBug::StaleMigrationReplica) {
            // Planted defect (correctness-tool validation only): keep the
            // supplier's copy live in its original state instead of the S-S
            // demotion, so two caches own the same version.
            let _ = self.install_l1(p, version.clone());
        } else if residue.mod_vid < residue.high_vid {
            // A zero-width range (m == h) can never hit; don't bother.
            version.shared_hint = true;
            let _ = self.install_l1(p, residue);
        }
        let value = version.data.read_u64(req.addr.line_offset());
        if req.vid.is_speculative() {
            self.record_sla(sla_required);
            self.stats.record_spec_read(req.vid, line);
        }
        match self.install_l1(c, version) {
            Ok(()) => AccessResponse::Done {
                value,
                latency,
                sla_required,
            },
            Err(cause) => AccessResponse::Misspec { cause, latency },
        }
    }

    /// Installs a fetched version into the requester's L1 and completes the
    /// access against it.
    fn finish_fill(
        &mut self,
        now: Cycle,
        req: &AccessRequest,
        lookup: Vid,
        version: CacheLine,
        latency: u64,
    ) -> AccessResponse {
        let c = req.core.0;
        let line = version.addr;
        if let Err(cause) = self.install_l1(c, version) {
            return AccessResponse::Misspec { cause, latency };
        }
        let way = find_hit::<B>(&self.l1s[c], line, lookup)
            .expect("freshly installed version must satisfy the hit predicate");
        let set = self.l1s[c].set_index(line);
        self.l1s[c].touch(set, way);
        self.local_access(now, req, lookup, set, way, latency)
    }

    /// Installs a version into L1 `c`, merging duplicates of the same
    /// `(address, modVID)` version and spilling any victim to the L2.
    fn install_l1(&mut self, c: usize, version: CacheLine) -> Result<(), MisspecCause> {
        let set = self.l1s[c].set_index(version.addr);
        Self::process_set(&mut self.l1s[c], set);
        if let Some(w) = merge_target(self.l1s[c].set_metas(set), &version.meta) {
            let (em, ed) = self.l1s[c].line_mut(set, w);
            merge_into(em, ed, version);
            self.l1s[c].touch(set, w);
            return Ok(());
        }
        let out = self.l1s[c].insert(version, self.cfg.hmtx.victim_policy);
        if let Some(victim) = out.evicted {
            // Clean non-speculative victims vanish silently; everything else
            // is installed into the L2 ("any of the versions can be written
            // back to the next level cache", §4.1).
            if victim.state.is_speculative() || victim.state.is_dirty() {
                self.install_l2(victim)?;
            }
        }
        Ok(())
    }

    /// Installs a version into the shared L2, spilling victims to memory or
    /// aborting per §5.4.
    fn install_l2(&mut self, version: CacheLine) -> Result<(), MisspecCause> {
        let set = self.l2.set_index(version.addr);
        Self::process_set(&mut self.l2, set);
        if let Some(w) = merge_target(self.l2.set_metas(set), &version.meta) {
            let (em, ed) = self.l2.line_mut(set, w);
            merge_into(em, ed, version);
            return Ok(());
        }
        let out = self.l2.insert(version, self.cfg.hmtx.victim_policy);
        if let Some(victim) = out.evicted {
            if !victim.state.is_speculative() {
                if victim.state.is_dirty() {
                    self.memory.write_line(victim.addr, victim.data);
                }
            } else if victim.safe_to_overflow() {
                // S-O(0,·): holds the committed pre-speculative image, safe
                // to spill; the S-M assertion will reconstruct its state on
                // a future miss (§5.4).
                crate::stats::inc(&mut self.stats.safe_overflow_writebacks);
                self.memory.write_line(victim.addr, victim.data);
            } else if victim.state == LineState::SpecShared {
                // A replica; the owner version still answers. Dropping it
                // loses no information.
            } else if self.cfg.unbounded_sets {
                // §8 extension: spill the speculative version into the
                // memory-side overflow table instead of aborting.
                crate::stats::inc(&mut self.stats.unbounded_spills);
                self.overflow.insert((victim.addr, victim.mod_vid), victim);
            } else {
                return Err(MisspecCause::SpecOverflow {
                    addr: victim.addr.base(),
                });
            }
        }
        Ok(())
    }

    /// Group commit of every transaction with VID `<= vid` (§4.4/§5.3).
    /// Returns the latency of the commit broadcast.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NonConsecutiveCommit`] if `vid` is not the
    /// successor of the last committed VID (software must commit in order,
    /// §4.7).
    pub fn commit(&mut self, now: Cycle, vid: Vid) -> Result<u64, SimError> {
        if vid != self.last_committed.next() {
            return Err(SimError::NonConsecutiveCommit {
                expected: self.last_committed.next().0,
                got: vid.0,
            });
        }
        self.last_committed = vid;
        let bus_done = self.bus.acquire(now);
        let mut latency = bus_done.saturating_sub(now) + self.cfg.hmtx.commit_broadcast_latency;
        let lazy = self.cfg.hmtx.lazy_commit;
        let mut walked = 0u64;
        for cache in self.l1s.iter_mut().chain(std::iter::once(&mut self.l2)) {
            cache.set_lc_vid(vid);
            if lazy {
                cache.bump_commit_epoch();
            } else {
                // Eager ablation: walk the entire cache now, charging cycles
                // per line (the naive scheme of §4.4 / Vachharajani).
                cache.bump_commit_epoch();
                let epoch = cache.commit_epoch();
                cache.for_each_line_mut(|l, _| {
                    walked += 1;
                    l.commit_epoch = epoch;
                    match B::apply_commit(l, vid) {
                        Outcome::Keep => LineFate::Keep,
                        Outcome::Invalidate => LineFate::Invalidate,
                    }
                });
            }
        }
        crate::stats::add(&mut self.stats.eager_commit_lines_walked, walked);
        latency += walked * self.cfg.hmtx.eager_commit_per_line_cost;
        latency += self.process_overflow_commit(vid);
        self.tracer.record(TraceEvent::Commit { cycle: now, vid });
        crate::stats::inc(&mut self.stats.commits);
        self.stats.finalize_committed(vid);
        Ok(latency)
    }

    /// Applies commit processing to the §8 overflow table (a
    /// software-managed structure, so it is walked rather than flash-set).
    /// Committed dirty data drains to memory. Returns the walk latency.
    fn process_overflow_commit(&mut self, lc: Vid) -> u64 {
        if self.overflow.is_empty() {
            return 0;
        }
        let walked = self.overflow.len() as u64;
        let mut dirty: Vec<(LineAddr, LineData)> = Vec::new();
        self.overflow
            .retain(|_, line| match B::apply_commit(line, lc) {
                Outcome::Invalidate => false,
                Outcome::Keep => {
                    if line.state.is_speculative() {
                        true
                    } else {
                        if line.state.is_dirty() {
                            dirty.push((line.addr, line.data.clone()));
                        }
                        false
                    }
                }
            });
        for (a, d) in dirty {
            self.memory.write_line(a, d);
        }
        walked * self.cfg.hmtx.eager_commit_per_line_cost
    }

    /// Aborts every uncommitted transaction: all speculative state is
    /// flushed (§4.4). Pending commit processing is applied first so that
    /// committed-but-unprocessed lines survive. Returns the abort latency.
    pub fn abort_all(&mut self, now: Cycle) -> u64 {
        let bus_done = self.bus.acquire(now);
        let latency = bus_done.saturating_sub(now) + self.cfg.hmtx.commit_broadcast_latency;
        for cache in self.l1s.iter_mut().chain(std::iter::once(&mut self.l2)) {
            let lc = cache.lc_vid();
            cache.bump_commit_epoch();
            let epoch = cache.commit_epoch();
            cache.for_each_line_mut(|l, _| {
                l.commit_epoch = epoch;
                if B::apply_commit(l, lc) == Outcome::Invalidate {
                    return LineFate::Invalidate;
                }
                match B::apply_abort(l) {
                    Outcome::Keep => LineFate::Keep,
                    Outcome::Invalidate => LineFate::Invalidate,
                }
            });
        }
        let lc = self.last_committed;
        let mut dirty: Vec<(LineAddr, LineData)> = Vec::new();
        self.overflow.retain(|_, line| {
            if B::apply_commit(line, lc) == Outcome::Invalidate {
                return false;
            }
            if B::apply_abort(line) == Outcome::Invalidate {
                return false;
            }
            if line.state.is_dirty() {
                dirty.push((line.addr, line.data.clone()));
            }
            false
        });
        for (a, d) in dirty {
            self.memory.write_line(a, d);
        }
        self.restore_coherence_after_abort();
        self.tracer.record(TraceEvent::Abort { cycle: now });
        crate::stats::inc(&mut self.stats.aborts);
        self.stats.discard_uncommitted();
        self.abort_seen_since_reset = true;
        latency
    }

    /// Restores single-owner MOESI coherence after abort processing.
    ///
    /// Figure 7 restores each surviving version in isolation, which is
    /// correct for the sole copy of a line but not once uncommitted value
    /// forwarding has replicated version-0 data: the forwarding head
    /// `S-E(0,h)`/`S-M(0,h)` reverts to E/M while its `S-S(0,h)` residues in
    /// peer caches revert to S. An E or M copy coexisting with S copies
    /// breaks the exclusivity assumption of every upgrade path (they only
    /// purge *non-speculative* peers), which lets a later speculative
    /// upgrade mint a second `S-E` head — and the next abort then leaves two
    /// Exclusive copies of one line. All replicas hold identical version-0
    /// bytes, so demoting E to S and keeping a single dirty owner (extra
    /// dirty replicas become S) loses no data.
    fn restore_coherence_after_abort(&mut self) {
        let mut copies: HashMap<LineAddr, u32> = HashMap::new();
        for cache in self.l1s.iter().chain(std::iter::once(&self.l2)) {
            for set in 0..cache.config().num_sets() {
                for l in cache.set_metas(set) {
                    *copies.entry(l.addr).or_insert(0) += 1;
                }
            }
        }
        let mut owner_seen: std::collections::HashSet<LineAddr> = std::collections::HashSet::new();
        for cache in self.l1s.iter_mut().chain(std::iter::once(&mut self.l2)) {
            cache.for_each_line_mut(|l, _| {
                if copies.get(&l.addr).copied().unwrap_or(0) > 1 {
                    match l.state {
                        LineState::Exclusive => l.state = LineState::Shared,
                        LineState::Modified | LineState::Owned => {
                            l.state = if owner_seen.insert(l.addr) {
                                LineState::Owned
                            } else {
                                LineState::Shared
                            };
                        }
                        _ => {}
                    }
                }
                LineFate::Keep
            });
        }
    }

    /// VID reset (§4.6): requires every outstanding transaction to have
    /// committed. Clears all line VIDs and LC VID registers so numbering can
    /// restart at 1. Returns the reset latency.
    pub fn vid_reset(&mut self, now: Cycle) -> u64 {
        let bus_done = self.bus.acquire(now);
        let latency = bus_done.saturating_sub(now) + self.cfg.hmtx.vid_reset_latency;
        for cache in self.l1s.iter_mut().chain(std::iter::once(&mut self.l2)) {
            let lc = cache.lc_vid();
            cache.bump_commit_epoch();
            let epoch = cache.commit_epoch();
            cache.for_each_line_mut(|l, _| {
                l.commit_epoch = epoch;
                if B::apply_commit(l, lc) == Outcome::Invalidate {
                    return LineFate::Invalidate;
                }
                match B::apply_vid_reset(l) {
                    Outcome::Keep => LineFate::Keep,
                    Outcome::Invalidate => LineFate::Invalidate,
                }
            });
            cache.set_lc_vid(Vid::NON_SPECULATIVE);
        }
        let lc_before = self.last_committed;
        self.process_overflow_commit(lc_before);
        debug_assert!(
            self.overflow.is_empty(),
            "VID reset requires every outstanding transaction to have committed"
        );
        self.tracer.record(TraceEvent::VidReset { cycle: now });
        self.last_committed = Vid::NON_SPECULATIVE;
        self.abort_seen_since_reset = false;
        crate::stats::inc(&mut self.stats.vid_resets);
        latency
    }

    /// Verifies a speculative load acknowledgment (§5.1): the value loaded
    /// must still match the line's current content for this VID.
    ///
    /// In this in-order simulator the check always passes on real execution
    /// paths; the entry point exists to model (and test) the architectural
    /// check itself.
    pub fn verify_sla(&mut self, addr: Addr, vid: Vid, value: u64) -> Option<MisspecCause> {
        let line = addr.line();
        let offset = addr.line_offset();
        for cache in self.l1s.iter().chain(std::iter::once(&self.l2)) {
            if let Some(way) = find_hit::<B>(cache, line, vid) {
                let set = cache.set_index(line);
                let v = cache.meta(set, way);
                if v.state.responds_to_snoops() || cache.ways_of(line).len() == 1 {
                    if cache.data(set, way).read_u64(offset) != value {
                        return Some(MisspecCause::SlaValueMismatch { addr, vid });
                    }
                    return None;
                }
            }
        }
        if self.memory.read_word(addr) != value {
            return Some(MisspecCause::SlaValueMismatch { addr, vid });
        }
        None
    }

    /// Applies pending commit processing everywhere, writes every dirty
    /// committed line back to memory, and empties the caches. Used at the
    /// end of a run so [`MainMemory::fingerprint`] reflects the final
    /// committed image.
    ///
    /// # Errors
    ///
    /// Returns the descriptions of any live speculative lines, which would
    /// indicate uncommitted transactions (a harness bug).
    pub fn drain_committed(&mut self) -> Result<(), Vec<String>> {
        let mut leftovers = Vec::new();
        // Collect dirty lines first, then clear.
        let mut dirty: Vec<(LineAddr, LineData)> = Vec::new();
        for cache in self.l1s.iter_mut().chain(std::iter::once(&mut self.l2)) {
            let lc = cache.lc_vid();
            cache.for_each_line_mut(|l, d| {
                if B::apply_commit(l, lc) == Outcome::Invalidate {
                    return LineFate::Invalidate;
                }
                if l.state.is_speculative() {
                    leftovers.push(l.describe());
                } else if l.state.is_dirty() {
                    dirty.push((l.addr, d.clone()));
                }
                LineFate::Invalidate
            });
        }
        self.process_overflow_commit(self.last_committed);
        for (_, line) in std::mem::take(&mut self.overflow) {
            leftovers.push(line.describe());
        }
        for (addr, data) in dirty {
            self.memory.write_line(addr, data);
        }
        if !leftovers.is_empty() {
            return Err(leftovers);
        }
        Ok(())
    }

    /// Reports the stored versions of `addr` across the hierarchy in the
    /// paper's Figure 5 notation, e.g. `[("L1[0]", "S-O(0,1)"), ...]`.
    pub fn line_states(&self, addr: Addr) -> Vec<(String, String)> {
        let line = addr.line();
        let mut out = Vec::new();
        for (i, cache) in self.l1s.iter().enumerate() {
            let set = cache.set_index(line);
            for l in cache.set_metas(set) {
                if l.addr == line {
                    out.push((format!("L1[{i}]"), l.describe()));
                }
            }
        }
        let set = self.l2.set_index(line);
        for l in self.l2.set_metas(set) {
            if l.addr == line {
                out.push(("L2".to_string(), l.describe()));
            }
        }
        out
    }

    /// Reads the word at `addr` as seen by VID `vid` without disturbing any
    /// state (test/diagnostic helper; does not model latency or marking).
    pub fn peek_word(&self, addr: Addr, vid: Vid) -> u64 {
        let line = addr.line();
        let offset = addr.line_offset();
        for cache in self.l1s.iter().chain(std::iter::once(&self.l2)) {
            // Non-speculative peeks use the cache's LC VID, like real
            // VID-0 accesses (§5.3).
            let vid = if vid.is_speculative() {
                vid
            } else {
                cache.lc_vid()
            };
            if let Some(way) = find_hit::<B>(cache, line, vid) {
                let set = cache.set_index(line);
                if cache.meta(set, way).state.responds_to_snoops() {
                    return cache.data(set, way).read_u64(offset);
                }
            }
        }
        // Fall back to any silent copy, then memory.
        for cache in self.l1s.iter().chain(std::iter::once(&self.l2)) {
            let vid = if vid.is_speculative() {
                vid
            } else {
                cache.lc_vid()
            };
            if let Some(way) = find_hit::<B>(cache, line, vid) {
                let set = cache.set_index(line);
                return cache.data(set, way).read_u64(offset);
            }
        }
        self.memory.read_word(addr)
    }

    // ---- internal helpers ----

    /// Applies pending lazy-commit processing to every version of `line` in
    /// its set.
    fn process_addr(cache: &mut Cache, line: LineAddr) {
        let set = cache.set_index(line);
        Self::process_set(cache, set);
    }

    /// Applies pending lazy-commit processing to a whole set.
    fn process_set(cache: &mut Cache, set: usize) {
        let epoch = cache.commit_epoch();
        let lc = cache.lc_vid();
        cache.retain_set(set, |l| {
            if l.commit_epoch >= epoch {
                return LineFate::Keep;
            }
            l.commit_epoch = epoch;
            match B::apply_commit(l, lc) {
                Outcome::Keep => LineFate::Keep,
                Outcome::Invalidate => LineFate::Invalidate,
            }
        });
    }

    /// Invalidates every non-speculative copy of `line` outside `except`,
    /// in peer L1s and the L2. Returns whether any invalidated copy was
    /// dirty (the dirty bit migrates to the new owner).
    fn invalidate_nonspec_copies(&mut self, line: LineAddr, except: Option<usize>) -> bool {
        let mut dirty = false;
        for (i, cache) in self.l1s.iter_mut().enumerate() {
            if Some(i) == except {
                continue;
            }
            let set = cache.set_index(line);
            cache.retain_set(set, |l| {
                if l.addr == line && !l.state.is_speculative() {
                    dirty |= l.state.is_dirty();
                    LineFate::Invalidate
                } else {
                    LineFate::Keep
                }
            });
        }
        let set = self.l2.set_index(line);
        self.l2.retain_set(set, |l| {
            if l.addr == line && !l.state.is_speculative() {
                dirty |= l.state.is_dirty();
                LineFate::Invalidate
            } else {
                LineFate::Keep
            }
        });
        dirty
    }

    /// Invalidates every S-S replica of version `(line, m)` outside
    /// `except` (stale after an in-place write by the owning transaction).
    fn invalidate_ss_copies(&mut self, line: LineAddr, m: Vid, except: Option<usize>) {
        for (i, cache) in self.l1s.iter_mut().enumerate() {
            if Some(i) == except {
                continue;
            }
            let set = cache.set_index(line);
            cache.retain_set(set, |l| {
                if l.addr == line && l.state == LineState::SpecShared && l.mod_vid == m {
                    LineFate::Invalidate
                } else {
                    LineFate::Keep
                }
            });
        }
        let set = self.l2.set_index(line);
        self.l2.retain_set(set, |l| {
            if l.addr == line && l.state == LineState::SpecShared && l.mod_vid == m {
                LineFate::Invalidate
            } else {
                LineFate::Keep
            }
        });
    }

    /// Records §4.5 comparator activity for an L1 probe.
    fn count_compares(&mut self, c: usize, line: LineAddr, lookup: Vid) {
        let set = self.l1s[c].set_index(line);
        let bits = self.cfg.hmtx.vid_bits;
        let cache = &self.l1s[c];
        let stats = &mut self.stats;
        for l in cache.set_metas(set) {
            if l.addr == line {
                stats.record_vid_compare(lookup, l.mod_vid, bits);
            }
        }
    }

    /// Acquires the coherence fabric for a data request on `line` issued at
    /// `now`, returning when the request's routing completes. On the snoopy
    /// bus every request serializes globally; with a banked directory only
    /// the line's home bank serializes and point-to-point hops are charged
    /// (§8's scaling extension).
    fn fabric_acquire(&mut self, now: Cycle, line: LineAddr) -> Cycle {
        match self.cfg.interconnect {
            Interconnect::SnoopyBus => self.bus.acquire(now),
            Interconnect::Directory { hop_latency, .. } => {
                let bank = (line.0 as usize) & (self.banks.len() - 1);
                crate::stats::inc(&mut self.stats.directory_lookups);
                // Requester -> home bank -> (owner handled by caller).
                self.banks[bank].acquire(now) + 2 * hop_latency
            }
        }
    }

    fn record_sla(&mut self, required: bool) {
        if required {
            crate::stats::inc(&mut self.stats.slas_sent);
        } else {
            crate::stats::inc(&mut self.stats.slas_skipped);
        }
    }
}

/// Finds the way holding the version of `line` that the hit predicate
/// selects for `lookup`, if any. Debug builds assert hit uniqueness.
fn find_hit<B: ProtocolBackend>(cache: &Cache, line: LineAddr, lookup: Vid) -> Option<usize> {
    let set = cache.set_index(line);
    let lines = cache.set_metas(set);
    let mut found: Option<usize> = None;
    for (i, l) in lines.iter().enumerate() {
        if l.addr == line && B::version_hits(l, lookup) {
            debug_assert!(
                found.is_none(),
                "hit predicate matched two versions: {} and {}",
                lines[found.unwrap()].describe(),
                l.describe()
            );
            found = Some(i);
            #[cfg(not(debug_assertions))]
            break;
        }
    }
    found
}

/// Whether any S-M version of `line` in `cache` fails to satisfy requests —
/// the §5.4 assertion that the line was speculatively modified, so a memory
/// fill must be wrapped in `S-O(0, vid+1)`.
fn asserts_spec_modified(cache: &Cache, line: LineAddr) -> bool {
    let set = cache.set_index(line);
    cache
        .set_metas(set)
        .iter()
        .any(|l| l.addr == line && l.state == LineState::SpecModified)
}

/// Adjusts a non-speculative state for supply to a reader.
fn nonspec_fill_state(state: LineState, shared_seen: bool, is_write: bool) -> LineState {
    if is_write {
        return state;
    }
    match state {
        LineState::Modified | LineState::Owned => {
            if shared_seen {
                LineState::Owned
            } else {
                LineState::Modified
            }
        }
        LineState::Exclusive | LineState::Shared => {
            if shared_seen {
                LineState::Shared
            } else {
                LineState::Exclusive
            }
        }
        other => other,
    }
}

/// Picks the way an incoming version should merge into: an existing version
/// with the same `(address, modVID)` (a replica of the same version).
fn merge_target(lines: &[LineMeta], incoming: &LineMeta) -> Option<usize> {
    lines.iter().position(|l| {
        l.addr == incoming.addr && l.mod_vid == incoming.mod_vid && same_family(l, incoming)
    })
}

fn same_family(a: &LineMeta, b: &LineMeta) -> bool {
    // Only merge replicas within the speculative family (an S-S copy with
    // its owner, or two S-S copies). Distinct non-speculative states or a
    // speculative/non-speculative pair are different lines logically.
    a.state.is_speculative() == b.state.is_speculative()
}

/// Merges `incoming` into `existing`: owner states win over S-S replicas,
/// and the wider `highVID` range is kept.
fn merge_into(existing: &mut LineMeta, existing_data: &mut LineData, incoming: CacheLine) {
    let CacheLine {
        meta: incoming,
        data: incoming_data,
    } = incoming;
    let existing_is_owner = existing.state.responds_to_snoops();
    let incoming_is_owner = incoming.state.responds_to_snoops();
    if incoming_is_owner && !existing_is_owner {
        let high = existing.high_vid.max(incoming.high_vid);
        *existing = incoming;
        *existing_data = incoming_data;
        existing.high_vid = high;
    } else {
        if incoming.high_vid > existing.high_vid {
            existing.high_vid = incoming.high_vid;
        }
        if incoming_is_owner {
            existing.state = incoming.state;
            *existing_data = incoming_data;
        }
        if incoming.phantom_high > existing.phantom_high {
            existing.phantom_high = incoming.phantom_high;
        }
    }
}
