//! Protocol event tracing: an optional, bounded log of what the memory
//! system did — which level served each access, version splits, commits,
//! aborts, resets, and overflow traffic. Intended for debugging parallelized
//! programs and for teaching the protocol (the Figure 5 walkthrough uses
//! it).

use std::fmt;

use hmtx_types::{Addr, CoreId, Cycle, Vid};

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// Local L1 hit.
    L1,
    /// Cache-to-cache transfer from a peer L1.
    Peer,
    /// Shared L2.
    L2,
    /// Main memory.
    Memory,
    /// The §8 unbounded-sets overflow table.
    OverflowTable,
}

impl fmt::Display for ServedFrom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ServedFrom::L1 => "L1",
            ServedFrom::Peer => "peer",
            ServedFrom::L2 => "L2",
            ServedFrom::Memory => "memory",
            ServedFrom::OverflowTable => "overflow",
        };
        f.write_str(s)
    }
}

/// One traced protocol event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A load or store completed.
    Access {
        /// Issue cycle.
        cycle: Cycle,
        /// Issuing core.
        core: CoreId,
        /// Byte address.
        addr: Addr,
        /// Request VID.
        vid: Vid,
        /// `true` for stores.
        write: bool,
        /// Where the version came from.
        served: ServedFrom,
        /// Total latency charged.
        latency: u64,
    },
    /// A speculative write split a version (`S-O(m,y)` retained,
    /// `S-M(y,y)` created).
    Split {
        /// Cycle of the split.
        cycle: Cycle,
        /// Line base address.
        addr: Addr,
        /// The retained unmodified copy, e.g. `S-O(1,2)`.
        retained: String,
        /// The new version, e.g. `S-M(2,2)`.
        created: String,
    },
    /// Misspeculation was detected.
    Misspec {
        /// Cycle of detection.
        cycle: Cycle,
        /// Rendered cause.
        cause: String,
    },
    /// Group commit of a VID.
    Commit {
        /// Cycle of the broadcast.
        cycle: Cycle,
        /// Committed VID.
        vid: Vid,
    },
    /// All uncommitted state flushed.
    Abort {
        /// Cycle of the flush.
        cycle: Cycle,
    },
    /// VID reset broadcast (§4.6).
    VidReset {
        /// Cycle of the reset.
        cycle: Cycle,
    },
    /// The deterministic fault plan injected a fault (chaos testing).
    FaultInjected {
        /// Cycle of the injection.
        cycle: Cycle,
        /// Site name, e.g. `spurious-conflict`.
        site: &'static str,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Access {
                cycle,
                core,
                addr,
                vid,
                write,
                served,
                latency,
            } => write!(
                f,
                "[{cycle:>8}] {core} {} {addr} {vid} <- {served} ({latency} cyc)",
                if *write { "st" } else { "ld" }
            ),
            TraceEvent::Split {
                cycle,
                addr,
                retained,
                created,
            } => {
                write!(
                    f,
                    "[{cycle:>8}] split {addr}: keep {retained}, new {created}"
                )
            }
            TraceEvent::Misspec { cycle, cause } => write!(f, "[{cycle:>8}] MISSPEC {cause}"),
            TraceEvent::Commit { cycle, vid } => write!(f, "[{cycle:>8}] commit {vid}"),
            TraceEvent::Abort { cycle } => write!(f, "[{cycle:>8}] abort-all"),
            TraceEvent::VidReset { cycle } => write!(f, "[{cycle:>8}] vid-reset"),
            TraceEvent::FaultInjected { cycle, site } => {
                write!(f, "[{cycle:>8}] FAULT {site}")
            }
        }
    }
}

/// A bounded trace buffer (oldest events dropped past the capacity).
#[derive(Debug, Default, Clone)]
pub struct Tracer {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Tracer {
    /// Whether tracing is on.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Enables tracing with the given capacity (0 disables).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.events.clear();
        self.dropped = 0;
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.remove(0);
            self.dropped += 1;
        }
        self.events.push(event);
    }

    /// Takes the buffered events, leaving the tracer enabled and empty.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Renders a trace as one event per line.
pub fn render_trace(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&format!("{e}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_buffer_drops_oldest() {
        let mut t = Tracer::default();
        assert!(!t.enabled());
        t.set_capacity(2);
        for i in 0..4 {
            t.record(TraceEvent::Commit {
                cycle: i,
                vid: Vid(i as u16 + 1),
            });
        }
        let events = t.take();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            TraceEvent::Commit {
                cycle: 2,
                vid: Vid(3)
            }
        );
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::default();
        t.record(TraceEvent::Abort { cycle: 1 });
        assert!(t.take().is_empty());
    }

    #[test]
    fn events_render_readably() {
        let e = TraceEvent::Access {
            cycle: 42,
            core: CoreId(1),
            addr: Addr(0x100),
            vid: Vid(3),
            write: true,
            served: ServedFrom::Peer,
            latency: 9,
        };
        let s = e.to_string();
        assert!(s.contains("core1"));
        assert!(s.contains("st"));
        assert!(s.contains("peer"));
        assert!(render_trace(&[e]).ends_with('\n'));
    }
}
