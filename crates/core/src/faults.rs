//! Deterministic fault injection: the seeded, replayable plan that decides
//! *when* the memory system, the machine, and the runtime inject the
//! adversarial events of §5–§8 (spurious conflicts, wrong-path load storms,
//! queue delays, VID and cache capacity squeezes).
//!
//! Every decision is a pure function of `(seed, site, per-site counter)`
//! driven by SplitMix64, so a given [`FaultConfig`] replays the identical
//! fault schedule on every run and host — which is what lets the chaos suite
//! assert that committed outputs are byte-identical to the fault-free run
//! for *any* schedule, and lets a failing seed be checked in as a
//! regression.
//!
//! # Examples
//!
//! ```
//! use hmtx_core::faults::{FaultPlan, FaultSite};
//! use hmtx_types::FaultConfig;
//!
//! let mut a = FaultPlan::new(FaultConfig::chaos(42, 500_000));
//! let mut b = FaultPlan::new(FaultConfig::chaos(42, 500_000));
//! for _ in 0..100 {
//!     assert_eq!(
//!         a.fire(FaultSite::SpuriousConflict),
//!         b.fire(FaultSite::SpuriousConflict),
//!     );
//! }
//! ```

use hmtx_types::FaultConfig;

/// An injection point class. Each site draws from its own decision stream,
/// so enabling or disabling one class never perturbs the schedule of
/// another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A speculative memory access is answered with a conflict
    /// misspeculation before touching any cache state.
    SpuriousConflict,
    /// A retired branch is forced down its wrong path as if mispredicted
    /// (§5.1 SLA stress).
    WrongPathStorm,
    /// A hardware queue operation is charged extra latency.
    QueueDelay,
}

impl FaultSite {
    /// Human-readable site name (trace events, reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::SpuriousConflict => "spurious-conflict",
            FaultSite::WrongPathStorm => "wrong-path-storm",
            FaultSite::QueueDelay => "queue-delay",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::SpuriousConflict => 0,
            FaultSite::WrongPathStorm => 1,
            FaultSite::QueueDelay => 2,
        }
    }

    fn tag(self) -> u64 {
        // Arbitrary fixed stream separators (changing one reshuffles only
        // that site's schedule).
        [
            0x5350_4543_434f_4e46, // "SPECCONF"
            0x5750_5354_4f52_4d21, // "WPSTORM!"
            0x5155_4555_4544_4c59, // "QUEUEDLY"
        ][self.index()]
    }
}

const SITE_COUNT: usize = 3;

/// SplitMix64 finalizer: a high-quality 64-bit mix.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a deterministic value in `[0, bound)` from a seed and a stream
/// tag, without any plan state. Used for one-shot decisions such as the VID
/// and cache squeezes the runtime applies before a run starts.
pub fn derive(seed: u64, stream: u64, bound: u64) -> u64 {
    assert!(bound > 0, "empty derivation domain");
    mix(seed ^ mix(stream)) % bound
}

/// The seeded, replayable fault plan. One instance lives in the memory
/// system and one in the machine; both are deterministic functions of the
/// shared seed and their own per-site counters, so the combined schedule is
/// replayable even though the two consult their plans independently.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    counters: [u64; SITE_COUNT],
    injected: [u64; SITE_COUNT],
}

impl FaultPlan {
    /// Builds the plan for `cfg`.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan {
            cfg,
            counters: [0; SITE_COUNT],
            injected: [0; SITE_COUNT],
        }
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    fn site_enabled(&self, site: FaultSite) -> bool {
        match site {
            FaultSite::SpuriousConflict => self.cfg.spurious_conflicts,
            FaultSite::WrongPathStorm => self.cfg.wrong_path_storms,
            FaultSite::QueueDelay => self.cfg.queue_delays,
        }
    }

    /// Decides whether the next visit of `site` injects a fault. Advances
    /// that site's decision stream even when the site is disabled, so
    /// toggling one fault class never reshuffles another's schedule.
    pub fn fire(&mut self, site: FaultSite) -> bool {
        let i = site.index();
        let n = self.counters[i];
        self.counters[i] += 1;
        if !self.site_enabled(site) {
            return false;
        }
        let hit = mix(self.cfg.seed ^ site.tag() ^ mix(n)) % 1_000_000 < self.cfg.rate_ppm as u64;
        if hit {
            self.injected[i] += 1;
        }
        hit
    }

    /// A deterministic magnitude in `[1, bound]` for the fault that just
    /// fired at `site` (e.g. how many extra cycles a queue delay costs).
    pub fn magnitude(&self, site: FaultSite, bound: u64) -> u64 {
        let n = self.counters[site.index()];
        1 + mix(self.cfg.seed ^ site.tag().rotate_left(17) ^ mix(n)) % bound.max(1)
    }

    /// Total faults injected at `site` so far.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_identically() {
        let mut a = FaultPlan::new(FaultConfig::chaos(99, 100_000));
        let mut b = FaultPlan::new(FaultConfig::chaos(99, 100_000));
        for k in 0..1_000 {
            let site = match k % 3 {
                0 => FaultSite::SpuriousConflict,
                1 => FaultSite::WrongPathStorm,
                _ => FaultSite::QueueDelay,
            };
            assert_eq!(a.fire(site), b.fire(site));
            assert_eq!(a.magnitude(site, 64), b.magnitude(site, 64));
        }
        assert_eq!(
            a.injected(FaultSite::QueueDelay),
            b.injected(FaultSite::QueueDelay)
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultPlan::new(FaultConfig::chaos(1, 500_000));
        let mut b = FaultPlan::new(FaultConfig::chaos(2, 500_000));
        let divergence = (0..256)
            .filter(|_| {
                a.fire(FaultSite::SpuriousConflict) != b.fire(FaultSite::SpuriousConflict)
            })
            .count();
        assert!(divergence > 0, "seeds must produce distinct schedules");
    }

    #[test]
    fn rate_is_roughly_honored() {
        let mut p = FaultPlan::new(FaultConfig::chaos(7, 250_000)); // 25%
        let hits = (0..10_000)
            .filter(|_| p.fire(FaultSite::SpuriousConflict))
            .count();
        assert!(
            (1_500..=3_500).contains(&hits),
            "25% nominal rate produced {hits}/10000"
        );
        assert_eq!(p.injected(FaultSite::SpuriousConflict), hits as u64);
    }

    #[test]
    fn disabled_sites_never_fire_but_streams_stay_independent() {
        let mut cfg = FaultConfig::chaos(3, 1_000_000);
        cfg.queue_delays = false;
        let mut p = FaultPlan::new(cfg);
        let mut q = FaultPlan::new(FaultConfig::chaos(3, 1_000_000));
        for _ in 0..64 {
            assert!(!p.fire(FaultSite::QueueDelay));
            assert!(q.fire(FaultSite::QueueDelay)); // rate 100%
            // The spurious-conflict stream is unaffected by the toggle.
            assert_eq!(
                p.fire(FaultSite::SpuriousConflict),
                q.fire(FaultSite::SpuriousConflict)
            );
        }
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut p = FaultPlan::new(FaultConfig::chaos(11, 0));
        assert!((0..4_096).all(|_| !p.fire(FaultSite::WrongPathStorm)));
    }

    #[test]
    fn derive_is_stable_and_bounded() {
        let a = derive(42, 0xABCD, 10);
        assert_eq!(a, derive(42, 0xABCD, 10));
        assert!(a < 10);
        assert_ne!(derive(42, 1, 1 << 60), derive(43, 1, 1 << 60));
    }

    #[test]
    fn magnitude_in_range() {
        let p = FaultPlan::new(FaultConfig::chaos(5, 1));
        for bound in [1u64, 2, 64] {
            let m = p.magnitude(FaultSite::QueueDelay, bound);
            assert!((1..=bound).contains(&m), "magnitude {m} out of [1,{bound}]");
        }
    }
}
