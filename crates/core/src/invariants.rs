//! Whole-system protocol invariant checking.
//!
//! The §4.1 design argument rests on a handful of global invariants ("a
//! request incoming to a cache knows if it should hit, miss, or trigger
//! misspeculation solely by using the coherent state of each line"). This
//! module makes them executable: [`MemorySystem::check_invariants`] scans
//! every cache and returns every violation found. Property tests and
//! integration tests call it after every phase of random executions.

use std::collections::HashMap;

use hmtx_mem::LineState;
use hmtx_types::{LineAddr, Vid};

use crate::backend::ProtocolBackend;
use crate::protocol::MemorySystem;
use crate::transitions::Outcome;

/// One violated invariant (all fields are pre-rendered for reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant failed.
    pub rule: &'static str,
    /// Human-readable details (line address, states involved).
    pub detail: String,
}

impl<B: ProtocolBackend> MemorySystem<B> {
    /// Scans the entire hierarchy for protocol invariant violations:
    ///
    /// 1. `modVID <= highVID` on every version;
    /// 2. speculative states that require `modVID == 0` (`S-E`) have it;
    /// 3. for every address and every request VID, **at most one**
    ///    snoop-responding version hits (the paper's "requests will only hit
    ///    on one version of the line");
    /// 4. at most one *writable* non-speculative copy (M/E) of an address
    ///    exists anywhere;
    /// 5. at most one live `S-M` version per address exists anywhere;
    /// 6. a dirty non-speculative line (M/O) never coexists with another
    ///    M/O copy of the same address.
    ///
    /// Returns all violations (empty = healthy). The scan judges each line
    /// *as the protocol would serve it*: pending lazy commit processing
    /// (§5.3) is applied to a snapshot first, since committed-but-
    /// unprocessed versions are never served. This is a diagnostic scan with
    /// no timing model; run it at quiescent points (between accesses).
    pub fn check_invariants(&self) -> Vec<Violation> {
        let mut violations = Vec::new();
        let mut per_addr: HashMap<LineAddr, Vec<(String, LineState, Vid, Vid)>> = HashMap::new();

        for (name, cache) in self.caches_for_scan() {
            for set_idx in 0..cache.config().num_sets() {
                for stored in cache.set_metas(set_idx) {
                    // Judge the line as the protocol would see it: apply any
                    // pending lazy commit processing (§5.3) to a snapshot
                    // first — committed-but-unprocessed versions are exactly
                    // the paper's set-CB-bit state and are never served.
                    let mut processed = *stored;
                    if processed.commit_epoch < cache.commit_epoch()
                        && B::apply_commit(&mut processed, cache.lc_vid()) == Outcome::Invalidate
                    {
                        continue;
                    }
                    let line = &processed;
                    if line.mod_vid > line.high_vid {
                        violations.push(Violation {
                            rule: "modVID <= highVID",
                            detail: format!("{name}: {} {}", line.addr, line.describe()),
                        });
                    }
                    if line.state == LineState::SpecExclusive && line.mod_vid.is_speculative() {
                        violations.push(Violation {
                            rule: "S-E implies modVID == 0",
                            detail: format!("{name}: {} {}", line.addr, line.describe()),
                        });
                    }
                    per_addr.entry(line.addr).or_default().push((
                        name.clone(),
                        line.state,
                        line.mod_vid,
                        line.high_vid,
                    ));
                }
            }
        }

        let max_vid = self.config().hmtx.max_vid().0;
        for (addr, versions) in &per_addr {
            // (3) hit uniqueness among responders, for every possible VID.
            for a in 0..=max_vid {
                let a = Vid(a);
                let hitters: Vec<&(String, LineState, Vid, Vid)> = versions
                    .iter()
                    .filter(|(_, state, m, h)| {
                        state.responds_to_snoops() && hits(*state, *m, *h, a)
                    })
                    .collect();
                if hitters.len() > 1 {
                    violations.push(Violation {
                        rule: "at most one responding version hits per VID",
                        detail: format!("{addr} vid {a}: {hitters:?}"),
                    });
                }
            }
            // (4) single writable non-speculative copy.
            let writable = versions
                .iter()
                .filter(|(_, s, _, _)| s.is_writable())
                .count();
            if writable > 1 {
                violations.push(Violation {
                    rule: "at most one writable non-speculative copy",
                    detail: format!("{addr}: {versions:?}"),
                });
            }
            // (5) single live S-M.
            let sm = versions
                .iter()
                .filter(|(_, s, _, _)| *s == LineState::SpecModified)
                .count();
            if sm > 1 {
                violations.push(Violation {
                    rule: "at most one S-M version per address",
                    detail: format!("{addr}: {versions:?}"),
                });
            }
            // (6) single dirty non-speculative owner.
            let dirty_nonspec = versions
                .iter()
                .filter(|(_, s, _, _)| matches!(s, LineState::Modified | LineState::Owned))
                .count();
            if dirty_nonspec > 1 {
                violations.push(Violation {
                    rule: "at most one dirty non-speculative owner",
                    detail: format!("{addr}: {versions:?}"),
                });
            }
        }
        violations
    }
}

impl<B: ProtocolBackend> MemorySystem<B> {
    /// Extended rules the explicit-state model checker evaluates on every
    /// reachable state, *beyond* [`Self::check_invariants`]:
    ///
    /// 1. **Commit safety** (`committed modVID never stays speculative`):
    ///    once VID `c` has committed, no served version anywhere may still
    ///    carry a speculative `modVID <= c`, and no superseded
    ///    `S-O`/`S-S (m,h)` with `h <= c` may survive — Figure 6 requires
    ///    the commit broadcast (or its lazy §5.3 processing) to have
    ///    promoted or invalidated them. Violations here mean a commit was
    ///    applied out of modVID order somewhere in the hierarchy.
    /// 2. **Exclusivity after abort** (`no duplicate Exclusive after
    ///    abort`): once any abort has happened since the last VID reset, an
    ///    `E` copy must be the *only* non-speculative copy of its address.
    ///    The PR 2 bug class (Figure 7 restoring forwarding replicas in
    ///    isolation) manifests first as `E` coexisting with `S` — the state
    ///    from which a later speculative upgrade mints the second
    ///    Exclusive head.
    ///
    /// Lines are judged exactly as in [`Self::check_invariants`]: pending
    /// lazy commit processing is applied to a snapshot first, and the §8
    /// overflow table (processed eagerly at commit) is included in the
    /// commit-safety scan.
    pub fn check_model_invariants(&self) -> Vec<Violation> {
        let mut violations = Vec::new();
        let committed = self.last_committed();
        let mut per_addr: HashMap<LineAddr, Vec<(String, LineState)>> = HashMap::new();

        let mut commit_safety = |name: &str, line: &hmtx_mem::LineMeta| {
            let superseded = matches!(
                line.state,
                LineState::SpecOwned | LineState::SpecShared
            ) && line.high_vid <= committed;
            let stale_mod = line.state.is_speculative()
                && line.mod_vid.is_speculative()
                && line.mod_vid <= committed;
            if superseded || stale_mod {
                violations.push(Violation {
                    rule: "committed modVID never stays speculative",
                    detail: format!(
                        "{name}: {} {} after commit of v{}",
                        line.addr,
                        line.describe(),
                        committed.0
                    ),
                });
            }
        };

        for (name, cache) in self.caches_for_scan() {
            for set_idx in 0..cache.config().num_sets() {
                for stored in cache.set_metas(set_idx) {
                    let mut processed = *stored;
                    if processed.commit_epoch < cache.commit_epoch()
                        && B::apply_commit(&mut processed, cache.lc_vid()) == Outcome::Invalidate
                    {
                        continue;
                    }
                    commit_safety(&name, &processed);
                    per_addr
                        .entry(processed.addr)
                        .or_default()
                        .push((name.clone(), processed.state));
                }
            }
        }
        for line in self.overflow_lines() {
            commit_safety("overflow", &line.meta);
        }

        if self.abort_seen() {
            for (addr, versions) in &per_addr {
                let exclusive = versions
                    .iter()
                    .filter(|(_, s)| *s == LineState::Exclusive)
                    .count();
                let nonspec = versions
                    .iter()
                    .filter(|(_, s)| !s.is_speculative())
                    .count();
                if exclusive >= 1 && nonspec > 1 {
                    violations.push(Violation {
                        rule: "no duplicate Exclusive after abort",
                        detail: format!("{addr}: {versions:?}"),
                    });
                }
            }
        }
        violations
    }
}

fn hits(state: LineState, m: Vid, h: Vid, a: Vid) -> bool {
    match state {
        LineState::Modified | LineState::Owned | LineState::Exclusive | LineState::Shared => true,
        LineState::SpecModified | LineState::SpecExclusive => a >= m,
        LineState::SpecOwned | LineState::SpecShared => m <= a && a < h,
    }
}

#[cfg(test)]
mod tests {
    use crate::protocol::{AccessKind, AccessRequest, AccessResponse, MemorySystem};
    use hmtx_types::{Addr, CoreId, MachineConfig, Vid};

    fn drive(mem: &mut MemorySystem, t: u64, core: usize, addr: u64, vid: u16, w: Option<u64>) {
        let req = AccessRequest {
            core: CoreId(core),
            addr: Addr(addr),
            kind: match w {
                Some(v) => AccessKind::Write(v),
                None => AccessKind::Read,
            },
            vid: Vid(vid),
            wrong_path: false,
        };
        match mem.access(t, &req).unwrap() {
            AccessResponse::Done { .. } => {}
            AccessResponse::Misspec { .. } => {
                mem.abort_all(t);
            }
        }
    }

    #[test]
    fn healthy_after_figure5_sequence() {
        let mut mem = MemorySystem::new(MachineConfig::test_default());
        drive(&mut mem, 0, 0, 0x40, 0, None);
        drive(&mut mem, 1, 0, 0x40, 1, None);
        drive(&mut mem, 2, 0, 0x40, 1, Some(111));
        drive(&mut mem, 3, 0, 0x40, 2, None);
        drive(&mut mem, 4, 0, 0x40, 2, Some(222));
        drive(&mut mem, 5, 1, 0x40, 1, None);
        assert_eq!(mem.check_invariants(), vec![]);
        mem.commit(10, Vid(1)).unwrap();
        assert_eq!(mem.check_invariants(), vec![]);
        mem.commit(11, Vid(2)).unwrap();
        assert_eq!(mem.check_invariants(), vec![]);
    }

    #[test]
    fn healthy_across_sharing_and_migration() {
        let mut mem = MemorySystem::new(MachineConfig::test_default());
        for core in 0..4 {
            drive(&mut mem, core as u64 * 10, core, 0x200, 0, None);
        }
        assert_eq!(mem.check_invariants(), vec![]);
        drive(&mut mem, 100, 2, 0x200, 0, Some(5));
        assert_eq!(mem.check_invariants(), vec![]);
        for core in 0..4 {
            drive(&mut mem, 200 + core as u64 * 10, core, 0x200, 3, None);
        }
        assert_eq!(mem.check_invariants(), vec![]);
    }

    #[test]
    fn healthy_after_abort() {
        let mut mem = MemorySystem::new(MachineConfig::test_default());
        drive(&mut mem, 0, 0, 0x300, 1, Some(1));
        drive(&mut mem, 1, 1, 0x300, 2, Some(2));
        drive(&mut mem, 2, 2, 0x340, 3, Some(3));
        mem.abort_all(10);
        assert_eq!(mem.check_invariants(), vec![]);
    }

    // -----------------------------------------------------------------------
    // Negative coverage: every invariant rule, planted directly into an L1
    // (the protocol itself never produces these states, so the scanner is
    // the only line of defense).
    // -----------------------------------------------------------------------

    use hmtx_mem::{CacheLine, LineData, LineMeta, LineState};
    use hmtx_types::LineAddr;

    /// Plants a raw line version into `core`'s L1, bypassing the protocol.
    fn plant(mem: &mut MemorySystem, core: usize, addr: u64, state: LineState, m: u16, h: u16) {
        let addr = LineAddr(addr);
        let epoch = mem.l1_mut(core).commit_epoch();
        let line = CacheLine {
            meta: LineMeta {
                addr,
                state,
                mod_vid: Vid(m),
                high_vid: Vid(h),
                phantom_high: Vid(0),
                shared_hint: false,
                commit_epoch: epoch,
                last_used: 0,
            },
            data: LineData::zeroed(),
        };
        mem.l1_mut(core).plant(line);
    }

    #[track_caller]
    fn expect_rule(mem: &MemorySystem, rule: &str) {
        let violations = mem.check_invariants();
        assert!(
            violations.iter().any(|v| v.rule == rule),
            "expected violation of `{rule}`, got {violations:?}"
        );
    }

    #[test]
    fn violation_mod_vid_above_high_vid() {
        let mut mem = MemorySystem::new(MachineConfig::test_default());
        plant(&mut mem, 0, 0x10, LineState::SpecOwned, 3, 1);
        let violations = mem.check_invariants();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "modVID <= highVID");
        assert!(violations[0].detail.contains("L1[0]"), "{violations:?}");
    }

    #[test]
    fn violation_spec_exclusive_with_nonzero_mod_vid() {
        let mut mem = MemorySystem::new(MachineConfig::test_default());
        plant(&mut mem, 1, 0x10, LineState::SpecExclusive, 2, 5);
        let violations = mem.check_invariants();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "S-E implies modVID == 0");
        assert!(violations[0].detail.contains("L1[1]"), "{violations:?}");
    }

    #[test]
    fn violation_two_responders_hit_one_vid() {
        let mut mem = MemorySystem::new(MachineConfig::test_default());
        // M responds and hits every VID; S-M responds and hits every a >= 1,
        // so they collide on VIDs 1.. without tripping the writable, S-M
        // uniqueness, or dirty-owner rules.
        plant(&mut mem, 0, 0x10, LineState::Modified, 0, 0);
        plant(&mut mem, 1, 0x10, LineState::SpecModified, 1, 1);
        let violations = mem.check_invariants();
        assert!(
            violations
                .iter()
                .all(|v| v.rule == "at most one responding version hits per VID"),
            "{violations:?}"
        );
        assert!(!violations.is_empty());
    }

    #[test]
    fn violation_two_writable_copies() {
        let mut mem = MemorySystem::new(MachineConfig::test_default());
        plant(&mut mem, 0, 0x10, LineState::Modified, 0, 0);
        plant(&mut mem, 1, 0x10, LineState::Exclusive, 0, 0);
        expect_rule(&mem, "at most one writable non-speculative copy");
    }

    #[test]
    fn violation_two_live_spec_modified() {
        let mut mem = MemorySystem::new(MachineConfig::test_default());
        plant(&mut mem, 0, 0x10, LineState::SpecModified, 2, 2);
        plant(&mut mem, 1, 0x10, LineState::SpecModified, 2, 2);
        expect_rule(&mem, "at most one S-M version per address");
    }

    #[test]
    fn violation_two_dirty_nonspeculative_owners() {
        let mut mem = MemorySystem::new(MachineConfig::test_default());
        plant(&mut mem, 0, 0x10, LineState::Modified, 0, 0);
        plant(&mut mem, 1, 0x10, LineState::Owned, 0, 0);
        expect_rule(&mem, "at most one dirty non-speculative owner");
    }

    // ---- model-checker extended rules ----

    #[track_caller]
    fn expect_model_rule(mem: &MemorySystem, rule: &str) {
        let violations = mem.check_model_invariants();
        assert!(
            violations.iter().any(|v| v.rule == rule),
            "expected model violation of `{rule}`, got {violations:?}"
        );
    }

    #[test]
    fn model_violation_stale_speculative_mod_vid_after_commit() {
        let mut mem = MemorySystem::new(MachineConfig::test_default());
        mem.commit(1, Vid(1)).unwrap();
        plant(&mut mem, 0, 0x10, LineState::SpecModified, 1, 2);
        expect_model_rule(&mem, "committed modVID never stays speculative");
    }

    #[test]
    fn model_violation_superseded_version_survives_commit() {
        let mut mem = MemorySystem::new(MachineConfig::test_default());
        mem.commit(1, Vid(1)).unwrap();
        plant(&mut mem, 1, 0x10, LineState::SpecOwned, 0, 1);
        expect_model_rule(&mem, "committed modVID never stays speculative");
    }

    #[test]
    fn model_future_versions_survive_commit_cleanly() {
        let mut mem = MemorySystem::new(MachineConfig::test_default());
        mem.commit(1, Vid(1)).unwrap();
        plant(&mut mem, 0, 0x10, LineState::SpecModified, 2, 2);
        plant(&mut mem, 1, 0x50, LineState::SpecOwned, 0, 3);
        assert_eq!(mem.check_model_invariants(), vec![]);
    }

    #[test]
    fn model_violation_duplicate_exclusive_after_abort() {
        let mut mem = MemorySystem::new(MachineConfig::test_default());
        mem.abort_all(1);
        plant(&mut mem, 0, 0x10, LineState::Exclusive, 0, 0);
        plant(&mut mem, 1, 0x10, LineState::Shared, 0, 0);
        expect_model_rule(&mem, "no duplicate Exclusive after abort");
    }

    #[test]
    fn model_exclusive_rule_is_gated_on_abort() {
        // The same planted state without a preceding abort is judged only
        // by the six base rules (which it does not violate), so the model
        // rule stays quiet — it is specifically the post-Figure-7 scan.
        let mut mem = MemorySystem::new(MachineConfig::test_default());
        plant(&mut mem, 0, 0x10, LineState::Exclusive, 0, 0);
        plant(&mut mem, 1, 0x10, LineState::Shared, 0, 0);
        assert_eq!(mem.check_model_invariants(), vec![]);
    }

    #[test]
    fn planted_healthy_line_stays_clean() {
        let mut mem = MemorySystem::new(MachineConfig::test_default());
        plant(&mut mem, 0, 0x10, LineState::Modified, 0, 0);
        plant(&mut mem, 1, 0x20, LineState::Owned, 0, 0);
        plant(&mut mem, 2, 0x20, LineState::Shared, 0, 0);
        assert_eq!(mem.check_invariants(), vec![]);
    }
}
