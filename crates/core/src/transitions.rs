//! Pure state-transition rules of the HMTX protocol: the hit predicate of
//! §4.1 and the commit (Figure 6), abort (Figure 7), and VID-reset (§4.6)
//! state machines.
//!
//! These functions are deliberately free of cache plumbing so that each
//! transition of the paper's figures can be unit-tested as a truth table.

use hmtx_mem::{LineMeta, LineState};
use hmtx_types::Vid;

/// Evaluates the hit predicate of §4.1 for a request with VID `a` against a
/// line version (non-speculative requests must pass the cache's LC VID as
/// `a`, per §5.3).
///
/// * `S-M`/`S-E (m,h)` hit iff `a >= m`;
/// * `S-O`/`S-S (m,h)` hit iff `m <= a < h`;
/// * non-speculative states hit on plain tag match.
///
/// The address tag is assumed to have matched already.
pub fn version_hits(line: &LineMeta, a: Vid) -> bool {
    match line.state {
        LineState::Modified | LineState::Owned | LineState::Exclusive | LineState::Shared => true,
        LineState::SpecModified | LineState::SpecExclusive => a >= line.mod_vid,
        LineState::SpecOwned | LineState::SpecShared => line.mod_vid <= a && a < line.high_vid,
    }
}

/// What happens to a line during commit/abort/reset processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The line survives (its fields may have been rewritten).
    Keep,
    /// The line is invalidated.
    Invalidate,
}

/// Applies the commit state machine (Figure 6) for a committed VID `lc` to a
/// line, in place. Because commits occur in consecutive VID order (§4.7),
/// applying the rules once with the *latest* committed VID is equivalent to
/// applying each intermediate commit in sequence — which is what makes the
/// lazy scheme of §5.3 sound.
///
/// Rules:
/// * `highVID <= lc`: the whole version is finished — `S-M → M`,
///   `S-E → E`, `S-O`/`S-S` are superseded and die; VIDs reset to `(0,0)`.
/// * otherwise if `modVID <= lc`: the modification that created this version
///   is now committed — `modVID` becomes 0, state unchanged.
pub fn apply_commit(line: &mut LineMeta, lc: Vid) -> Outcome {
    // Wrong-path phantom marks from committed VIDs can no longer cause
    // (or be blamed for) anything; drop them (simulator bookkeeping).
    if line.phantom_high <= lc {
        line.phantom_high = Vid::NON_SPECULATIVE;
    }
    if !line.state.is_speculative() {
        return Outcome::Keep;
    }
    if line.high_vid <= lc {
        let outcome = match line.state {
            LineState::SpecModified => {
                line.state = LineState::Modified;
                Outcome::Keep
            }
            LineState::SpecExclusive => {
                line.state = LineState::Exclusive;
                Outcome::Keep
            }
            LineState::SpecOwned | LineState::SpecShared => Outcome::Invalidate,
            _ => unreachable!(),
        };
        line.mod_vid = Vid::NON_SPECULATIVE;
        line.high_vid = Vid::NON_SPECULATIVE;
        outcome
    } else {
        if line.mod_vid.is_speculative() && line.mod_vid <= lc {
            line.mod_vid = Vid::NON_SPECULATIVE;
        }
        Outcome::Keep
    }
}

/// Applies the abort state machine (Figure 7) to a line, in place.
///
/// Lines whose version was *created* by an uncommitted speculative write
/// (`modVID > 0`) are invalidated; versions holding non-speculative data
/// (`modVID == 0`) revert to the corresponding non-speculative state with
/// `highVID` cleared.
///
/// The caller must apply any pending commit processing *first*
/// ([`apply_commit`]): committed-but-lazily-unprocessed lines must not be
/// destroyed by a later abort.
pub fn apply_abort(line: &mut LineMeta) -> Outcome {
    line.phantom_high = Vid::NON_SPECULATIVE;
    if !line.state.is_speculative() {
        return Outcome::Keep;
    }
    if line.mod_vid.is_speculative() {
        return Outcome::Invalidate;
    }
    line.high_vid = Vid::NON_SPECULATIVE;
    line.state = match line.state {
        LineState::SpecModified => LineState::Modified,
        LineState::SpecExclusive => LineState::Exclusive,
        // The unmodified backup copy holds valid (possibly dirty)
        // non-speculative data; keep it in a dirty shared-ownership state.
        LineState::SpecOwned => LineState::Owned,
        LineState::SpecShared => LineState::Shared,
        _ => unreachable!(),
    };
    Outcome::Keep
}

/// Applies a VID reset (§4.6) to a line, in place. The caller guarantees
/// that every outstanding transaction has committed and that pending commit
/// processing has been applied; at that point no speculative version can
/// remain, so the reset only has to clear stale phantom marks.
///
/// Returns [`Outcome::Invalidate`] if — contrary to the protocol invariant —
/// a speculative line is still present (callers treat this as a bug).
pub fn apply_vid_reset(line: &mut LineMeta) -> Outcome {
    line.phantom_high = Vid::NON_SPECULATIVE;
    debug_assert!(
        !line.state.is_speculative(),
        "VID reset reached a live speculative line {}",
        line.describe()
    );
    if line.state.is_speculative() {
        return Outcome::Invalidate;
    }
    line.mod_vid = Vid::NON_SPECULATIVE;
    line.high_vid = Vid::NON_SPECULATIVE;
    Outcome::Keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtx_mem::CacheLine;
    use hmtx_types::LineAddr;

    fn spec_line(state: LineState, m: u16, h: u16) -> CacheLine {
        let mut l = CacheLine::non_speculative(LineAddr(1), LineState::Exclusive);
        l.state = state;
        l.mod_vid = Vid(m);
        l.high_vid = Vid(h);
        l
    }

    // ---- hit predicate truth table (§4.1) ----

    #[test]
    fn hit_rules_sm_se() {
        let sm = spec_line(LineState::SpecModified, 2, 3);
        assert!(!version_hits(&sm, Vid(1)));
        assert!(version_hits(&sm, Vid(2)));
        assert!(version_hits(&sm, Vid(3)));
        assert!(version_hits(&sm, Vid(60)));

        let se = spec_line(LineState::SpecExclusive, 0, 1);
        assert!(version_hits(&se, Vid(0)));
        assert!(version_hits(&se, Vid(1)));
        assert!(version_hits(&se, Vid(5)));
    }

    #[test]
    fn hit_rules_so_ss() {
        let so = spec_line(LineState::SpecOwned, 1, 2);
        assert!(!version_hits(&so, Vid(0)));
        assert!(version_hits(&so, Vid(1)));
        assert!(!version_hits(&so, Vid(2)));

        let ss = spec_line(LineState::SpecShared, 0, 2);
        assert!(version_hits(&ss, Vid(0)));
        assert!(version_hits(&ss, Vid(1)));
        assert!(!version_hits(&ss, Vid(2)));
    }

    #[test]
    fn hit_rules_nonspec_states_plain_tag_match() {
        for st in [
            LineState::Modified,
            LineState::Owned,
            LineState::Exclusive,
            LineState::Shared,
        ] {
            let l = CacheLine::non_speculative(LineAddr(1), st);
            assert!(version_hits(&l, Vid(0)));
            assert!(version_hits(&l, Vid(9)));
        }
    }

    #[test]
    fn reset_so_00_can_never_hit() {
        // §4.6: after a reset, S-O(0,0) copies can never hit (a < 0 is
        // impossible), so they die on eviction.
        let so = spec_line(LineState::SpecOwned, 0, 0);
        for a in 0..10 {
            assert!(!version_hits(&so, Vid(a)));
        }
    }

    // ---- commit state machine (Figure 6) ----

    #[test]
    fn commit_finishes_sm_to_m() {
        let mut l = spec_line(LineState::SpecModified, 2, 2);
        assert_eq!(apply_commit(&mut l, Vid(2)), Outcome::Keep);
        assert_eq!(l.state, LineState::Modified);
        assert_eq!(l.vids(), (Vid(0), Vid(0)));
    }

    #[test]
    fn commit_finishes_se_to_e() {
        let mut l = spec_line(LineState::SpecExclusive, 0, 1);
        assert_eq!(apply_commit(&mut l, Vid(1)), Outcome::Keep);
        assert_eq!(l.state, LineState::Exclusive);
        assert_eq!(l.vids(), (Vid(0), Vid(0)));
    }

    #[test]
    fn commit_kills_superseded_so_and_ss() {
        let mut so = spec_line(LineState::SpecOwned, 1, 2);
        assert_eq!(apply_commit(&mut so, Vid(2)), Outcome::Invalidate);
        let mut ss = spec_line(LineState::SpecShared, 0, 2);
        assert_eq!(apply_commit(&mut ss, Vid(2)), Outcome::Invalidate);
    }

    #[test]
    fn commit_below_high_vid_only_clears_mod_vid() {
        // CommitVID < h and CommitVID >= m: modification is committed but
        // later transactions still reference the line.
        let mut l = spec_line(LineState::SpecModified, 2, 5);
        assert_eq!(apply_commit(&mut l, Vid(3)), Outcome::Keep);
        assert_eq!(l.state, LineState::SpecModified);
        assert_eq!(l.vids(), (Vid(0), Vid(5)));

        let mut so = spec_line(LineState::SpecOwned, 1, 5);
        assert_eq!(apply_commit(&mut so, Vid(1)), Outcome::Keep);
        assert_eq!(so.vids(), (Vid(0), Vid(5)));
        assert_eq!(so.state, LineState::SpecOwned);
    }

    #[test]
    fn commit_before_mod_vid_changes_nothing() {
        let mut l = spec_line(LineState::SpecModified, 4, 5);
        assert_eq!(apply_commit(&mut l, Vid(3)), Outcome::Keep);
        assert_eq!(l.vids(), (Vid(4), Vid(5)));
    }

    #[test]
    fn batched_lazy_commit_equals_sequential_commits() {
        // Applying commits 1,2,3 one by one must equal applying commit 3 once.
        for (state, m, h) in [
            (LineState::SpecModified, 2u16, 5u16),
            (LineState::SpecModified, 2, 3),
            (LineState::SpecOwned, 1, 3),
            (LineState::SpecOwned, 0, 5),
            (LineState::SpecExclusive, 0, 2),
            (LineState::SpecShared, 1, 2),
        ] {
            let mut seq = spec_line(state, m, h);
            let mut seq_alive = true;
            for c in 1..=3u16 {
                if seq_alive && apply_commit(&mut seq, Vid(c)) == Outcome::Invalidate {
                    seq_alive = false;
                }
            }
            let mut batched = spec_line(state, m, h);
            let batched_alive = apply_commit(&mut batched, Vid(3)) == Outcome::Keep;
            assert_eq!(seq_alive, batched_alive, "liveness for {state:?}({m},{h})");
            if seq_alive {
                assert_eq!(seq, batched, "fields for {state:?}({m},{h})");
            }
        }
    }

    #[test]
    fn commit_ignores_nonspec_lines() {
        let mut l = CacheLine::non_speculative(LineAddr(1), LineState::Modified);
        assert_eq!(apply_commit(&mut l, Vid(9)), Outcome::Keep);
        assert_eq!(l.state, LineState::Modified);
    }

    #[test]
    fn commit_clears_stale_phantom_marks() {
        let mut l = spec_line(LineState::SpecModified, 1, 5);
        l.phantom_high = Vid(3);
        apply_commit(&mut l, Vid(3));
        assert_eq!(l.phantom_high, Vid(0));
        let mut l2 = spec_line(LineState::SpecModified, 1, 5);
        l2.phantom_high = Vid(4);
        apply_commit(&mut l2, Vid(3));
        assert_eq!(l2.phantom_high, Vid(4), "future phantom marks survive");
    }

    // ---- abort state machine (Figure 7) ----

    #[test]
    fn abort_invalidates_speculatively_modified_versions() {
        let mut l = spec_line(LineState::SpecModified, 2, 2);
        assert_eq!(apply_abort(&mut l), Outcome::Invalidate);
        let mut so = spec_line(LineState::SpecOwned, 1, 2);
        assert_eq!(apply_abort(&mut so), Outcome::Invalidate);
        let mut ss = spec_line(LineState::SpecShared, 3, 4);
        assert_eq!(apply_abort(&mut ss), Outcome::Invalidate);
    }

    #[test]
    fn abort_restores_nonspec_data_versions() {
        // S-M(0,h): dirty pre-speculative data read speculatively.
        let mut sm = spec_line(LineState::SpecModified, 0, 3);
        assert_eq!(apply_abort(&mut sm), Outcome::Keep);
        assert_eq!(sm.state, LineState::Modified);
        assert_eq!(sm.vids(), (Vid(0), Vid(0)));

        let mut se = spec_line(LineState::SpecExclusive, 0, 3);
        assert_eq!(apply_abort(&mut se), Outcome::Keep);
        assert_eq!(se.state, LineState::Exclusive);

        let mut so = spec_line(LineState::SpecOwned, 0, 3);
        assert_eq!(apply_abort(&mut so), Outcome::Keep);
        assert_eq!(so.state, LineState::Owned);

        let mut ss = spec_line(LineState::SpecShared, 0, 3);
        assert_eq!(apply_abort(&mut ss), Outcome::Keep);
        assert_eq!(ss.state, LineState::Shared);
    }

    #[test]
    fn abort_keeps_nonspec_lines_untouched() {
        let mut l = CacheLine::non_speculative(LineAddr(1), LineState::Owned);
        assert_eq!(apply_abort(&mut l), Outcome::Keep);
        assert_eq!(l.state, LineState::Owned);
    }

    // ---- VID reset (§4.6) ----

    #[test]
    fn vid_reset_clears_phantoms_on_nonspec_lines() {
        let mut l = CacheLine::non_speculative(LineAddr(1), LineState::Modified);
        l.phantom_high = Vid(9);
        assert_eq!(apply_vid_reset(&mut l), Outcome::Keep);
        assert_eq!(l.phantom_high, Vid(0));
        assert_eq!(l.vids(), (Vid(0), Vid(0)));
    }
}
